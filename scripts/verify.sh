#!/usr/bin/env bash
# Tier-1 verify: hermetic build + tests, then a policy check that no
# crate has reintroduced a registry dependency. The workspace must
# build from a clean checkout with an empty cargo registry cache —
# every dependency is an in-tree path dependency (see README "Building"
# and DESIGN.md "In-tree primitives").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (offline) =="
cargo test -q --offline

echo "== benches compile (offline) =="
cargo build --offline --benches

echo "== schedule auditor (fast budget) =="
# Random op schedules under 5% drop with retries on must preserve every
# invariant, and — with K-successor replication on — random schedules
# that mix in permanent kills must stay oracle-exact (the kill-forever
# op, DESIGN.md §13). A reduced case budget keeps this inside tier-1
# time; the full-budget run is the tests' default (`AUDIT_CASES`
# unset).
AUDIT_CASES=15 cargo test -q --offline -p integration-tests --test schedule_audit

echo "== replication placement + failover (simulator, fast budget) =="
# Kill-forever in the simulator: oracle-exact answers after ≤ K−1
# permanent losses, the replicas(1) no-op equivalence, and the
# K-successor placement property over random membership churn.
AUDIT_CASES=8 cargo test -q --offline -p integration-tests --test replication

echo "== tracing-off / cache-off byte-identity: figure CSVs =="
# The observability layer must be zero-cost when no sink is installed,
# and the locate cache must be zero-cost when not configured:
# regenerating the figure and fault-sweep CSVs with the instrumented
# binaries must reproduce the committed files byte for byte. (These
# binaries run trace-free and cache-off; any behavioral drift — an
# extra RNG draw, a reordered dispatch, a query answered differently —
# shows up here as a diff.) zipf_sweep doubles as the cache smoke: it
# runs every scenario cache-off AND cache-on at quick scale, asserts
# oracle-exact answers in both modes plus the headline reductions, and
# its committed artifacts are deterministic, so they are byte-gated
# like the figures.
for bin in fig6a_indexing_volume fig6b_indexing_netsize fig7a_query_netsize \
           fig7b_query_volume fig8a_load_balance fig8b_scheme_cost fault_sweep \
           zipf_sweep; do
    ./target/release/"$bin" > /dev/null
done
git diff --exit-code -- \
    results/fig6a.csv results/fig6b.csv results/fig7a.csv results/fig7b.csv \
    results/fig8a.csv results/fig8b.csv results/fault_sweep.csv \
    results/zipf_sweep_off.csv results/zipf_sweep_on.csv results/BENCH_qcache.json \
    || { echo "figure CSVs drifted from the committed baselines" >&2; exit 1; }
echo "OK: fig6/7/8 + fault_sweep + zipf_sweep byte-identical to committed baselines."

echo "== WAN federation sweep byte-identity (DESIGN.md §17) =="
# Flat ring vs proximity placement over the three-region wan3 topology
# at identical seeds. The binary hard-asserts the headline (proximity
# reduces cross-region bytes AND cross-region locate p95, oracle-exact
# in both modes); the byte gate pins the full per-region-pair tables.
# Purely modeled time — deterministic on any host.
./target/release/wan_sweep > /dev/null
git diff --exit-code -- \
    results/wan_sweep_flat.csv results/wan_sweep_proximity.csv \
    results/BENCH_wan.json \
    || { echo "wan_sweep artifacts drifted from the committed baselines" >&2; exit 1; }
echo "OK: wan_sweep flat/proximity artifacts byte-identical to committed baselines."

echo "== trace exporter: deterministic exports =="
# Two same-seed traced runs must write byte-identical artifacts.
./target/release/trace_run > /dev/null
cp results/trace_demo.json /tmp/verify_trace_demo.json
cp results/latency_histograms.csv /tmp/verify_latency_histograms.csv
./target/release/trace_run > /dev/null
cmp results/trace_demo.json /tmp/verify_trace_demo.json
cmp results/latency_histograms.csv /tmp/verify_latency_histograms.csv
rm -f /tmp/verify_trace_demo.json /tmp/verify_latency_histograms.csv
echo "OK: trace exports byte-identical across invocations."

echo "== sharded determinism: T=1 vs T=4 byte-identical =="
# The parallel executor's contract (DESIGN.md §16): thread count is a
# throughput knob, never a semantics knob. The canonical flat-engine
# geometry must produce byte-identical run summaries — events, windows,
# records, oracle counters, per-class message accounting — at 1 and 4
# worker threads.
./target/release/complexity_check --shard-csv /tmp/verify_shard_t1.csv --threads 1 > /dev/null
./target/release/complexity_check --shard-csv /tmp/verify_shard_t4.csv --threads 4 > /dev/null
cmp /tmp/verify_shard_t1.csv /tmp/verify_shard_t4.csv \
    || { echo "sharded executor results depend on the thread count" >&2; exit 1; }
rm -f /tmp/verify_shard_t1.csv /tmp/verify_shard_t4.csv
echo "OK: canonical sharded run byte-identical at T=1 and T=4."

echo "== flat-engine scale smoke (bounded) =="
# Sub-second ascending sweep with the locate oracle and the Θ(No)
# slope assert baked into the binary; the full 10^6-node / 10^7-object
# sweep is scripts/bench_simnet.sh, not tier-1.
./target/release/complexity_check --quick > /dev/null
echo "OK: complexity_check --quick clean (oracle-exact, Θ(No) slope)."

echo "== loopback cluster smoke (real sockets) =="
# Five daemon nodes on ephemeral loopback ports run a real movement and
# answer queries over the wire, inside a hard timeout so a wedged
# cluster fails the gate instead of hanging it. Sandboxes that forbid
# binding sockets skip this stage loudly (same probe the socket tests
# use).
if ./target/release/peertrackd --probe-bind; then
    timeout 120 cargo test -q --offline -p daemon --test loopback \
        || { echo "loopback cluster smoke failed (or timed out)" >&2; exit 1; }
    timeout 180 cargo test -q --offline -p integration-tests --test cluster_parity \
        || { echo "cluster/simulator parity failed (or timed out)" >&2; exit 1; }
    echo "OK: loopback cluster runs, queries answer, accounting matches the simulator."

    echo "== kill-and-recover smoke (durable data dirs) =="
    # A node crashed mid-schedule (no final snapshot) must restart from
    # its WAL+snapshot byte-identical and keep answering correctly; the
    # same test file also holds the snapshot-anywhere ≡ pure-replay and
    # corruption-prefix properties. Hard timeout: a wedged recovery
    # fails the gate instead of hanging it.
    timeout 180 cargo test -q --offline -p integration-tests --test crash_recovery \
        || { echo "crash recovery smoke failed (or timed out)" >&2; exit 1; }
    echo "OK: crashed node recovered byte-identical and answers match the oracle."

    echo "== kill-forever failover (--replicas, real sockets) =="
    # An 8-node cluster with K = 3 replication loses two nodes
    # *permanently* (no restart); every survivor's locate/trace must
    # stay oracle-exact with zero protocol anomalies (DESIGN.md §13).
    timeout 180 cargo test -q --offline -p integration-tests --test replication_cluster \
        || { echo "kill-forever failover failed (or timed out)" >&2; exit 1; }
    # And the flag itself: a replicated daemon must come up and answer
    # ctl, and a zero replica count must be rejected loudly.
    ./target/release/peertrackd --replicas 0 --site 0 --seed 1 --listen 127.0.0.1:0 \
        2>/dev/null && { echo "peertrackd accepted --replicas 0" >&2; exit 1; }
    repl_out=$(mktemp)
    ./target/release/peertrackd --site 0 --seed 1 --listen 127.0.0.1:0 --replicas 3 \
        > "$repl_out" &
    repl_pid=$!
    repl_addr=""
    for _ in $(seq 50); do
        repl_addr=$(sed -n 's/.*listening on //p' "$repl_out")
        [[ -n "$repl_addr" ]] && break
        sleep 0.1
    done
    [[ -n "$repl_addr" ]] || {
        echo "peertrackd --replicas 3 never came up" >&2
        kill "$repl_pid" 2>/dev/null || true
        exit 1
    }
    ./target/release/peertrackd ctl "$repl_addr" status > /dev/null
    ./target/release/peertrackd ctl "$repl_addr" shutdown > /dev/null
    wait "$repl_pid" || true
    rm -f "$repl_out"
    echo "OK: two permanent losses survived; --replicas daemon answers ctl."

    echo "== region-cut partition smoke (wan3 over real sockets) =="
    # A six-node cluster over geo::Topology::wan3 is partitioned into
    # three isolated regions (Frame::RegionCut), keeps answering about
    # fully-propagated history, parks cross-region frames at the
    # senders, then heals and must be oracle-exact on everything —
    # including a handoff made during the partition — with zero
    # protocol anomalies on every node (DESIGN.md §17).
    timeout 180 cargo test -q --offline -p integration-tests --test wan_cluster \
        || { echo "region-cut partition smoke failed (or timed out)" >&2; exit 1; }
    echo "OK: three-way region partition parked, healed, reconverged oracle-exact."

    echo "== event-loop pipelining & backpressure (real sockets) =="
    # Pipelined bursts must answer byte-identical to request-at-a-time
    # (and match the oracle), slow-loris/partial frames must not block
    # or corrupt, a never-reading client must be parked (bounded
    # outbox), and pipelined acks must survive Frame::Crash.
    timeout 180 cargo test -q --offline -p integration-tests --test daemon_pipeline \
        || { echo "pipelining/backpressure suite failed (or timed out)" >&2; exit 1; }
    echo "OK: pipelining parity, slow-loris isolation, backpressure, group commit."

    echo "== daemon_load smoke (group-commit throughput floor) =="
    # A short open-loop run against a 4-node cluster at --fsync batch
    # must clear a deliberately loose captures/sec floor — the gate
    # catches a group-commit regression (per-request fsync would land
    # orders of magnitude under it), not machine-speed variance. The
    # committed trajectory (results/BENCH_daemon.json) is regenerated
    # by scripts/bench_daemon.sh, not here.
    timeout 180 ./target/release/daemon_load --mode pipelined --sites 4 \
        --secs 0.5 --rate 100000 --locates-per-site 5 \
        --min-captures-per-sec 1500 --json /tmp/verify_daemon_load.json > /dev/null \
        || { echo "daemon_load smoke failed its throughput floor" >&2; exit 1; }
    rm -f /tmp/verify_daemon_load.json
    echo "OK: daemon_load sustains the pipelined throughput floor."
else
    echo "WARNING: sandbox forbids binding loopback sockets; cluster and" >&2
    echo "         kill-and-recover smokes SKIPPED (socket-free recovery" >&2
    echo "         properties still ran in the test stage above)." >&2
fi

echo "== dependency policy: path-only =="
# Any dependency line carrying a version requirement or registry/git
# source is a policy violation. In-tree deps look like
# `foo = { workspace = true }` / `foo = { path = "..." }`; the
# workspace table itself must be path-only too.
# Inside any *dependencies* section, the only acceptable shapes are
# `foo = { workspace = true }` and `foo = { path = "...", ... }` with
# no version/git/registry source. Section-aware so keys like
# `description` or `resolver` elsewhere never false-positive.
violations=$(
    find . -name Cargo.toml -not -path './target/*' -print0 | xargs -0 awk '
        /^\[/ { in_deps = ($0 ~ /dependencies/) }
        in_deps && /^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=/ {
            ok = ($0 ~ /workspace[[:space:]]*=[[:space:]]*true/ || $0 ~ /path[[:space:]]*=/)
            bad = ($0 ~ /(version|git|registry)[[:space:]]*=/)
            if (!ok || bad) print FILENAME ":" FNR ": " $0
        }' || true
)
if [[ -n "$violations" ]]; then
    echo "registry/git dependencies are not allowed (hermetic build policy):" >&2
    echo "$violations" >&2
    exit 1
fi
echo "OK: all Cargo.toml dependencies are path-only."

# The observability crate must be part of the workspace (and therefore
# of the policy scan above).
grep -q 'crates/obs' Cargo.toml \
    || { echo "crates/obs missing from the workspace manifest" >&2; exit 1; }
echo "OK: crates/obs is in the workspace."

# So must the real-network path (transport framing + the daemon) and
# the durability layer under it (WAL + snapshots), which the crash
# recovery test verifies against the simulator oracle.
for c in transport daemon durable; do
    grep -q "crates/$c" Cargo.toml \
        || { echo "crates/$c missing from the workspace manifest" >&2; exit 1; }
done
echo "OK: crates/transport, crates/daemon and crates/durable are in the workspace."

# And the query-path caching subsystem (DESIGN.md §15), which both the
# simulator and the daemon link against.
grep -q 'crates/qcache' Cargo.toml \
    || { echo "crates/qcache missing from the workspace manifest" >&2; exit 1; }
echo "OK: crates/qcache is in the workspace."

# And the WAN topology subsystem (DESIGN.md §17), consumed by the
# simulator's latency plane and the loopback cluster harness alike.
grep -q 'crates/geo' Cargo.toml \
    || { echo "crates/geo missing from the workspace manifest" >&2; exit 1; }
echo "OK: crates/geo is in the workspace."

# Generalized membership check: every directory under crates/ must be a
# workspace member, so a newly added crate can never dodge the build,
# the tests, or the dependency-policy scan above.
for dir in crates/*/; do
    c=$(basename "$dir")
    grep -q "crates/$c" Cargo.toml \
        || { echo "crates/$c missing from the workspace manifest" >&2; exit 1; }
done
echo "OK: every crates/* directory is a workspace member."
