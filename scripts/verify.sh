#!/usr/bin/env bash
# Tier-1 verify: hermetic build + tests, then a policy check that no
# crate has reintroduced a registry dependency. The workspace must
# build from a clean checkout with an empty cargo registry cache —
# every dependency is an in-tree path dependency (see README "Building"
# and DESIGN.md "In-tree primitives").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (offline) =="
cargo test -q --offline

echo "== benches compile (offline) =="
cargo build --offline --benches

echo "== schedule auditor (fast budget) =="
# Random op schedules under 5% drop with retries on must preserve every
# invariant; a reduced case budget keeps this inside tier-1 time. The
# full-budget run is `AUDIT_CASES=50` (the test's default).
AUDIT_CASES=15 cargo test -q --offline -p integration-tests --test schedule_audit

echo "== dependency policy: path-only =="
# Any dependency line carrying a version requirement or registry/git
# source is a policy violation. In-tree deps look like
# `foo = { workspace = true }` / `foo = { path = "..." }`; the
# workspace table itself must be path-only too.
# Inside any *dependencies* section, the only acceptable shapes are
# `foo = { workspace = true }` and `foo = { path = "...", ... }` with
# no version/git/registry source. Section-aware so keys like
# `description` or `resolver` elsewhere never false-positive.
violations=$(
    find . -name Cargo.toml -not -path './target/*' -print0 | xargs -0 awk '
        /^\[/ { in_deps = ($0 ~ /dependencies/) }
        in_deps && /^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=/ {
            ok = ($0 ~ /workspace[[:space:]]*=[[:space:]]*true/ || $0 ~ /path[[:space:]]*=/)
            bad = ($0 ~ /(version|git|registry)[[:space:]]*=/)
            if (!ok || bad) print FILENAME ":" FNR ": " $0
        }' || true
)
if [[ -n "$violations" ]]; then
    echo "registry/git dependencies are not allowed (hermetic build policy):" >&2
    echo "$violations" >&2
    exit 1
fi
echo "OK: all Cargo.toml dependencies are path-only."
