#!/usr/bin/env bash
# Repeatable WAN federation benchmark: regenerates the committed
# flat-vs-proximity sweep over the three-region wan3 topology
# (DESIGN.md §17) — per-region-pair protocol traffic, group-index
# flush latency and oracle-checked locate latency, flat ring vs
# region-clustered placement at identical seeds.
#
# Artifacts: results/wan_sweep_flat.csv, results/wan_sweep_proximity.csv,
# results/BENCH_wan.json. All three are deterministic (modeled virtual
# time, no wall-clock fields) and byte-compared by scripts/verify.sh.
#
# Usage: scripts/bench_wan.sh [--full]
#   --full  the larger configuration (PEERTRACK_SCALE=full)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin wan_sweep

if [[ "${1:-}" == "--full" ]]; then
    export PEERTRACK_SCALE=full
fi
exec ./target/release/wan_sweep
