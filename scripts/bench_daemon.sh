#!/usr/bin/env bash
# Repeatable daemon_load run: regenerates results/BENCH_daemon.json,
# the committed before/after trajectory for the daemon's event-loop
# core (serial = the request-at-a-time discipline the pre-event-loop
# daemon forced on clients; pipelined = open-loop group-commit path).
#
# Usage: scripts/bench_daemon.sh [extra daemon_load flags]
# The defaults (8 sites, --fsync batch, 2 s per mode) are the committed
# configuration; pass e.g. --secs 5 or --fsync always to explore.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin daemon_load
exec ./target/release/daemon_load --mode both "$@"
