#!/usr/bin/env bash
# Repeatable million-scale engine benchmark: regenerates
# results/BENCH_simnet.json — the committed flat-engine scale sweep
# (ascending to 10^6 nodes / 10^7 objects; events/sec + peak RSS per
# point) plus T in {1, 8} wall-clock at the largest geometry and the
# host parallelism the speedup is bounded by.
#
# Wall-clock fields vary host to host; the committed file documents one
# run, it is NOT byte-compared by verify.sh (the determinism gates are).
#
# Usage: scripts/bench_simnet.sh [--quick]
#   --quick  bounded sub-second sweep (no JSON thread timing rerun)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin complexity_check

mode=--full
if [[ "${1:-}" == "--quick" ]]; then
    mode=--quick
fi
exec ./target/release/complexity_check "$mode" --json results/BENCH_simnet.json
