//! Anti-counterfeiting — the paper's other §I headline application.
//!
//! A retailer receiving goods verifies each item's *pedigree*: the item
//! must have a traceable path that starts at an authorized manufacturer
//! and flows through known tiers. A counterfeit tag either has no
//! history in the network at all, or a history that starts somewhere a
//! genuine item never would (e.g. first sighted at a flea-market node).
//!
//! Run with:
//! ```text
//! cargo run -p peertrack-examples --bin anti_counterfeit
//! ```

use moods::{ObjectId, SiteId};
use peertrack::Builder;
use simnet::time::secs;
use simnet::SimTime;
use workload::topology::{SupplyChain, Tier};

/// Pedigree verdict for one item.
#[derive(Debug, PartialEq)]
enum Verdict {
    /// Full path from an authorized manufacturer.
    Genuine,
    /// Never seen by any receptor in the network.
    UnknownTag,
    /// History exists but does not originate at an authorized site.
    SuspectOrigin(SiteId),
}

fn verify(
    net: &mut peertrack::TraceableNetwork,
    chain: &SupplyChain,
    desk: SiteId,
    item: ObjectId,
    now: SimTime,
) -> Verdict {
    let (path, stats) = net.trace(desk, item, SimTime::ZERO, now);
    if path.is_empty() {
        return Verdict::UnknownTag;
    }
    assert!(stats.complete, "pedigree check needs the full path");
    let origin = path[0].site;
    if chain.tier(origin) == Tier::Supplier {
        Verdict::Genuine
    } else {
        Verdict::SuspectOrigin(origin)
    }
}

fn main() {
    let chain = SupplyChain::generate(3, 4, 10, 11);
    let mut net = Builder::new().sites(chain.total()).seed(11).build();

    // Genuine goods: manufactured at supplier 0, shipped through DC 4
    // to store 10.
    let genuine: Vec<ObjectId> = (0..5).map(|s| workload::epc_object(0, s)).collect();
    net.schedule_capture(secs(10), SiteId(0), genuine.clone());
    net.schedule_capture(secs(100), SiteId(4), genuine.clone());
    net.schedule_capture(secs(200), SiteId(10), genuine.clone());

    // A grey-market item: first ever sighting is at a retail store —
    // its EPC was cloned from a real product line but it never left a
    // factory gate in this network.
    let grey = workload::epc_object(0, 7_777);
    net.schedule_capture(secs(150), SiteId(12), vec![grey]);

    // A forged tag that never touched any receptor.
    let forged = workload::epc_object(0, 9_999);

    net.run_until_quiescent();
    let now = net.now();
    let desk = SiteId(10); // goods-in desk at store n10

    println!("PEDIGREE CHECKS at {desk}\n");
    for (label, item) in genuine
        .iter()
        .map(|&g| ("genuine item", g))
        .chain([("grey-market item", grey), ("forged tag", forged)])
    {
        let verdict = verify(&mut net, &chain, desk, item, now);
        println!("  {label:<16} {item:?}  ->  {verdict:?}");
        match label {
            "genuine item" => assert_eq!(verdict, Verdict::Genuine),
            "grey-market item" => assert_eq!(verdict, Verdict::SuspectOrigin(SiteId(12))),
            "forged tag" => assert_eq!(verdict, Verdict::UnknownTag),
            _ => unreachable!(),
        }
    }

    println!("\nall verdicts as expected — store accepts 5 items, rejects 2.");
}
