//! Product recall across a supply chain — the paper's §I motivating
//! application.
//!
//! A contaminated production batch left supplier S. The recall team
//! must find (a) where every affected item is *now* and (b) every
//! warehouse and store the batch passed through, so those sites can be
//! inspected. With PeerTrack this needs no central database: the team
//! queries from its own node and the DHT + IOP lists do the rest.
//!
//! Run with:
//! ```text
//! cargo run -p peertrack-examples --bin product_recall
//! ```

use moods::{ObjectId, SiteId};
use peertrack::Builder;
use detrand::{rngs::StdRng, SeedableRng};
use simnet::time::secs;
use simnet::SimTime;
use std::collections::BTreeMap;
use workload::topology::{SupplyChain, Tier};

fn main() {
    // 4 suppliers, 6 distribution centres, 20 retail stores.
    let chain = SupplyChain::generate(4, 6, 20, 7);
    let mut net = Builder::new().sites(chain.total()).seed(7).build();
    let mut rng = StdRng::seed_from_u64(99);

    // Supplier 2 ships 40 items of the affected batch; each item takes
    // a (valid) route through the chain at its own pace. Half are still
    // in transit when the recall hits.
    let supplier = SiteId(2);
    let batch: Vec<ObjectId> =
        (0..40).map(|serial| workload::epc_object(supplier.0, serial)).collect();

    for (i, &item) in batch.iter().enumerate() {
        let route = {
            // Sample until the route starts at our supplier.
            loop {
                let r = chain.sample_route(&mut rng);
                if r[0] == supplier {
                    break r;
                }
            }
        };
        let mut t = secs(100 + i as u64);
        // Items further down the batch have progressed less far.
        let steps = if i % 2 == 0 { route.len() } else { 1 + (i % route.len()) };
        for &site in route.iter().take(steps) {
            net.schedule_capture(t, site, vec![item]);
            t += secs(24 * 3_600);
        }
    }
    net.run_until_quiescent();

    // --- The recall, issued from retail store n29 (no local data). ---
    let recall_desk = SiteId(29);
    let now = net.now();

    let mut current_locations: BTreeMap<SiteId, usize> = BTreeMap::new();
    let mut exposed_sites: BTreeMap<SiteId, usize> = BTreeMap::new();
    let mut total_messages = 0u64;
    let mut total_time_us = 0u64;

    for &item in &batch {
        let (loc, s1) = net.locate(recall_desk, item, now);
        let loc = loc.expect("every batch item was captured at the supplier");
        *current_locations.entry(loc).or_default() += 1;

        let (path, s2) = net.trace(recall_desk, item, SimTime::ZERO, now);
        assert!(s2.complete, "recall trace must be complete");
        assert_eq!(path.first().map(|v| v.site), Some(supplier));
        for v in &path {
            *exposed_sites.entry(v.site).or_default() += 1;
        }
        total_messages += s1.messages + s2.messages;
        total_time_us += (s1.time + s2.time).as_micros();
    }

    println!("RECALL REPORT — batch of {} items from {}", batch.len(), supplier);
    println!("\ncurrent locations (seize these):");
    for (site, n) in &current_locations {
        let tier = match chain.tier(*site) {
            Tier::Supplier => "supplier",
            Tier::DistributionCenter => "distribution centre",
            Tier::Retailer => "retail store",
        };
        println!("  {site} ({tier}): {n} items");
    }
    println!("\nexposed sites (inspect these):");
    for (site, n) in &exposed_sites {
        println!("  {site}: handled {n} items of the batch");
    }
    println!(
        "\nquery cost: {} P2P messages, {:.1} ms simulated wall-clock total, zero central servers",
        total_messages,
        total_time_us as f64 / 1_000.0
    );

    // Sanity: every item is accounted for, and the supplier saw all 40.
    let placed: usize = current_locations.values().sum();
    assert_eq!(placed, batch.len());
    assert_eq!(exposed_sites[&supplier], batch.len());
    println!("\nall {} items accounted for — recall complete.", placed);
}
