//! Churn demo: organizations join and leave while goods keep moving.
//!
//! Shows the machinery of §IV-A.2 working live:
//! * `Lp` grows with the network (Scheme 2) and the splitting process
//!   migrates index shards to the new prefix level;
//! * Chord key-range handoff keeps every object locatable across
//!   joins/leaves;
//! * the epidemic size estimator (§IV-A.1, ref \[14\]) tracks the true
//!   network size well enough to drive `Lp`.
//!
//! Run with:
//! ```text
//! cargo run -p peertrack-examples --bin churn_demo
//! ```

use moods::{ObjectId, SiteId};
use peertrack::estimator::{estimate_count, recommended_rounds};
use peertrack::{Builder, PrefixScheme};
use detrand::{rngs::StdRng, SeedableRng};
use simnet::time::secs;
use simnet::MsgClass;

fn main() {
    let mut net = Builder::new().sites(12).seed(31).build();
    println!("start: {} sites, Lp = {}", net.live_sites(), net.current_lp());

    // Index an initial population at the 12 founding sites.
    let goods: Vec<ObjectId> = (0..240).map(|s| workload::epc_object(s % 12, s as u64)).collect();
    for (i, &g) in goods.iter().enumerate() {
        net.schedule_capture(secs(1 + i as u64 % 10), SiteId((i % 12) as u32), vec![g]);
    }
    net.run_until_quiescent();

    // Wave of growth: 20 new organizations join.
    let lp_before = net.current_lp();
    for _ in 0..20 {
        net.join_site();
    }
    println!(
        "after 20 joins: {} sites, Lp {} -> {}, split/merge traffic: {} messages",
        net.live_sites(),
        lp_before,
        net.current_lp(),
        net.metrics().messages_of(MsgClass::SplitMerge),
    );
    assert!(net.current_lp() > lp_before, "Scheme 2 must raise Lp");

    // Every original object must still be locatable.
    let now = net.now();
    for (i, &g) in goods.iter().enumerate() {
        let (loc, _) = net.locate(SiteId(14), g, now);
        assert_eq!(loc, Some(SiteId((i % 12) as u32)), "object lost in churn");
    }
    println!("all {} objects still locatable after the splits", goods.len());

    // Contraction: 10 organizations leave gracefully (their shards hand
    // off to successors; their own repositories depart).
    for s in 22..32u32 {
        net.leave_site(SiteId(s));
    }
    println!(
        "after 10 leaves: {} sites, Lp = {}",
        net.live_sites(),
        net.current_lp()
    );
    for (i, &g) in goods.iter().enumerate() {
        let (loc, _) = net.locate(SiteId(0), g, net.now());
        assert_eq!(loc, Some(SiteId((i % 12) as u32)), "object lost in contraction");
    }
    println!("index survived the contraction too");

    // The size estimator: what a node would compute without global
    // knowledge, and the Lp it would derive.
    let nn = net.live_sites();
    let mut rng = StdRng::seed_from_u64(5);
    let est = estimate_count(nn, recommended_rounds(nn), &mut rng);
    let lp_est = PrefixScheme::Scheme2.lp(est.median().round() as usize);
    println!(
        "epidemic estimate of Nn: {:.1} (truth {}), {} gossip messages, derived Lp = {} (actual {})",
        est.median(),
        nn,
        est.messages,
        lp_est,
        net.current_lp(),
    );
    assert_eq!(lp_est, net.current_lp(), "estimated Lp must agree with the truth");

    // The whole session's traffic, class by class: indexing, IOP link
    // updates, split/merge migration and handoff all itemized through
    // the shared reporter.
    bench::report::print_class_traffic("traffic by message class", net.metrics());

    println!("done.");
}
