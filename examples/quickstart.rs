//! Quickstart: build a traceable network, capture some tagged objects,
//! and ask the two MOODS questions — `L(o, t)` (where is it?) and
//! `TR(o, t0, t1)` (where has it been?).
//!
//! Run with:
//! ```text
//! cargo run -p peertrack-examples --bin quickstart
//! ```

use ids::EpcCode;
use moods::{ObjectId, SiteId};
use peertrack::Builder;
use simnet::time::secs;
use simnet::SimTime;

fn main() {
    // A network of 16 organizations. Each gets a Chord identity; the
    // overlay is built and stabilized; Lp is derived from the network
    // size (Scheme 2, Eq. 6).
    let mut net = Builder::new().sites(16).seed(2024).build();
    println!(
        "network up: {} sites, Lp = {} ({} prefix groups)",
        net.live_sites(),
        net.current_lp(),
        1u64 << net.current_lp()
    );

    // A pallet of three tagged items (SGTIN-96 EPCs).
    let items: Vec<ObjectId> = (0..3)
        .map(|serial| {
            let epc = EpcCode::new(1, 5, 614_141, 812_345, serial).expect("valid EPC");
            println!("  tagged {}", epc.to_uri());
            ObjectId(epc.object_id())
        })
        .collect();

    // The pallet flows supplier (site 0) → DC (site 5) → store (site 9).
    net.schedule_capture(secs(10), SiteId(0), items.clone());
    net.schedule_capture(secs(3_600), SiteId(5), items.clone());
    net.schedule_capture(secs(7_200), SiteId(9), items.clone());

    // Drain the indexing traffic: windows flush, gateways update, IOP
    // links thread through the visited sites.
    net.run_until_quiescent();
    println!(
        "indexed: {} messages ({} bytes) of indexing traffic",
        net.metrics().indexing_messages(),
        net.metrics().indexing_bytes()
    );

    // L(o, t): where was item 0 one hour in? (query issued from site 14,
    // which knows nothing about the pallet)
    let (loc, stats) = net.locate(SiteId(14), items[0], secs(3_600));
    println!(
        "L(o0, t=1h)  = {:?}   [{} messages, {} simulated, answered by {:?}]",
        loc, stats.messages, stats.time, stats.source
    );
    assert_eq!(loc, Some(SiteId(5)));

    // TR(o, 0, now): the full path.
    let (path, stats) = net.trace(SiteId(14), items[0], SimTime::ZERO, net.now());
    let route: Vec<String> = path.iter().map(|v| v.site.to_string()).collect();
    println!(
        "TR(o0)       = {}   [{} messages, {} simulated]",
        route.join(" -> "),
        stats.messages,
        stats.time
    );
    assert_eq!(route, ["n0", "n5", "n9"]);

    // What crossed the (virtual) wire, class by class — rendered by the
    // same shared reporter the experiment binaries use.
    bench::report::print_class_traffic("traffic by message class", net.metrics());

    println!("done.");
}
