//! Predictive tracking — the paper's §VII future work, running on top
//! of the P2P traces.
//!
//! A logistics planner fits a movement model from the *historical*
//! traces PeerTrack serves (no central history needed — each trace is a
//! normal `TR` query), then forecasts where an in-flight shipment will
//! be tomorrow.
//!
//! Run with:
//! ```text
//! cargo run -p peertrack-examples --bin predictive_tracking
//! ```

use moods::SiteId;
use peertrack::Builder;
use predict::TransitionModel;
use detrand::{rngs::StdRng, SeedableRng};
use simnet::time::secs;
use simnet::SimTime;
use workload::topology::SupplyChain;

const DAY: u64 = 24 * 3_600;

fn main() {
    let chain = SupplyChain::generate(2, 3, 8, 5);
    let mut net = Builder::new().sites(chain.total()).seed(5).build();
    let mut rng = StdRng::seed_from_u64(77);

    // History: 120 completed shipments flow through the chain, dwelling
    // roughly a day per stop.
    let mut historical = Vec::new();
    for serial in 0..120u64 {
        let route = chain.sample_route(&mut rng);
        let o = workload::epc_object(route[0].0, serial);
        let mut t = secs(10 + serial * 13);
        for &site in &route {
            net.schedule_capture(t, site, vec![o]);
            t += secs(DAY);
        }
        historical.push(o);
    }
    net.run_until_quiescent();

    // Fit the model from P2P trace queries — the planner only uses the
    // public query API.
    let planner = SiteId(0);
    let corpus: Vec<moods::Path> = historical
        .iter()
        .map(|&o| net.trace(planner, o, SimTime::ZERO, SimTime::INFINITY).0)
        .collect();
    let model = TransitionModel::fit(&corpus);
    println!(
        "fitted movement model from {} historical traces ({} observed arrivals)",
        corpus.len(),
        corpus.iter().map(|p| p.len()).sum::<usize>()
    );

    // An in-flight shipment was just captured at a distribution centre.
    let dc = {
        // Pick the DC with the most outgoing history.
        chain
            .sites_of(workload::topology::Tier::DistributionCenter)
            .into_iter()
            .max_by_key(|&s| model.out_degree(s))
            .expect("chain has DCs")
    };
    println!("\nshipment currently at {dc} (mean dwell there: {})",
        model.mean_dwell(dc).map(|d| d.to_string()).unwrap_or_else(|| "unknown".into()));

    println!("\nmost likely next stops:");
    for (site, p) in model.next_distribution(dc).iter().take(3) {
        println!("  {site}: {:.0}%", p * 100.0);
    }

    for days in [1u64, 3, 7] {
        let dist = model.predict(dc, SimTime::ZERO, secs(days * DAY), 4_000, &mut rng);
        let top: Vec<String> = dist
            .iter()
            .take(3)
            .map(|(s, p)| format!("{s} ({:.0}%)", p * 100.0))
            .collect();
        println!("forecast +{days}d: {}", top.join(", "));
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    // Long horizon: the shipment ends at some retailer with near
    // certainty.
    let dist = model.predict(dc, SimTime::ZERO, secs(60 * DAY), 4_000, &mut rng);
    let retail_mass: f64 = dist
        .iter()
        .filter(|(s, _)| chain.tier(*s) == workload::topology::Tier::Retailer)
        .map(|(_, p)| p)
        .sum();
    println!("\nP(at a retailer within 60 days) = {:.1}%", retail_mass * 100.0);
    assert!(retail_mass > 0.95, "long-horizon mass must reach the retail tier");

    println!("done.");
}
