//! Pallet-level tracking: items ride SSCC-tagged pallets, dock doors
//! read only the pallet tag, and item-level queries are answered by
//! combining the P2P pallet trace with local containment knowledge.
//!
//! This is how §III's "objects often move in groups" actually looks in
//! a warehouse — and it shows the `moods::containment` layer composing
//! with the PeerTrack backend through the ordinary `Locate`/`Trace`
//! traits.
//!
//! Run with:
//! ```text
//! cargo run -p peertrack-examples --bin pallet_tracking
//! ```

use ids::{EpcCode, SsccCode};
use moods::containment::{resolve_locate, resolve_trace, ContainmentLog};
use moods::{ObjectId, SiteId};
use peertrack::Builder;
use simnet::time::secs;
use simnet::SimTime;

fn main() {
    let mut net = Builder::new().sites(12).seed(13).build();
    let mut containment = ContainmentLog::new();

    // 24 items, tagged SGTIN-96.
    let items: Vec<ObjectId> = (0..24)
        .map(|s| ObjectId(EpcCode::new(1, 5, 614_141, 55, s).expect("valid EPC").object_id()))
        .collect();
    // One pallet, tagged SSCC-96.
    let pallet =
        ObjectId(SsccCode::new(2, 5, 614_141, 42).expect("valid SSCC").object_id());

    // t=10s: items are captured individually at the packing station
    // (site 0) and packed onto the pallet.
    net.schedule_capture(secs(10), SiteId(0), items.clone());
    net.schedule_capture(secs(10), SiteId(0), vec![pallet]);
    for &item in &items {
        containment.pack(item, pallet, secs(20));
    }

    // The pallet (only!) crosses three dock doors.
    net.schedule_capture(secs(3_600), SiteId(4), vec![pallet]);
    net.schedule_capture(secs(7_200), SiteId(8), vec![pallet]);

    // t=10 000s: pallet is broken down at the store; items unpacked,
    // one item is shelved and re-captured individually.
    for &item in &items {
        containment.unpack(item, secs(10_000));
    }
    net.schedule_capture(secs(10_800), SiteId(8), vec![items[0]]);
    net.run_until_quiescent();

    println!(
        "indexed {} messages for 1 pallet + {} items\n",
        net.metrics().indexing_messages(),
        items.len()
    );

    // Item-level locate at t=2h: the item itself was never read after
    // packing, but the pallet was — containment resolves it.
    let reader = net.reader();
    let t = secs(7_200);
    let loc = resolve_locate(&containment, &reader, items[5], t);
    println!("item[5] at t=2h: {loc:?} (resolved through pallet {pallet:?})");
    assert_eq!(loc, Some(SiteId(8)));

    // Item-level trace: packing site + the pallet's journey + its own
    // shelf capture.
    let p = resolve_trace(&containment, &reader, items[0], SimTime::ZERO, SimTime::INFINITY);
    let route: Vec<String> = p.iter().map(|v| v.site.to_string()).collect();
    println!("item[0] full trace: {}", route.join(" -> "));
    assert_eq!(route, ["n0", "n4", "n8", "n8"]);

    // Dwell analytics over the stitched path.
    let stats = moods::path_stats(&p);
    println!(
        "item[0] stats: {} visits, {} distinct sites, journey {}",
        stats.visits, stats.distinct_sites, stats.journey
    );

    // Contrast: the raw P2P trace of the item alone misses the pallet
    // legs (it was never read at the dock doors).
    let raw = {
        let mut raw_net = net; // reuse the network mutably for stats-bearing query
        let (p, _) = raw_net.trace(SiteId(3), items[0], SimTime::ZERO, SimTime::INFINITY);
        p
    };
    println!(
        "raw item-only trace sees {} visits — containment recovered {} more",
        raw.len(),
        p.len() - raw.len()
    );
    assert!(p.len() > raw.len());

    println!("done.");
}
