//! Trace a run: record the causal event log of a small supply chain,
//! then export it as a Chrome trace (load `results/trace_demo.json` at
//! `chrome://tracing` or <https://ui.perfetto.dev>) plus a latency
//! summary CSV (`results/latency_histograms.csv`).
//!
//! Tracing is observation-only — the run is byte-identical to the same
//! seed without the recorder — and deterministic: two invocations write
//! identical files.
//!
//! Run with:
//! ```text
//! cargo run -p peertrack-examples --bin trace_run
//! ```

use moods::{ObjectId, SiteId};
use obs::{chrome_trace_json, latency_summary_csv, SharedRecorder, TraceView};
use peertrack::spans;
use peertrack::Builder;
use simnet::time::secs;
use simnet::SimTime;
use std::path::{Path, PathBuf};

/// `results/<file>` at the workspace root (the examples crate lives one
/// level under it).
fn results_path(file: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("examples crate lives one level under the workspace root");
    root.join("results").join(file)
}

fn main() {
    let mut net = Builder::new().sites(16).seed(2024).build();

    // Install the recorder *after* construction so the trace starts
    // clean at the first capture rather than inside the warm-up.
    let rec = SharedRecorder::new();
    net.set_trace_sink(Box::new(rec.clone()));

    // Two pallets flow supplier → distribution center → store; a third
    // object takes a detour. Every send, delivery, timer, and group
    // flush along the way lands in the recorder with its causal parent.
    let objects: Vec<ObjectId> = (0..3u64)
        .map(|n| ObjectId::from_raw(format!("traced-object-{n}").as_bytes()))
        .collect();
    net.schedule_capture(secs(10), SiteId(0), objects.clone());
    net.schedule_capture(secs(3_600), SiteId(5), objects.clone());
    net.schedule_capture(secs(7_200), SiteId(9), vec![objects[0], objects[1]]);
    net.schedule_capture(secs(7_300), SiteId(12), vec![objects[2]]);
    net.run_until_quiescent();

    // Queries open QUERY_LOCATE / QUERY_TRACE spans.
    let origin = SiteId(3);
    let (loc, _) = net.locate(origin, objects[2], net.now());
    println!("locate(object 2) = {loc:?}");
    let (path, _) = net.trace(origin, objects[0], SimTime::ZERO, SimTime::INFINITY);
    println!("trace(object 0) = {} visit(s)", path.len());

    let rec = rec.borrow();
    println!("\n{}", rec.summary());

    // The causal chain that produced object 2's final state, walked
    // backwards from its last delivery through every parent event.
    let view = TraceView::new(rec.events());
    let tag = spans::object_tag(objects[2]);
    if let Some(ev) = view.last_delivery_for_ctx(tag) {
        println!("causal chain of object 2's last delivery:");
        print!("{}", view.format_chain(ev.id));
    }

    let json = chrome_trace_json(&rec, &spans::label);
    let json_path = results_path("trace_demo.json");
    std::fs::create_dir_all(json_path.parent().expect("has parent")).expect("mkdir results");
    std::fs::write(&json_path, &json).expect("write trace_demo.json");
    println!("\nwrote {} ({} events)", json_path.display(), rec.events().len());

    let csv = latency_summary_csv(&rec, &spans::label);
    let csv_path = results_path("latency_histograms.csv");
    std::fs::write(&csv_path, &csv).expect("write latency_histograms.csv");
    println!("wrote {}", csv_path.display());
}
