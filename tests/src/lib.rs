//! Shared helpers for the workspace integration tests.

#![forbid(unsafe_code)]

pub mod audit;

use moods::{MovementLog, ObjectId, SiteId};
use peertrack::TraceableNetwork;
use simnet::SimTime;

/// A triple of tracking backends fed the same workload: the distributed
/// system under test, the centralized baseline, and the semantic oracle.
pub struct Tripled {
    /// The P2P system.
    pub net: TraceableNetwork,
    /// The centralized warehouse baseline.
    pub warehouse: centralized::Warehouse,
    /// The ground-truth oracle.
    pub oracle: MovementLog,
}

/// Feed the same capture events into all three backends and drain the
/// P2P indexing traffic.
pub fn triple_from_events(
    mut net: TraceableNetwork,
    events: &[workload::CaptureEvent],
) -> Tripled {
    let mut warehouse = centralized::Warehouse::new();
    let mut oracle = MovementLog::new();
    let mut sorted: Vec<&workload::CaptureEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.at);
    for ev in sorted {
        net.schedule_capture(ev.at, ev.site, ev.objects.clone());
        for &o in &ev.objects {
            warehouse.ingest(o, ev.site, ev.at);
            oracle.record(o, ev.site, ev.at);
        }
    }
    net.run_until_quiescent();
    Tripled { net, warehouse, oracle }
}

/// Assert all three backends agree on `L(o, t)` and lifetime `TR`.
pub fn assert_agreement(t: &mut Tripled, object: ObjectId, probes: &[SimTime], from: SiteId) {
    use moods::{Locate, Trace};
    for &probe in probes {
        let p2p = t.net.locate(from, object, probe).0;
        let central = t.warehouse.locate(object, probe);
        let truth = t.oracle.locate(object, probe);
        assert_eq!(p2p, truth, "P2P disagrees with oracle at {probe}");
        assert_eq!(central, truth, "warehouse disagrees with oracle at {probe}");
    }
    let p2p = t.net.trace(from, object, SimTime::ZERO, SimTime::INFINITY).0;
    let truth = t.oracle.trace(object, SimTime::ZERO, SimTime::INFINITY);
    assert_eq!(p2p, truth, "P2P trace disagrees with oracle");
}
