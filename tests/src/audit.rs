//! The schedule-exploring invariant auditor.
//!
//! A *schedule* is a sequence of operations — captures, movements,
//! churn, crashes, clock advances — encoded as `u64` words so that a
//! failing schedule prints as a runnable reproducer (see
//! [`format_schedule`] / the `AUDIT_SCHEDULE` replay test). The auditor
//! [`run_schedule`]s a word list against a small faulty network while
//! maintaining a [`MovementLog`] oracle, then checks global invariants
//! after quiescence:
//!
//! * **Chord agreement** — the ring's successor/predecessor/finger state
//!   is converged.
//! * **Index uniqueness & placement** — no object is indexed at two
//!   gateways; every entry sits in a shard whose prefix matches the
//!   object's hash, hosted by the DHT owner of that prefix, and is
//!   reachable through the Data-Triangle ancestor chain.
//! * **Locate agreement** — for objects untouched by crashes, `L(o,t)`
//!   equals the oracle; crash-tainted objects may degrade but never
//!   fabricate a site the object did not visit.
//! * **IOP chain consistency** — walking the distributed doubly-linked
//!   list from the gateway's latest link visits only true oracle visits
//!   in order, with mutually consistent `from`/`to` links.
//! * **Trace agreement** — `TR(o)` is a subsequence of the oracle path;
//!   exact (and flagged complete) when no reordering anomaly occurred.
//!
//! Crashes lose data by design (no replication in the paper), so
//! crash-affected objects are *tainted* and held to the weaker
//! "degrade detectably, never silently lie" standard. Graceful leaves
//! migrate their index shards, so they taint traces (repository gone)
//! but not locates.
//!
//! WAN runs ([`AuditConfig::regions`] = 3) add region-cut partition
//! faults ([`Op::RegionCut`]/[`Op::RegionHeal`]): cross-pair traffic
//! parks in the geo plane and releases in send order at the heal, any
//! cut still open is healed before the final quiescence, and the
//! post-heal state is held to full oracle exactness plus replica
//! reconvergence (every holder's copy byte-identical to its primary).

use moods::{MovementLog, ObjectId, Path, SiteId, Visit};
use peertrack::config::RetryConfig;
use peertrack::store::IndexEntry;
use peertrack::{Builder, GroupConfig, IndexingMode, TraceableNetwork};
use simnet::fault::FaultConfig;
use simnet::time::ms;
use simnet::{FaultStats, MsgClass, SimTime};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Simulated-time gap between consecutive schedule arrivals; small
/// enough that several captures share one indexing window (`T_MAX`).
const STEP: SimTime = SimTime::from_millis(35);
/// Window width used by the audit harness.
const T_MAX: SimTime = ms(150);
/// Window object bound.
const N_MAX: usize = 8;
/// Delegation threshold — tiny, so schedules exercise Data Triangles.
const DELEGATE_THRESHOLD: usize = 6;
/// Minimum prefix length (`Lmin`).
const L_MIN: usize = 3;

/// One schedule operation. Selectors are resolved modulo the live
/// population when the op executes, so every word is valid in every
/// state (shrinking never produces an inapplicable schedule).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Capture a fresh object at the selected live site.
    Capture {
        /// Live-site selector.
        site: u16,
    },
    /// Re-capture an existing object (selector modulo created objects)
    /// at the selected live site — a movement.
    MoveObj {
        /// Live-site selector.
        site: u16,
        /// Created-object selector.
        obj: u16,
    },
    /// Run the simulation forward by `ms` milliseconds.
    Advance {
        /// Milliseconds to advance.
        ms: u16,
    },
    /// Drain the event queue completely.
    Quiesce,
    /// A new organization joins.
    Join,
    /// A schedule-joined organization leaves gracefully.
    Leave {
        /// Joined-site selector.
        sel: u16,
    },
    /// A schedule-joined organization crashes mid-protocol.
    Crash {
        /// Joined-site selector.
        sel: u16,
    },
    /// A live organization (founder or joined, never the query origin)
    /// fails **permanently** — the kill-forever fault model. With
    /// replication on ([`AuditConfig::replicas`] = K) the first K−1
    /// kills of a run are true kills whose data must stay fully
    /// readable (no taints: locate/trace are held to oracle
    /// exactness); past the budget, or with replication off, the op
    /// degrades to an ordinary crash with crash taints.
    Kill {
        /// Live-site selector (resolved over live sites except 0).
        sel: u16,
    },
    /// Locate an existing object (selector modulo created objects) from
    /// founder 0 mid-schedule. Queries are read-only, so this never
    /// perturbs the protocol — but with a locate cache configured
    /// ([`AuditConfig::locate_cache`]) it warms the cache, so later
    /// movements must invalidate the cached answer for the
    /// post-quiescence invariants to hold.
    Locate {
        /// Created-object selector.
        obj: u16,
    },
    /// Sever the WAN links between two regions (selectors modulo the
    /// region count; equal selections resolve to adjacent regions).
    /// Cross-pair messages park in the geo plane — never drop — and
    /// release in send order at the heal. No-op without a geo plane
    /// ([`AuditConfig::regions`] = 0) or when the pair is already cut.
    /// While any cut is active, churn ops (`Join`/`Leave`/`Crash`/
    /// `Kill`) degrade to no-ops: ring stabilization across an active
    /// partition is out of scope for the audited protocol.
    RegionCut {
        /// First region selector.
        a: u16,
        /// Second region selector.
        b: u16,
    },
    /// Heal one active region cut (selector modulo the active cuts, in
    /// cut order). No-op when no cut is active. Whatever the schedule
    /// does, the harness heals **all** remaining cuts before the final
    /// quiescence — the post-heal invariants (oracle-exact answers,
    /// reconverged replicas) are always checked on a connected network.
    RegionHeal {
        /// Active-cut selector.
        sel: u16,
    },
}

const TAG_CAPTURE: u64 = 0;
const TAG_MOVE: u64 = 1;
const TAG_ADVANCE: u64 = 2;
const TAG_QUIESCE: u64 = 3;
const TAG_JOIN: u64 = 4;
const TAG_LEAVE: u64 = 5;
const TAG_CRASH: u64 = 6;
const TAG_KILL: u64 = 7;
const TAG_LOCATE: u64 = 8;
const TAG_REGION_CUT: u64 = 9;
const TAG_REGION_HEAL: u64 = 10;
const NUM_TAGS: u64 = 11;

/// Encode an op as one schedule word: tag in the top byte, operands in
/// the low 32 bits.
pub fn encode(op: Op) -> u64 {
    let (tag, a, b) = match op {
        Op::Capture { site } => (TAG_CAPTURE, site, 0),
        Op::MoveObj { site, obj } => (TAG_MOVE, site, obj),
        Op::Advance { ms } => (TAG_ADVANCE, ms, 0),
        Op::Quiesce => (TAG_QUIESCE, 0, 0),
        Op::Join => (TAG_JOIN, 0, 0),
        Op::Leave { sel } => (TAG_LEAVE, sel, 0),
        Op::Crash { sel } => (TAG_CRASH, sel, 0),
        Op::Kill { sel } => (TAG_KILL, sel, 0),
        Op::Locate { obj } => (TAG_LOCATE, obj, 0),
        Op::RegionCut { a, b } => (TAG_REGION_CUT, a, b),
        Op::RegionHeal { sel } => (TAG_REGION_HEAL, sel, 0),
    };
    (tag << 56) | ((a as u64) << 16) | b as u64
}

/// Decode a schedule word. Total: every `u64` decodes to some op (tag
/// taken modulo the op count), so arbitrary words are runnable.
pub fn decode(word: u64) -> Op {
    let a = ((word >> 16) & 0xFFFF) as u16;
    let b = (word & 0xFFFF) as u16;
    match (word >> 56) % NUM_TAGS {
        TAG_CAPTURE => Op::Capture { site: a },
        TAG_MOVE => Op::MoveObj { site: a, obj: b },
        TAG_ADVANCE => Op::Advance { ms: a },
        TAG_QUIESCE => Op::Quiesce,
        TAG_JOIN => Op::Join,
        TAG_LEAVE => Op::Leave { sel: a },
        TAG_CRASH => Op::Crash { sel: a },
        TAG_KILL => Op::Kill { sel: a },
        TAG_LOCATE => Op::Locate { obj: a },
        TAG_REGION_CUT => Op::RegionCut { a, b },
        _ => Op::RegionHeal { sel: a },
    }
}

/// Per-op shrink candidates, most aggressive first: destructive ops
/// simplify toward benign ones, selectors and durations toward zero.
pub fn shrink_word(word: u64) -> Vec<u64> {
    let halves = |v: u16| -> Vec<u16> {
        let mut out = Vec::new();
        if v > 0 {
            out.push(0);
        }
        if v / 2 != 0 && v / 2 != v {
            out.push(v / 2);
        }
        out
    };
    let ops = match decode(word) {
        Op::Capture { site } => halves(site).into_iter().map(|site| Op::Capture { site }).collect(),
        Op::MoveObj { site, obj } => {
            let mut c = vec![Op::Capture { site }];
            c.extend(halves(site).into_iter().map(|site| Op::MoveObj { site, obj }));
            c.extend(halves(obj).into_iter().map(|obj| Op::MoveObj { site, obj }));
            c
        }
        Op::Advance { ms } => halves(ms).into_iter().map(|ms| Op::Advance { ms }).collect(),
        Op::Quiesce | Op::Join => Vec::new(),
        Op::Leave { sel } => {
            let mut c = vec![Op::Capture { site: sel }];
            c.extend(halves(sel).into_iter().map(|sel| Op::Leave { sel }));
            c
        }
        Op::Crash { sel } => {
            let mut c = vec![Op::Leave { sel }, Op::Capture { site: sel }];
            c.extend(halves(sel).into_iter().map(|sel| Op::Crash { sel }));
            c
        }
        Op::Kill { sel } => {
            let mut c = vec![Op::Crash { sel }, Op::Leave { sel }, Op::Capture { site: sel }];
            c.extend(halves(sel).into_iter().map(|sel| Op::Kill { sel }));
            c
        }
        Op::Locate { obj } => {
            let mut c = vec![Op::Quiesce];
            c.extend(halves(obj).into_iter().map(|obj| Op::Locate { obj }));
            c
        }
        Op::RegionCut { a, b } => {
            let mut c = vec![Op::Quiesce];
            c.extend(halves(a).into_iter().map(|a| Op::RegionCut { a, b }));
            c.extend(halves(b).into_iter().map(|b| Op::RegionCut { a, b }));
            c
        }
        Op::RegionHeal { sel } => {
            let mut c = vec![Op::Quiesce];
            c.extend(halves(sel).into_iter().map(|sel| Op::RegionHeal { sel }));
            c
        }
    };
    ops.into_iter().map(encode).filter(|&w| w != word).collect()
}

/// Render a word list as the comma-separated decimal form the
/// `AUDIT_SCHEDULE` environment variable accepts.
pub fn format_schedule(words: &[u64]) -> String {
    words.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
}

/// Parse the `AUDIT_SCHEDULE` form (decimal words separated by commas
/// and/or whitespace).
pub fn parse_schedule(s: &str) -> Result<Vec<u64>, String> {
    s.split(|c: char| c == ',' || c.is_whitespace())
        .filter(|t| !t.is_empty())
        .map(|t| t.parse::<u64>().map_err(|e| format!("bad schedule word {t:?}: {e}")))
        .collect()
}

/// Human-readable decoding of a schedule.
pub fn describe(words: &[u64]) -> String {
    let ops: Vec<Op> = words.iter().map(|&w| decode(w)).collect();
    format!("{ops:?}")
}

/// Harness configuration for one audited run.
#[derive(Clone, Copy, Debug)]
pub struct AuditConfig {
    /// Founding sites (never churned by the schedule; queries originate
    /// at founder 0).
    pub founders: usize,
    /// Engine seed (node identities, latencies).
    pub seed: u64,
    /// Fault-plane seed (independent, see `simnet::fault`).
    pub fault_seed: u64,
    /// Uniform per-delivery drop probability.
    pub drop: f64,
    /// Retry layer configuration.
    pub retry: RetryConfig,
    /// Replication factor K (1 disables replication; then every
    /// [`Op::Kill`] degrades to a crash).
    pub replicas: usize,
    /// Per-site locate-answer cache capacity (`None` = caching off).
    /// Caching must be invisible to every invariant: the auditor holds
    /// cached runs to the same oracle exactness as uncached ones.
    pub locate_cache: Option<usize>,
    /// WAN regions: `0` runs without a geo plane (the seed's uniform
    /// network — every pre-existing configuration); `3` installs the
    /// `geo::Topology::wan3` latency plane over the founders and
    /// enables [`Op::RegionCut`]/[`Op::RegionHeal`]. Other values are
    /// rejected at run time (the audit topology is the canonical
    /// three-region WAN).
    pub regions: usize,
}

impl AuditConfig {
    /// A lossy network with the retry layer off — the configuration the
    /// auditor demonstrates violations against.
    pub fn lossy_no_retries(drop: f64) -> AuditConfig {
        AuditConfig {
            founders: 6,
            seed: 0xA0D1_7E57,
            fault_seed: 0xFA01_7501,
            drop,
            retry: RetryConfig::disabled(),
            replicas: 1,
            locate_cache: None,
            regions: 0,
        }
    }

    /// The same configuration with a locate-answer cache of `capacity`
    /// entries per site.
    pub fn with_locate_cache(self, capacity: usize) -> AuditConfig {
        AuditConfig { locate_cache: Some(capacity), ..self }
    }

    /// A fault-free network with K-successor replication on — the
    /// configuration the kill-forever invariant is asserted against.
    pub fn replicated(k: usize) -> AuditConfig {
        AuditConfig { replicas: k, ..AuditConfig::lossy_no_retries(0.0) }
    }

    /// A fault-free, K-replicated network over the three-region WAN
    /// topology — the configuration the region-cut/heal recovery
    /// invariants (oracle-exact answers, reconverged replicas after
    /// heal + quiescence) are asserted against.
    pub fn wan(k: usize) -> AuditConfig {
        AuditConfig { regions: 3, ..AuditConfig::replicated(k) }
    }

    /// The same lossy network with the retry layer on (longer attempt
    /// budget than the default: schedules are short, so the harness can
    /// afford patience in exchange for delivery certainty).
    pub fn lossy_with_retries(drop: f64) -> AuditConfig {
        AuditConfig {
            retry: RetryConfig {
                enabled: true,
                timeout: ms(120),
                backoff: 2,
                max_attempts: 8,
            },
            ..AuditConfig::lossy_no_retries(drop)
        }
    }
}

/// What one audited run observed.
#[derive(Debug)]
pub struct AuditReport {
    /// Invariant violations, sorted; empty means the run is clean.
    pub violations: Vec<String>,
    /// Objects the schedule created.
    pub objects: usize,
    /// Ops that actually executed (selector no-ops excluded).
    pub ops_applied: usize,
    /// Protocol anomaly counters at the end of the run.
    pub anomalies: peertrack::world::Anomalies,
    /// Fault-plane delivery statistics.
    pub fault_stats: FaultStats,
    /// Retransmissions charged to `MsgClass::Retrans`.
    pub retrans_messages: u64,
    /// Acks charged to `MsgClass::Ack`.
    pub ack_messages: u64,
    /// Query completeness over all oracle objects: (exact locates,
    /// total locates).
    pub locate_agreement: (usize, usize),
}

fn audit_mode() -> IndexingMode {
    IndexingMode::Group(GroupConfig {
        l_min: L_MIN,
        t_max: T_MAX,
        n_max: N_MAX,
        delegate_threshold: Some(DELEGATE_THRESHOLD),
        ..GroupConfig::default()
    })
}

fn live_sites_of(net: &TraceableNetwork) -> Vec<SiteId> {
    net.world.sites.iter().filter(|s| s.alive).map(|s| s.site).collect()
}

fn audit_object(n: u64) -> ObjectId {
    ObjectId::from_raw(format!("audit-object-{n}").as_bytes())
}

/// Objects whose data the imminent crash of `victim` may take down:
/// entries hosted at the victim, objects whose prefix (at any plausible
/// triangle depth) is owned by the victim (in-flight index updates die
/// with it), and objects whose latest oracle visit is at the victim
/// (an unflushed window or the live repository is lost).
fn crash_taints(
    net: &TraceableNetwork,
    oracle: &MovementLog,
    created: &[ObjectId],
    victim: SiteId,
    taint: &mut HashSet<ObjectId>,
) {
    let vidx = victim.0 as usize;
    let victim_chord = net.world.sites[vidx].chord_id;
    for shard in net.world.sites[vidx].gateway.prefixes.values() {
        taint.extend(shard.entries.keys().copied());
    }
    taint.extend(net.world.sites[vidx].gateway.objects.keys().copied());

    // Replica copies the victim holds for already-dead primaries are
    // load-bearing: they are the read fallback that keeps the dead
    // site's records answerable, and a crash can erase the last copy
    // (a kill inside the K−1 budget re-establishes placement; a crash
    // by definition loses data). Everything in them is suspect.
    for (primary, store) in &net.world.sites[vidx].replica_iop {
        if !net.world.sites[primary.0 as usize].alive {
            taint.extend(store.iter().map(|(o, _)| o));
        }
    }

    let max_len = net
        .world
        .sites
        .iter()
        .filter(|s| s.alive)
        .flat_map(|s| s.gateway.prefixes.keys().map(|p| p.len()))
        .max()
        .unwrap_or(0)
        .max(net.current_lp())
        + 1;
    for &o in created {
        if oracle.visits(o).last().map(|v| v.site) == Some(victim) {
            taint.insert(o);
            continue;
        }
        for l in L_MIN..=max_len {
            let key = ids::Prefix::of_id(&o.id(), l).gateway_id();
            if net.ring().successor_of(&key) == Some(victim_chord) {
                taint.insert(o);
                break;
            }
        }
    }
}

/// Execute a schedule and audit the invariants after quiescence.
pub fn run_schedule(cfg: &AuditConfig, words: &[u64]) -> AuditReport {
    run_schedule_inner(cfg, words, None)
}

/// [`run_schedule`] with a causal trace recorded from the first event.
/// Tracing is observation-only: the report is identical to the
/// untraced run's (a test asserts this), so a violation found blind
/// can be re-run traced to obtain its causal slice.
pub fn run_schedule_traced(cfg: &AuditConfig, words: &[u64]) -> (AuditReport, obs::SharedRecorder) {
    let rec = obs::SharedRecorder::new();
    let report = run_schedule_inner(cfg, words, Some(rec.clone()));
    (report, rec)
}

fn run_schedule_inner(
    cfg: &AuditConfig,
    words: &[u64],
    trace: Option<obs::SharedRecorder>,
) -> AuditReport {
    let mut builder = Builder::new()
        .sites(cfg.founders)
        .seed(cfg.seed)
        .mode(audit_mode())
        .replicas(cfg.replicas.max(1))
        .faults(FaultConfig::uniform_drop(cfg.fault_seed, cfg.drop))
        .retry(cfg.retry);
    if let Some(cap) = cfg.locate_cache {
        builder = builder.locate_cache(cap);
    }
    let regions: u16 = match cfg.regions {
        0 => 0,
        3 => {
            builder = builder.geo(simnet::GeoConfig::new(
                cfg.seed ^ 0x6E0_0C07,
                geo::Topology::wan3(cfg.founders),
            ));
            3
        }
        r => panic!("audit topology is the three-region WAN (regions = 0 or 3, got {r})"),
    };
    if let Some(rec) = trace {
        builder = builder.trace_sink(Box::new(rec));
    }
    let mut net = builder.build();

    let mut oracle = MovementLog::new();
    let mut created: Vec<ObjectId> = Vec::new();
    let mut joined: Vec<SiteId> = Vec::new();
    let mut dead: BTreeSet<SiteId> = BTreeSet::new();
    let mut killed: BTreeSet<SiteId> = BTreeSet::new();
    let mut cuts: Vec<(u16, u16)> = Vec::new();
    let mut locate_taint: HashSet<ObjectId> = HashSet::new();
    let mut clock = SimTime::ZERO;
    let mut next_obj = 0u64;
    let mut ops_applied = 0usize;

    for &word in words {
        let op = decode(word);
        if !cuts.is_empty()
            && matches!(op, Op::Join | Op::Leave { .. } | Op::Crash { .. } | Op::Kill { .. })
        {
            // Churn no-ops while a region cut is active (see
            // `Op::RegionCut`) — stabilization across a partition is
            // out of scope.
            continue;
        }
        match op {
            Op::Capture { site } | Op::MoveObj { site, .. } => {
                let targets = live_sites_of(&net);
                let s = targets[site as usize % targets.len()];
                let o = match op {
                    Op::Capture { .. } => {
                        let o = audit_object(next_obj);
                        next_obj += 1;
                        created.push(o);
                        o
                    }
                    Op::MoveObj { obj, .. } => {
                        if created.is_empty() {
                            continue;
                        }
                        created[obj as usize % created.len()]
                    }
                    _ => unreachable!(),
                };
                clock = clock.max(net.now()) + STEP;
                net.schedule_capture(clock, s, vec![o]);
                oracle.record(o, s, clock);
            }
            Op::Advance { ms: m } => {
                let deadline = net.now() + SimTime::from_millis(m as u64);
                net.run_until(deadline);
            }
            Op::Quiesce => net.run_until_quiescent(),
            Op::Join => joined.push(net.join_site()),
            Op::Leave { sel } => {
                if joined.is_empty() {
                    continue;
                }
                let s = joined.swap_remove(sel as usize % joined.len());
                dead.insert(s);
                net.leave_site(s);
            }
            Op::Crash { sel } => {
                if joined.is_empty() {
                    continue;
                }
                let s = joined.swap_remove(sel as usize % joined.len());
                crash_taints(&net, &oracle, &created, s, &mut locate_taint);
                dead.insert(s);
                net.crash_site(s);
            }
            Op::Kill { sel } => {
                // Any live site except the query origin may be lost.
                let targets: Vec<SiteId> =
                    live_sites_of(&net).into_iter().filter(|s| s.0 != 0).collect();
                if targets.is_empty() {
                    continue;
                }
                let s = targets[sel as usize % targets.len()];
                joined.retain(|&j| j != s);
                if cfg.replicas > 1 && killed.len() < cfg.replicas - 1 {
                    // A true kill, inside the tolerated budget: the data
                    // must survive through replicas, so NO taints — the
                    // invariants hold this run to oracle exactness.
                    killed.insert(s);
                    net.kill_forever(s);
                } else {
                    // Budget exhausted (a K-th loss can erase a whole
                    // replica set) or replication off: degrade to the
                    // crash fault model, taints and all.
                    crash_taints(&net, &oracle, &created, s, &mut locate_taint);
                    dead.insert(s);
                    net.crash_site(s);
                }
            }
            Op::Locate { obj } => {
                if created.is_empty() {
                    continue;
                }
                // Read-only: warms the locate cache (when configured) so
                // later movements exercise epoch invalidation; the
                // answer itself is audited after quiescence.
                let o = created[obj as usize % created.len()];
                let _ = net.locate(SiteId(0), o, net.now());
            }
            Op::RegionCut { a, b } => {
                if regions == 0 {
                    continue;
                }
                let (ra, rb) = (a % regions, b % regions);
                let (ra, rb) = if ra == rb { (ra, (ra + 1) % regions) } else { (ra, rb) };
                let key = (ra.min(rb), ra.max(rb));
                if cuts.contains(&key) {
                    continue;
                }
                net.region_cut(key.0, key.1);
                cuts.push(key);
            }
            Op::RegionHeal { sel } => {
                if cuts.is_empty() {
                    continue;
                }
                let key = cuts.remove(sel as usize % cuts.len());
                net.region_heal(key.0, key.1);
            }
        }
        ops_applied += 1;
    }
    // Whatever the schedule left severed, the post-run invariants are
    // checked on a healed, quiesced network — that is the recovery
    // contract: after heal + quiescence, answers are oracle-exact and
    // replicas reconverge.
    if !cuts.is_empty() {
        net.region_heal_all();
        cuts.clear();
    }
    net.run_until_quiescent();

    let violations = check_invariants(&mut net, &oracle, &created, &dead, &locate_taint);
    let anomalies = net.anomalies();
    let exact = violations.iter().filter(|v| v.starts_with("locate")).count();
    AuditReport {
        objects: created.len(),
        ops_applied,
        anomalies,
        fault_stats: net.fault_stats().expect("audit networks always have a fault plane"),
        retrans_messages: net.metrics().messages_of(MsgClass::Retrans),
        ack_messages: net.metrics().messages_of(MsgClass::Ack),
        locate_agreement: (created.len().saturating_sub(exact), created.len()),
        violations,
    }
}

/// How many violating objects [`causal_slice`] dumps chains for.
const MAX_SLICE_OBJECTS: usize = 3;

/// Render the causal slice of a traced run for each object named in the
/// violations: the ancestor chain of the object's last causally-tagged
/// delivery, one event per line. Printed next to the `AUDIT_SCHEDULE`
/// reproducer so a failing schedule arrives with its own diagnosis —
/// *which* message chain produced the stale/missing state, and where
/// along it the drop or reordering happened.
pub fn causal_slice(rec: &obs::Recorder, report: &AuditReport) -> String {
    let view = obs::TraceView::new(rec.events());
    let mut out = String::new();
    let mut dumped = 0usize;
    for n in 0..report.objects as u64 {
        if dumped == MAX_SLICE_OBJECTS {
            out.push_str("(further violating objects elided)\n");
            break;
        }
        let o = audit_object(n);
        let needle = format!("{o:?}");
        if !report.violations.iter().any(|v| v.contains(&needle)) {
            continue;
        }
        dumped += 1;
        let tag = peertrack::spans::object_tag(o);
        let tagged = view.filter_ctx(tag);
        match view.last_delivery_for_ctx(tag) {
            Some(ev) => {
                out.push_str(&format!(
                    "causal slice for {o:?} (ctx={tag:#018x}, {} tagged event(s)):\n",
                    tagged.len()
                ));
                out.push_str(&view.format_chain(ev.id));
            }
            None => {
                out.push_str(&format!(
                    "no tagged events for {o:?} (ctx={tag:#018x}) — \
                     its updates never entered the network\n"
                ));
            }
        }
    }
    if dumped == 0 {
        out.push_str("no violation names a created object; last events of the trace:\n");
        for ev in rec.events().iter().rev().take(8).rev() {
            out.push_str(&obs::format_event(ev));
            out.push('\n');
        }
    }
    out
}

/// `(site, arrived)` pairs of `sub` appear in `full` in order.
fn is_subsequence(sub: &Path, full: &Path) -> bool {
    let mut it = full.iter();
    sub.iter().all(|v| it.any(|f| f.site == v.site && f.arrived == v.arrived))
}

fn check_invariants(
    net: &mut TraceableNetwork,
    oracle: &MovementLog,
    created: &[ObjectId],
    dead: &BTreeSet<SiteId>,
    locate_taint: &HashSet<ObjectId>,
) -> Vec<String> {
    let mut v: Vec<String> = Vec::new();

    // I1 — Chord successor/predecessor/finger agreement.
    if let Err(e) = net.ring().check_converged() {
        v.push(format!("chord: overlay not converged after quiescence: {e}"));
    }

    // I7 — anti-entropy reconvergence: after quiescence (and, in WAN
    // runs, after every region cut healed) each live primary's replica
    // holders carry byte-identical copies. Vacuous with replication
    // off; every replicated audit configuration is loss-free, so
    // divergence here is a real protocol failure, not dropped sync.
    v.extend(net.world.replica_divergence());

    // I2/I3 — scan every live gateway: uniqueness, prefix match,
    // DHT placement, Data-Triangle reachability.
    let lp = net.current_lp();
    let mut holders: HashMap<ObjectId, Vec<(SiteId, ids::Prefix, IndexEntry)>> = HashMap::new();
    for s in net.world.sites.iter().filter(|s| s.alive) {
        if !s.gateway.objects.is_empty() {
            v.push(format!("index: site {} holds individual-mode entries in group mode", s.site));
        }
        for (p, shard) in &s.gateway.prefixes {
            for (o, e) in &shard.entries {
                holders.entry(*o).or_default().push((s.site, *p, *e));
            }
        }
    }
    for &o in created {
        let Some(entries) = holders.get_mut(&o) else { continue };
        entries.sort_by_key(|(s, p, _)| (s.0, *p));
        if entries.len() > 1 {
            v.push(format!(
                "index: object {o:?} locatable at {} gateways: {:?}",
                entries.len(),
                entries.iter().map(|(s, p, _)| (s.0, p.as_bit_string())).collect::<Vec<_>>()
            ));
        }
        for (site, p, _) in entries.iter() {
            if !p.matches(&o.id()) {
                v.push(format!("index: entry for {o:?} filed under foreign prefix {p}"));
            }
            let holder_chord = net.world.sites[site.0 as usize].chord_id;
            if net.ring().successor_of(&p.gateway_id()) != Some(holder_chord) {
                v.push(format!("index: shard {p} at site {site} is not the DHT owner's"));
            }
            // Triangle reachability, mirroring the §IV-A.3 lookup: the
            // descent below Lp only follows contiguously-hosted child
            // prefixes, while the ascent probes every hosted ancestor
            // down to Lmin (the entry's own level must be hosted).
            if p.len() < L_MIN {
                v.push(format!("triangle: entry for {o:?} at {p} below Lmin"));
            } else if p.len() > lp {
                for l in lp + 1..=p.len() {
                    if !net.world.is_hosted(&ids::Prefix::of_id(&o.id(), l)) {
                        v.push(format!(
                            "triangle: entry for {o:?} at {p} unreachable — level-{l} of the \
                             descent chain is not hosted"
                        ));
                        break;
                    }
                }
            } else if p.len() < lp && !net.world.is_hosted(p) {
                v.push(format!(
                    "triangle: entry for {o:?} at {p} invisible to the ascent — shard not \
                     registered as hosted"
                ));
            }
        }
    }

    // Reordered deliveries (retransmission racing a later capture) are
    // detected and skipped by the gateway, leaving the out-of-order
    // visit unthreaded; exact-chain assertions apply only to runs where
    // that never happened.
    let ordering_clean = net.anomalies().out_of_order_arrivals == 0;
    let origin = SiteId(0);

    for &o in created {
        let truth = oracle.visits(o);
        let latest = truth.last().expect("created objects have a visit");
        let trace_tainted = truth.iter().any(|t| dead.contains(&t.site));
        let loc_tainted = locate_taint.contains(&o);

        // I4 — locate agreement. Exactness requires ordering_clean: a
        // detected-but-unrepairable reordering (counted by the system)
        // legitimately leaves a mid-chain visit unthreaded, which the
        // local-anchor shortcut can answer from.
        let (loc, stats) = net.locate(origin, o, net.now());
        if !loc_tainted && ordering_clean {
            if loc != Some(latest.site) {
                v.push(format!(
                    "locate: {o:?} answered {loc:?}, oracle says {:?} (complete={})",
                    latest.site, stats.complete
                ));
            }
            let n = holders.get(&o).map_or(0, Vec::len);
            if n == 1 {
                let (_, _, e) = holders[&o][0];
                if (e.site, e.time) != (latest.site, latest.arrived) {
                    v.push(format!(
                        "index: stale entry for {o:?}: ({}, {}) vs oracle ({}, {})",
                        e.site, e.time, latest.site, latest.arrived
                    ));
                }
            } else if n == 0 {
                v.push(format!("index: {o:?} has no gateway entry anywhere"));
            }
        } else if let Some(site) = loc {
            // Tainted or reordered: degraded answers are acceptable,
            // fabricated ones are not — the site must appear in the
            // true history.
            if stats.complete && !truth.iter().any(|t| t.site == site) {
                v.push(format!("locate: degraded {o:?} fabricated site {site}"));
            }
        }

        // I6 — trace agreement.
        let (path, tstats) = net.trace(origin, o, SimTime::ZERO, SimTime::INFINITY);
        if !is_subsequence(&path, &truth) {
            v.push(format!(
                "trace: {o:?} returned visits outside the oracle path: {path:?} vs {truth:?}"
            ));
        }
        if !trace_tainted && !loc_tainted && ordering_clean {
            if path != truth {
                v.push(format!("trace: {o:?} incomplete: {path:?} vs oracle {truth:?}"));
            } else if !tstats.complete {
                v.push(format!("trace: {o:?} exact yet flagged incomplete"));
            }
        }

        // I5 — IOP doubly-linked chain walk from the gateway's latest
        // link, structural (bypasses the query layer).
        if !trace_tainted && !loc_tainted {
            if let Some(entries) = holders.get(&o) {
                if let [(_, _, e)] = entries.as_slice() {
                    walk_iop_chain(net, o, e, &truth, ordering_clean, &mut v);
                }
            }
        }
    }

    v.sort();
    v.dedup();
    v
}

/// Follow `from` links backwards from the gateway's latest link,
/// checking record existence, back-link (`to`) consistency, and that
/// the walked visits are a suffix-free-form subsequence of the truth.
fn walk_iop_chain(
    net: &TraceableNetwork,
    o: ObjectId,
    entry: &IndexEntry,
    truth: &Path,
    ordering_clean: bool,
    v: &mut Vec<String>,
) {
    let mut cur = entry.link();
    let mut walked: Vec<Visit> = Vec::new();
    let mut expected_to: Option<peertrack::store::Link> = None;
    for _ in 0..truth.len() + 2 {
        // Read through the replica-aware lookup: a record at a
        // permanently-killed site must still be readable from its
        // holders — that IS the kill-forever invariant.
        let Some(rec) = net.world.iop_record(cur.site, o, cur.time) else {
            if !net.world.sites[cur.site.0 as usize].alive {
                v.push(format!(
                    "iop: chain of untainted {o:?} leads to dead site {} and no replica \
                     holds its record at {}",
                    cur.site, cur.time
                ));
            } else {
                v.push(format!(
                    "iop: chain of {o:?} dangles — no record at ({}, {})",
                    cur.site, cur.time
                ));
            }
            return;
        };
        if ordering_clean && rec.to.map(|l| (l.site, l.time)) != expected_to.map(|l| (l.site, l.time))
        {
            v.push(format!(
                "iop: {o:?} back-link at ({}, {}) is {:?}, expected {expected_to:?}",
                cur.site, cur.time, rec.to
            ));
        }
        walked.push(Visit { site: cur.site, arrived: cur.time, departed: None });
        match rec.from {
            None => break,
            Some(f) => {
                expected_to = Some(cur);
                cur = f;
            }
        }
    }
    if walked.len() > truth.len() {
        v.push(format!("iop: chain of {o:?} longer than the oracle path (cycle?)"));
        return;
    }
    walked.reverse();
    if !is_subsequence(&walked, truth) {
        v.push(format!(
            "iop: chain of {o:?} visits {:?} — not a subsequence of the oracle path",
            walked.iter().map(|w| (w.site.0, w.arrived)).collect::<Vec<_>>()
        ));
    }
    if ordering_clean && walked.len() != truth.len() {
        v.push(format!(
            "iop: chain of {o:?} has {} links, oracle has {} visits",
            walked.len(),
            truth.len()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_roundtrip_through_codec() {
        let ops = [
            Op::Capture { site: 7 },
            Op::MoveObj { site: 3, obj: 12 },
            Op::Advance { ms: 450 },
            Op::Quiesce,
            Op::Join,
            Op::Leave { sel: 2 },
            Op::Crash { sel: 5 },
            Op::Kill { sel: 4 },
            Op::Locate { obj: 9 },
            Op::RegionCut { a: 0, b: 2 },
            Op::RegionHeal { sel: 1 },
        ];
        for op in ops {
            assert_eq!(decode(encode(op)), op);
        }
    }

    #[test]
    fn every_word_decodes_to_something_runnable() {
        for w in [0u64, u64::MAX, 0x0700_0000_0000_0000, 12345, 1 << 57, 9 << 56, 10 << 56] {
            let _ = decode(w); // total function: must not panic
        }
    }

    #[test]
    fn schedule_string_roundtrip() {
        let words = vec![encode(Op::Capture { site: 1 }), encode(Op::Join), encode(Op::Quiesce)];
        let s = format_schedule(&words);
        assert_eq!(parse_schedule(&s).unwrap(), words);
        assert!(parse_schedule("12, junk").is_err());
        assert!(describe(&words).contains("Capture"));
    }

    #[test]
    fn shrink_moves_toward_benign_ops() {
        let crash = encode(Op::Crash { sel: 4 });
        let c = shrink_word(crash);
        assert!(c.contains(&encode(Op::Leave { sel: 4 })), "crash demotes to leave");
        assert!(c.contains(&encode(Op::Capture { site: 4 })), "and to a capture");
        assert!(!c.contains(&crash));
        assert!(shrink_word(encode(Op::Quiesce)).is_empty());
        let kill = encode(Op::Kill { sel: 3 });
        assert!(shrink_word(kill).contains(&encode(Op::Crash { sel: 3 })), "kill demotes to crash");
        let locate = encode(Op::Locate { obj: 6 });
        assert!(shrink_word(locate).contains(&encode(Op::Quiesce)), "locate demotes to quiesce");
        let cut = encode(Op::RegionCut { a: 2, b: 1 });
        assert!(shrink_word(cut).contains(&encode(Op::Quiesce)), "cut demotes to quiesce");
        let heal = encode(Op::RegionHeal { sel: 2 });
        assert!(shrink_word(heal).contains(&encode(Op::Quiesce)), "heal demotes to quiesce");
    }

    #[test]
    fn cached_schedule_audits_clean_and_matches_uncached() {
        // A schedule that locates mid-stream (warming the cache), then
        // moves the located objects (forcing epoch invalidation), then
        // churns (forcing the wholesale clear). With the cache on, every
        // invariant must hold exactly as with it off — and since queries
        // are read-only, the two runs' protocol traffic is identical.
        let cfg = AuditConfig { drop: 0.0, ..AuditConfig::lossy_no_retries(0.0) };
        let words: Vec<u64> = [
            Op::Capture { site: 0 },
            Op::Capture { site: 2 },
            Op::Capture { site: 4 },
            Op::Quiesce,
            Op::Locate { obj: 0 },
            Op::Locate { obj: 1 },
            Op::MoveObj { site: 1, obj: 0 },
            Op::MoveObj { site: 3, obj: 1 },
            Op::Quiesce,
            Op::Locate { obj: 0 },
            Op::Join,
            Op::MoveObj { site: 5, obj: 2 },
            Op::Quiesce,
            Op::Locate { obj: 2 },
        ]
        .into_iter()
        .map(encode)
        .collect();
        let plain = run_schedule(&cfg, &words);
        let cached = run_schedule(&cfg.with_locate_cache(8), &words);
        assert_eq!(cached.violations, Vec::<String>::new());
        assert_eq!(plain.violations, cached.violations);
        assert_eq!(plain.fault_stats, cached.fault_stats);
        assert_eq!(plain.anomalies, cached.anomalies);
        assert_eq!(plain.objects, cached.objects);
        assert_eq!(plain.ops_applied, cached.ops_applied);
    }

    #[test]
    fn kill_forever_schedule_audits_clean() {
        // The tentpole invariant, always asserted: with K = 3 and a
        // fault-free plane, a schedule that loses two sites permanently
        // — with writes landing before, between, and after the kills —
        // must still audit oracle-exact, with zero anomalies. No taints
        // are granted for kills inside the K−1 budget.
        let cfg = AuditConfig::replicated(3);
        let words: Vec<u64> = [
            Op::Capture { site: 0 },
            Op::Capture { site: 2 },
            Op::Capture { site: 4 },
            Op::MoveObj { site: 1, obj: 0 },
            Op::MoveObj { site: 3, obj: 1 },
            Op::MoveObj { site: 5, obj: 2 },
            Op::Quiesce,
            Op::Join,
            Op::Kill { sel: 1 },
            Op::MoveObj { site: 2, obj: 0 },
            Op::MoveObj { site: 4, obj: 2 },
            Op::Quiesce,
            Op::Kill { sel: 2 },
            Op::MoveObj { site: 0, obj: 1 },
            Op::Quiesce,
        ]
        .into_iter()
        .map(encode)
        .collect();
        let report = run_schedule(&cfg, &words);
        assert_eq!(report.violations, Vec::<String>::new());
        assert_eq!(report.objects, 3);
        assert_eq!(report.anomalies, peertrack::world::Anomalies::default());
        assert_eq!(report.fault_stats.dropped, 0);
    }

    #[test]
    fn region_cut_then_heal_schedule_audits_clean() {
        // The WAN recovery invariant: writes land before, during, and
        // after a region cut (updates crossing the severed pair park
        // and release in order at the heal); after heal + quiescence
        // every answer is oracle-exact and the replica sets have
        // reconverged (I7). No object moves twice inside one cut, and
        // movement batches are separated by quiescence, so no
        // reordering anomaly relaxes the exactness checks.
        let cfg = AuditConfig::wan(3);
        let words: Vec<u64> = [
            Op::Capture { site: 0 },
            Op::Capture { site: 2 },
            Op::Capture { site: 4 },
            Op::Quiesce,
            Op::RegionCut { a: 0, b: 1 },
            Op::MoveObj { site: 1, obj: 0 },
            Op::MoveObj { site: 3, obj: 1 },
            Op::Advance { ms: 500 },
            Op::Locate { obj: 0 },
            Op::RegionHeal { sel: 0 },
            Op::Quiesce,
            Op::MoveObj { site: 5, obj: 2 },
            Op::Quiesce,
            // A second cut left open: the harness heals it before the
            // final quiescence and the invariants must still hold.
            Op::RegionCut { a: 1, b: 2 },
            Op::MoveObj { site: 0, obj: 1 },
        ]
        .into_iter()
        .map(encode)
        .collect();
        let report = run_schedule(&cfg, &words);
        assert_eq!(report.violations, Vec::<String>::new());
        assert_eq!(report.objects, 3);
        assert_eq!(report.anomalies, peertrack::world::Anomalies::default());
        assert_eq!(report.fault_stats.dropped, 0, "cuts park, never drop");
    }

    #[test]
    fn churn_is_inert_during_an_active_cut() {
        // Join/Leave/Crash/Kill words inside a cut window no-op: the
        // run must stay clean and end with exactly the founders alive.
        let cfg = AuditConfig::wan(3);
        let words: Vec<u64> = [
            Op::Capture { site: 1 },
            Op::Quiesce,
            Op::RegionCut { a: 0, b: 2 },
            Op::Join,
            Op::Kill { sel: 0 },
            Op::Crash { sel: 0 },
            Op::MoveObj { site: 4, obj: 0 },
            Op::RegionHeal { sel: 0 },
            Op::Quiesce,
        ]
        .into_iter()
        .map(encode)
        .collect();
        let report = run_schedule(&cfg, &words);
        assert_eq!(report.violations, Vec::<String>::new());
        // The three churn words did not execute.
        assert_eq!(report.ops_applied, words.len() - 3);
    }

    #[test]
    fn region_ops_are_inert_without_a_geo_plane() {
        // The same words with regions = 0 must run (cut/heal decode
        // and no-op) and stay clean — arbitrary fuzz words containing
        // region tags remain runnable against every configuration.
        let cfg = AuditConfig { drop: 0.0, ..AuditConfig::lossy_no_retries(0.0) };
        let words: Vec<u64> = [
            Op::Capture { site: 1 },
            Op::RegionCut { a: 0, b: 1 },
            Op::MoveObj { site: 3, obj: 0 },
            Op::RegionHeal { sel: 0 },
            Op::Quiesce,
        ]
        .into_iter()
        .map(encode)
        .collect();
        let report = run_schedule(&cfg, &words);
        assert_eq!(report.violations, Vec::<String>::new());
        assert_eq!(report.ops_applied, words.len() - 2, "cut and heal no-opped");
    }

    #[test]
    fn kill_without_replication_degrades_to_crash() {
        // With replicas = 1 a Kill is a Crash: the run may degrade but
        // must do so *detectably* — the auditor grants the usual crash
        // taints and still forbids fabricated answers.
        let cfg = AuditConfig { drop: 0.0, ..AuditConfig::lossy_no_retries(0.0) };
        let words: Vec<u64> = [
            Op::Capture { site: 1 },
            Op::MoveObj { site: 3, obj: 0 },
            Op::Quiesce,
            Op::Kill { sel: 0 },
            Op::Quiesce,
        ]
        .into_iter()
        .map(encode)
        .collect();
        let report = run_schedule(&cfg, &words);
        assert_eq!(report.violations, Vec::<String>::new());
    }

    #[test]
    fn clean_schedule_on_fault_free_network_audits_clean() {
        // Sanity: zero drop probability, no churn — the auditor must
        // report nothing (the invariants hold on the clean path).
        let cfg = AuditConfig {
            drop: 0.0,
            ..AuditConfig::lossy_no_retries(0.0)
        };
        let words: Vec<u64> = [
            Op::Capture { site: 0 },
            Op::Capture { site: 3 },
            Op::MoveObj { site: 1, obj: 0 },
            Op::Quiesce,
            Op::Join,
            Op::MoveObj { site: 4, obj: 1 },
            Op::Advance { ms: 400 },
            Op::Leave { sel: 0 },
            Op::MoveObj { site: 2, obj: 0 },
        ]
        .into_iter()
        .map(encode)
        .collect();
        let report = run_schedule(&cfg, &words);
        assert_eq!(report.violations, Vec::<String>::new());
        assert_eq!(report.objects, 2);
        assert_eq!(report.fault_stats.dropped, 0);
        assert_eq!(report.retrans_messages, 0, "retries off: no retransmissions");
        assert_eq!(report.ack_messages, 0, "retries off: no acks");
    }

    #[test]
    fn tracing_is_observation_only() {
        // The same lossy, churning schedule run blind and run traced
        // must produce the same report — the trace sink sees every
        // event but perturbs none (no RNG draws, no reordering).
        let cfg = AuditConfig::lossy_with_retries(0.1);
        let words: Vec<u64> = [
            Op::Capture { site: 0 },
            Op::Capture { site: 2 },
            Op::MoveObj { site: 1, obj: 0 },
            Op::Join,
            Op::MoveObj { site: 3, obj: 1 },
            Op::Advance { ms: 300 },
            Op::Crash { sel: 0 },
            Op::MoveObj { site: 2, obj: 0 },
            Op::Quiesce,
        ]
        .into_iter()
        .map(encode)
        .collect();
        let blind = run_schedule(&cfg, &words);
        let (traced, rec) = run_schedule_traced(&cfg, &words);
        assert_eq!(blind.violations, traced.violations);
        assert_eq!(blind.fault_stats, traced.fault_stats);
        assert_eq!(blind.retrans_messages, traced.retrans_messages);
        assert_eq!(blind.ack_messages, traced.ack_messages);
        assert_eq!(blind.objects, traced.objects);

        let rec = rec.borrow();
        assert!(!rec.events().is_empty(), "the trace must have recorded the run");
        // Both movements were tagged with their object's ctx.
        let view = obs::TraceView::new(rec.events());
        let tag = peertrack::spans::object_tag(audit_object(0));
        assert!(!view.filter_ctx(tag).is_empty(), "capture injections carry the object tag");
    }

    #[test]
    fn causal_slice_names_the_violating_object() {
        // Fabricate a report naming object 0 and check the slice engine
        // finds its tagged chain in a real traced run (the run itself is
        // clean — the slice only needs the trace plus the names).
        let cfg = AuditConfig {
            drop: 0.0,
            ..AuditConfig::lossy_no_retries(0.0)
        };
        let words: Vec<u64> =
            [Op::Capture { site: 1 }, Op::MoveObj { site: 2, obj: 0 }, Op::Quiesce]
                .into_iter()
                .map(encode)
                .collect();
        let (mut report, rec) = run_schedule_traced(&cfg, &words);
        assert_eq!(report.violations, Vec::<String>::new());
        report
            .violations
            .push(format!("locate: {:?} answered None (injected)", audit_object(0)));
        let slice = causal_slice(&rec.borrow(), &report);
        assert!(
            slice.contains("causal slice for"),
            "slice must anchor on the named object: {slice}"
        );
        assert!(slice.contains("deliver"), "the chain ends at a delivery: {slice}");
        assert!(slice.contains("cause #"), "chain lines show causal parents: {slice}");
    }
}
