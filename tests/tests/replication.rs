//! K-successor replication and kill-forever failover.
//!
//! The kill-forever fault model: a site fails *permanently* — no
//! restart, no recovery of its disk. With `Builder::replicas(K)` every
//! site's repository records and gateway shards are copied onto its
//! K−1 Chord successors, so after any ≤ K−1 permanent losses every
//! locate/trace answer must still match the MOODS movement oracle
//! exactly, with zero anomalies. These tests assert that, plus the
//! placement invariant itself: every key range held by exactly its K
//! live successors after membership churn quiesces.

use moods::{MovementLog, ObjectId, SiteId, Trace};
use peertrack::{Builder, GroupConfig, IndexingMode, TraceableNetwork};
use detrand::{rngs::StdRng, Rng, SeedableRng};
use simnet::time::{ms, secs};
use simnet::{FaultConfig, SimTime};

fn obj(n: u64) -> ObjectId {
    ObjectId::from_raw(&n.to_be_bytes())
}

fn group_mode() -> IndexingMode {
    IndexingMode::Group(GroupConfig { n_max: 256, t_max: ms(200), ..GroupConfig::default() })
}

fn replicated(sites: usize, seed: u64, k: usize) -> TraceableNetwork {
    Builder::new()
        .sites(sites)
        .seed(seed)
        .mode(group_mode())
        .replicas(k)
        .faults(FaultConfig::none(seed ^ 0xFA17))
        .build()
}

/// Assert every recorded movement is answered oracle-exactly.
fn audit_against_oracle(net: &mut TraceableNetwork, log: &MovementLog, origin: SiteId) {
    let objects: Vec<ObjectId> = log.objects().collect();
    for o in objects {
        let truth = log.trace(o, SimTime::ZERO, SimTime::INFINITY);
        let (path, stats) = net.trace(origin, o, SimTime::ZERO, SimTime::INFINITY);
        assert!(stats.complete, "trace of {o:?} flagged incomplete");
        assert_eq!(path, truth, "trace of {o:?} diverged from the oracle");
        for v in &truth {
            let (loc, lstats) = net.locate(origin, o, v.arrived);
            assert!(lstats.complete, "locate of {o:?} flagged incomplete");
            assert_eq!(loc, Some(v.site), "locate of {o:?} at {:?} wrong", v.arrived);
        }
    }
}

#[test]
fn kill_forever_preserves_locate_and_trace() {
    // K = 3: the network must survive the permanent loss of any 2
    // sites with oracle-exact answers.
    let mut net = replicated(12, 41, 3);
    let mut log = MovementLog::new();

    // Thread objects through sites 4 and 7 (the victims) so both the
    // repository records *at* the victims and the links *through* them
    // depend on replica copies after the kills.
    for (n, path) in [
        (0u64, vec![1u32, 4, 7, 2]),
        (1, vec![4, 7, 4, 9]),
        (2, vec![7, 3, 4, 11]),
        (3, vec![10, 5, 7, 4]),
    ] {
        let o = obj(n);
        for (i, s) in path.iter().enumerate() {
            let t = secs(10 + i as u64 * 100);
            net.schedule_capture(t, SiteId(*s), vec![o]);
            log.record(o, SiteId(*s), t);
        }
    }
    net.run_until_quiescent();

    net.kill_forever(SiteId(4));
    audit_against_oracle(&mut net, &log, SiteId(0));

    net.kill_forever(SiteId(7));
    audit_against_oracle(&mut net, &log, SiteId(0));

    assert_eq!(net.anomalies(), peertrack::world::Anomalies::default());
}

#[test]
fn kill_forever_survives_writes_to_dead_predecessors() {
    // An object's previous site dies, then the object moves on: the M2
    // SetTo aimed at the dead repository must be redirected to its
    // replica holders, not counted as dropped_to_dead — the trace
    // still threads through the dead site's visit.
    let mut net = replicated(10, 42, 3);
    let mut log = MovementLog::new();
    let o = obj(9);
    net.schedule_capture(secs(10), SiteId(3), vec![o]);
    log.record(o, SiteId(3), secs(10));
    net.schedule_capture(secs(100), SiteId(6), vec![o]);
    log.record(o, SiteId(6), secs(100));
    net.run_until_quiescent();

    net.kill_forever(SiteId(6));

    // Moving on from the dead site: the gateway's M2 targets site 6.
    net.capture(SiteId(2), &[o]);
    log.record(o, SiteId(2), net.now());
    net.run_until_quiescent();

    audit_against_oracle(&mut net, &log, SiteId(0));
    assert_eq!(net.anomalies(), peertrack::world::Anomalies::default());
}

#[test]
fn replicas_one_changes_nothing() {
    // `replicas(1)` must be indistinguishable from a build without the
    // replication layer: same traffic, same answers, at the same seed.
    let run = |with_knob: bool| {
        let mut b = Builder::new().sites(16).seed(7).mode(group_mode());
        if with_knob {
            b = b.replicas(1);
        }
        let mut net = b.build();
        let mut log = MovementLog::new();
        for n in 0..6u64 {
            let o = obj(n);
            for (i, s) in [1u32, 5, 9, 13].iter().enumerate() {
                let t = secs(10 + n * 7 + i as u64 * 50);
                net.schedule_capture(t, SiteId(*s), vec![o]);
                log.record(o, SiteId(*s), t);
            }
        }
        net.run_until_quiescent();
        let counts: Vec<(u64, u64, u64)> = simnet::metrics::ALL_CLASSES
            .iter()
            .map(|&c| {
                let m = net.metrics();
                (m.messages_of(c), m.bytes_of(c), m.hops_of(c))
            })
            .collect();
        let (p, _) = net.trace(SiteId(0), obj(2), SimTime::ZERO, SimTime::INFINITY);
        (counts, p)
    };
    assert_eq!(run(false), run(true));
}

/// The placement invariant, as a property over membership schedules:
/// once joins and leaves quiesce, every live primary's replica copies
/// sit on exactly its K−1 live ring successors (`AUDIT_CASES`
/// overrides the budget; `scripts/verify.sh` uses a reduced one).
#[test]
fn prop_every_range_held_by_its_k_successors() {
    let cases = std::env::var("AUDIT_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(24);
    proptiny::run(
        "prop_every_range_held_by_its_k_successors",
        &proptiny::Config::with_cases(cases),
        &(2usize..5, 5usize..10, 0u64..1 << 20, proptiny::collection::vec(0u8..3, 1..7)),
        |(k, founders, seed, churn): (usize, usize, u64, Vec<u8>)| {
            let mut net = replicated(founders, seed, k);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);

            // A little data so the copies are non-trivial.
            for n in 0..4u64 {
                let site = SiteId(rng.gen_range(0..founders as u32));
                net.schedule_capture(secs(1 + n), site, vec![obj(n)]);
            }
            net.run_until_quiescent();

            let mut joined: Vec<SiteId> = Vec::new();
            for op in churn {
                if op != 1 || joined.is_empty() {
                    joined.push(net.join_site());
                } else {
                    let i = rng.gen_range(0..joined.len());
                    net.leave_site(joined.swap_remove(i));
                }
            }

            // Ground truth from the ring; observed from the stores.
            for s in 0..net.world.sites.len() {
                if !net.world.sites[s].alive {
                    continue;
                }
                let primary = net.world.sites[s].site;
                let chord_id = net.world.sites[s].chord_id;
                let mut want: Vec<SiteId> = net
                    .ring()
                    .successors_of(&chord_id, k)
                    .into_iter()
                    .skip(1) // the primary heads its own chain
                    .map(|id| {
                        let idx = net.ring().app_index_of(&id).expect("member");
                        net.world.sites[idx].site
                    })
                    .collect();
                want.sort_by_key(|s| s.0);
                want.dedup();
                let held = net.world.replica_holders(primary);
                proptiny::prop_assert_eq!(
                    held,
                    want,
                    "primary {primary}: holders diverged from the K-successor rule \
                     (k={k}, founders={founders}, seed={seed})"
                );
            }
            proptiny::CaseResult::Pass
        },
    );
}
