//! Kill-forever failover over real sockets.
//!
//! The loopback-cluster counterpart of `replication.rs`: an 8-node
//! cluster started with `--replicas 3` semantics
//! (`LoopbackCluster::start_replicated`) runs a schedule that threads
//! objects through two victim sites, then loses both *permanently* —
//! process joined, data gone, `PeerDead` broadcast, no restart. Every
//! locate and trace asked at a survivor must still match the
//! `MovementLog` ground truth exactly and report `complete`, writes
//! aimed at the dead sites must redirect to their replica holders, and
//! the whole run — kills included — must finish with zero protocol
//! anomalies on every node that ever lived.

use daemon::LoopbackCluster;
use moods::{Locate, MovementLog, ObjectId, SiteId, Trace};
use peertrack::config::GroupConfig;
use simnet::time::secs;
use simnet::SimTime;
use workload::CaptureEvent;

fn can_bind() -> bool {
    std::net::TcpListener::bind("127.0.0.1:0").is_ok()
}

macro_rules! require_sockets {
    () => {
        if !can_bind() {
            eprintln!("SKIP: sandbox forbids binding loopback sockets");
            return;
        }
    };
}

fn obj(n: u64) -> ObjectId {
    ObjectId::from_raw(&n.to_be_bytes())
}

/// Capture `o` at `site`/`t` in both the cluster schedule and the oracle.
fn hop(
    events: &mut Vec<CaptureEvent>,
    log: &mut MovementLog,
    o: ObjectId,
    site: u32,
    t: SimTime,
) {
    events.push(CaptureEvent { at: t, site: SiteId(site), objects: vec![o] });
    log.record(o, SiteId(site), t);
}

/// Every movement the oracle knows, re-asked at `origin` over sockets.
fn audit(cluster: &mut LoopbackCluster, log: &MovementLog, origin: SiteId) {
    let objects: Vec<ObjectId> = log.objects().collect();
    for o in objects {
        let truth = log.trace(o, SimTime::ZERO, SimTime::INFINITY);
        let (path, _, complete) =
            cluster.trace(origin, o, SimTime::ZERO, SimTime::INFINITY).expect("cluster trace");
        assert!(complete, "trace of {o:?} flagged incomplete");
        assert_eq!(path, truth, "trace of {o:?} diverged from the oracle");
        for v in &truth {
            let (ans, _, complete) = cluster.locate(origin, o, v.arrived).expect("cluster locate");
            assert!(complete, "locate of {o:?} flagged incomplete");
            assert_eq!(ans, Some(v.site), "locate of {o:?} at {:?} wrong", v.arrived);
        }
    }
}

#[test]
fn cluster_survives_two_permanent_losses_with_k3() {
    require_sockets!();
    const SITES: usize = 8;
    const SEED: u64 = 41;
    const VICTIM_A: usize = 3;
    const VICTIM_B: usize = 6;

    let mut cluster =
        LoopbackCluster::start_replicated(SITES, SEED, GroupConfig::default(), 3)
            .expect("replicated cluster start");
    let mut log = MovementLog::new();

    // Thread every object through both victims so post-kill answers
    // depend on replica copies: records *at* the victims and links
    // *through* them.
    let mut events: Vec<CaptureEvent> = Vec::new();
    for (n, path) in [
        (0u64, [1u32, 3, 6, 2]),
        (1, [3, 6, 3, 5]),
        (2, [6, 0, 3, 7]),
        (3, [4, 3, 6, 1]),
    ] {
        let o = obj(n);
        for (i, s) in path.iter().enumerate() {
            hop(&mut events, &mut log, o, *s, secs(10 + n * 7 + i as u64 * 100));
        }
    }
    events.sort_by_key(|e| e.at);
    cluster.run_schedule(&events).expect("schedule");

    // First permanent loss.
    let report = cluster.kill_forever(VICTIM_A).expect("kill A");
    assert_eq!(report.anomalies, peertrack::world::Anomalies::default());
    assert_eq!(report.unsupported, 0);
    audit(&mut cluster, &log, SiteId(0));

    // A write whose M2 targets the dead repository: the object moves on
    // from its last pre-kill site, so the gateway must patch the dead
    // site's replica copies instead of dropping the link.
    let mut more: Vec<CaptureEvent> = Vec::new();
    hop(&mut more, &mut log, obj(1), 7, secs(5_000));
    cluster.run_schedule(&more).expect("post-kill schedule");
    audit(&mut cluster, &log, SiteId(4));

    // Second permanent loss — K = 3 tolerates exactly this much.
    let report = cluster.kill_forever(VICTIM_B).expect("kill B");
    assert_eq!(report.anomalies, peertrack::world::Anomalies::default());
    assert_eq!(report.unsupported, 0);
    audit(&mut cluster, &log, SiteId(1));

    // Clean protocol run on every survivor.
    let reports = cluster.shutdown().expect("shutdown");
    assert_eq!(reports.len(), SITES - 2);
    for r in &reports {
        assert_eq!(
            r.anomalies,
            peertrack::world::Anomalies::default(),
            "site {} protocol anomalies",
            r.site.0
        );
        assert_eq!(r.unsupported, 0, "site {} left the supported regime", r.site.0);
    }
}
