//! The daemon's locate-answer cache over real sockets (DESIGN.md §15).
//!
//! The cache lives on each node's engine, keyed by object, and every
//! hit is *revalidated* against the holder's immutable records before
//! it is served — so three claims are testable end to end:
//!
//! 1. **Freshness across migration** — a node that cached an object's
//!    location keeps answering exactly after the object moves: the
//!    stale cached link revalidates by one record fetch and walks
//!    forward to the new holder. Historical probes (`t` before the
//!    move) answer from the same cached anchor by walking backward.
//! 2. **Attribution** — `Frame::QueryLoad` exposes per-origin
//!    served-locate slices plus hit/miss counters, and the counters
//!    move the way the cache contract says they must.
//! 3. **Volatility** — the cache is engine-side state, excluded from
//!    the WAL/snapshot encoding: a crash + restart rebuilds the node
//!    byte-identical *except* the cache, which comes back cold.

use daemon::LoopbackCluster;
use moods::SiteId;
use peertrack::config::GroupConfig;
use simnet::time::secs;
use workload::{epc_object, CaptureEvent};

fn can_bind() -> bool {
    std::net::TcpListener::bind("127.0.0.1:0").is_ok()
}

macro_rules! require_sockets {
    () => {
        if !can_bind() {
            eprintln!("SKIP: sandbox forbids binding loopback sockets");
            return;
        }
    };
}

#[test]
fn cached_answer_stays_fresh_after_migration() {
    require_sockets!();
    const SITES: usize = 4;
    const SEED: u64 = 77;

    let mut cluster =
        LoopbackCluster::start_cached(SITES, SEED, GroupConfig::default(), 32).expect("start");
    let o = epc_object(1, 0);

    // Capture at site 1, then locate twice from site 0: the first
    // answer fills site 0's cache, the second must be served from it.
    cluster
        .run_schedule(&[CaptureEvent { at: secs(10), site: SiteId(1), objects: vec![o] }])
        .expect("first capture");
    let (ans, _, complete) = cluster.locate(SiteId(0), o, secs(100)).expect("locate");
    assert_eq!((ans, complete), (Some(SiteId(1)), true));
    let (loads, hits, misses) = cluster.query_load(0).expect("query load");
    assert_eq!((hits, misses), (0, 1), "first locate is a cache miss");
    assert_eq!(loads.iter().map(|&(_, n)| n).sum::<u64>(), 1);

    let (ans, _, complete) = cluster.locate(SiteId(0), o, secs(100)).expect("cached locate");
    assert_eq!((ans, complete), (Some(SiteId(1)), true));
    let (_, hits, misses) = cluster.query_load(0).expect("query load");
    assert_eq!((hits, misses), (1, 1), "second locate hits the cache");

    // The object migrates to site 2. Site 0 still holds the stale
    // cached link — the next locate must revalidate it (one record
    // fetch at site 1 discovers the onward hop) and answer site 2.
    cluster
        .run_schedule(&[CaptureEvent { at: secs(20), site: SiteId(2), objects: vec![o] }])
        .expect("migration capture");
    let (ans, _, complete) = cluster.locate(SiteId(0), o, secs(100)).expect("post-move locate");
    assert_eq!(
        (ans, complete),
        (Some(SiteId(2)), true),
        "a cached answer must never outlive a migration"
    );

    // Historical probe before the move: the same cached anchor walks
    // the record chain backward to the old holder.
    let (ans, _, complete) = cluster.locate(SiteId(0), o, secs(15)).expect("historical locate");
    assert_eq!((ans, complete), (Some(SiteId(1)), true));

    // An origin whose cache was never warmed agrees, of course.
    let (ans, _, complete) = cluster.locate(SiteId(3), o, secs(100)).expect("cold locate");
    assert_eq!((ans, complete), (Some(SiteId(2)), true));
    let (loads, _, _) = cluster.query_load(3).expect("query load");
    assert_eq!(loads.iter().map(|&(_, n)| n).sum::<u64>(), 1);

    cluster.shutdown().expect("shutdown");
}

#[test]
fn cache_rebuilds_cold_after_crash_restart() {
    require_sockets!();
    const SITES: usize = 3;
    const SEED: u64 = 91;

    let root = std::env::temp_dir()
        .join(format!("pt-cache-cold-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let mut cluster = LoopbackCluster::start_durable_cached(
        SITES,
        SEED,
        GroupConfig::default(),
        &root,
        durable::FsyncMode::Never,
        1_000_000,
        16,
    )
    .expect("start");
    let o = epc_object(1, 7);
    cluster
        .run_schedule(&[CaptureEvent { at: secs(5), site: SiteId(1), objects: vec![o] }])
        .expect("capture");

    // Warm node 0's cache and prove it serves hits.
    for _ in 0..2 {
        let (ans, _, _) = cluster.locate(SiteId(0), o, secs(50)).expect("locate");
        assert_eq!(ans, Some(SiteId(1)));
    }
    let (_, hits, misses) = cluster.query_load(0).expect("query load");
    assert_eq!((hits, misses), (1, 1));

    // Crash + restart: the WAL replays everything durable; the cache
    // and its counters are volatile and must come back empty.
    cluster.crash(0).expect("crash");
    cluster.restart(0).expect("restart");
    let (loads, hits, misses) = cluster.query_load(0).expect("query load");
    assert_eq!((hits, misses), (0, 0), "cache counters are not durable");
    assert!(loads.is_empty(), "served-locate attribution is not durable");

    // The node still answers exactly — the first post-restart locate is
    // a miss that refills the cold cache.
    let (ans, _, complete) = cluster.locate(SiteId(0), o, secs(50)).expect("post-restart locate");
    assert_eq!((ans, complete), (Some(SiteId(1)), true));
    let (_, hits, misses) = cluster.query_load(0).expect("query load");
    assert_eq!((hits, misses), (0, 1));

    cluster.shutdown().expect("shutdown");
    std::fs::remove_dir_all(&root).ok();
}
