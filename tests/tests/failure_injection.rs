//! Failure injection: churn storms, gateway loss, repository loss, and
//! overlay degradation — the system must degrade *detectably* (flags,
//! anomaly counters), never silently return wrong answers.

use moods::{MovementLog, ObjectId, SiteId, Trace};
use peertrack::{Builder, GroupConfig, IndexingMode};
use detrand::{rngs::StdRng, Rng, SeedableRng};
use simnet::time::{ms, secs};
use simnet::SimTime;

fn obj(n: u64) -> ObjectId {
    ObjectId::from_raw(&n.to_be_bytes())
}

fn group_mode() -> IndexingMode {
    IndexingMode::Group(GroupConfig { n_max: 256, t_max: ms(200), ..GroupConfig::default() })
}

#[test]
fn churn_storm_preserves_all_index_entries() {
    // Interleave captures with joins and leaves; every object must stay
    // locatable at its true location throughout.
    const FOUNDERS: u32 = 16;
    let mut net = Builder::new().sites(FOUNDERS as usize).seed(1).mode(group_mode()).build();
    let mut truth: Vec<(ObjectId, SiteId)> = Vec::new();
    let mut rng = StdRng::seed_from_u64(2);
    let mut next_obj = 0u64;
    let mut leavable: Vec<u32> = Vec::new(); // joined sites we may remove

    for round in 0..12 {
        // Capture a few objects at founding sites (which never leave).
        let t = secs(100 + round * 50);
        for _ in 0..10 {
            let o = obj(next_obj);
            next_obj += 1;
            let site = SiteId(rng.gen_range(0..FOUNDERS));
            net.schedule_capture(t, site, vec![o]);
            truth.push((o, site));
        }
        net.run_until_quiescent();

        match round % 3 {
            0 => {
                let s = net.join_site();
                leavable.push(s.0);
            }
            1
                if leavable.len() > 2 => {
                    let idx = rng.gen_range(0..leavable.len());
                    let s = leavable.swap_remove(idx);
                    net.leave_site(SiteId(s));
                }
            _ => {}
        }

        // Full audit after every round.
        for &(o, site) in &truth {
            let (loc, stats) = net.locate(SiteId(0), o, net.now());
            assert_eq!(loc, Some(site), "round {round}: object {o:?} lost");
            assert!(stats.complete);
        }
    }
    assert_eq!(net.anomalies().out_of_order_arrivals, 0);
}

#[test]
fn trace_through_departed_site_is_flagged_not_wrong() {
    let mut net = Builder::new().sites(10).seed(3).mode(group_mode()).build();
    let mut log = MovementLog::new();
    let o = obj(1);
    for (i, s) in [1u32, 4, 7, 2].iter().enumerate() {
        let t = secs(10 + i as u64 * 100);
        net.schedule_capture(t, SiteId(*s), vec![o]);
        log.record(o, SiteId(*s), t);
    }
    net.run_until_quiescent();

    // Remove a middle repository.
    net.leave_site(SiteId(4));
    let (p, stats) = net.trace(SiteId(0), o, SimTime::ZERO, SimTime::INFINITY);
    assert!(!stats.complete, "loss must be flagged");
    // Whatever is returned must be a suffix of the truth (the walk came
    // from the latest end and stopped at the hole).
    let full = log.trace(o, SimTime::ZERO, SimTime::INFINITY);
    assert!(!p.is_empty());
    assert!(
        full.ends_with(&p),
        "partial trace must be a true suffix: got {p:?}"
    );
}

#[test]
fn locate_of_current_position_survives_repository_loss() {
    // Even if intermediate repositories vanish, the *current* location
    // comes from the gateway index and must survive.
    let mut net = Builder::new().sites(10).seed(4).mode(group_mode()).build();
    let o = obj(9);
    net.schedule_capture(secs(10), SiteId(1), vec![o]);
    net.schedule_capture(secs(100), SiteId(5), vec![o]);
    net.schedule_capture(secs(200), SiteId(8), vec![o]);
    net.run_until_quiescent();
    net.leave_site(SiteId(1));
    net.leave_site(SiteId(5));

    let (loc, stats) = net.locate(SiteId(0), o, net.now());
    assert_eq!(loc, Some(SiteId(8)));
    assert!(stats.complete, "current location needs no lost records");
}

#[test]
fn overlay_survives_unstabilized_fail_storm() {
    // Abrupt failures (no goodbye): the chord layer must keep routing
    // and ground truth must match after stabilization rounds.
    use chord::Ring;
    use ids::Id;
    let mut rng = StdRng::seed_from_u64(5);
    let mut ring = Ring::new();
    let mut ids = Vec::new();
    for i in 0..80 {
        let id = Id::random(&mut rng);
        if i == 0 {
            ring.bootstrap(id, i);
        } else {
            ring.join(ids[0], id, i).unwrap();
        }
        ids.push(id);
    }
    ring.stabilize_all();

    // Kill 20 of 80 nodes abruptly.
    for v in &ids[55..75] {
        ring.fail(*v);
    }
    // Routing still converges to ground truth from every survivor.
    let live: Vec<Id> = ring.node_ids().collect();
    for _ in 0..200 {
        let key = Id::random(&mut rng);
        let from = live[rng.gen_range(0..live.len())];
        let r = ring.lookup(from, key).expect("must route around failures");
        assert_eq!(Some(r.owner), ring.successor_of(&key));
    }
    // And repair converges.
    for _ in 0..ids::ID_BITS {
        ring.stabilize_round();
    }
    ring.check_converged().unwrap();
}

#[test]
fn windows_flush_under_bursty_streams() {
    // Bursts larger than Nmax must split into several cycles; a trickle
    // must be flushed by Tmax — and nothing may be left unindexed.
    use workload::streams::ArrivalStream;
    let mut net = Builder::new()
        .sites(8)
        .seed(6)
        .mode(IndexingMode::Group(GroupConfig {
            n_max: 32,
            t_max: ms(250),
            ..GroupConfig::default()
        }))
        .build();

    let bursty = ArrivalStream::Bursty { burst_gap: secs(2), burst_size: 100 };
    let steady = ArrivalStream::Steady { mean_gap: ms(40) };
    let mut all = Vec::new();
    for ev in bursty
        .generate(SiteId(1), 300, secs(1), 7)
        .into_iter()
        .chain(steady.generate(SiteId(2), 150, secs(1), 7))
    {
        for &o in &ev.objects {
            all.push(o);
        }
        net.schedule_capture(ev.at, ev.site, ev.objects);
    }
    net.run_until_quiescent();

    for o in all {
        let (loc, _) = net.locate(SiteId(5), o, net.now());
        assert!(loc.is_some(), "object left unindexed after stream");
    }
}

#[test]
fn duplicate_epcs_in_one_window_do_not_corrupt_index() {
    // The same tag read twice within one window (double read after
    // cleansing failure) must not wedge the gateway.
    let mut net = Builder::new().sites(8).seed(8).mode(group_mode()).build();
    let o = obj(77);
    net.capture(SiteId(3), &[o, o]);
    net.run_until_quiescent();
    let (loc, _) = net.locate(SiteId(0), o, net.now());
    assert_eq!(loc, Some(SiteId(3)));
    // Next movement still threads correctly.
    net.schedule_capture(secs(100), SiteId(6), vec![o]);
    net.run_until_quiescent();
    let (p, stats) = net.trace(SiteId(0), o, SimTime::ZERO, SimTime::INFINITY);
    assert_eq!(p.last().map(|v| v.site), Some(SiteId(6)));
    assert!(stats.complete);
}
