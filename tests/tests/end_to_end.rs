//! Full-pipeline integration: the §V workload generator feeds the P2P
//! system, the centralized warehouse and the oracle; all three must
//! agree on every query, and the high-level experiment claims must hold
//! at miniature scale.

use integration_tests::{assert_agreement, triple_from_events};
use moods::SiteId;
use peertrack::{Builder, IndexingMode};
use detrand::{rngs::StdRng, Rng, SeedableRng};
use simnet::time::secs;
use workload::paper::PaperWorkload;

fn paper_events(sites: usize, vol: usize, grouped: bool, seed: u64) -> Vec<workload::CaptureEvent> {
    PaperWorkload {
        sites,
        objects_per_site: vol,
        grouped_movement: grouped,
        seed,
        ..PaperWorkload::default()
    }
    .generate()
}

#[test]
fn three_backends_agree_group_mode() {
    let events = paper_events(12, 40, true, 5);
    let net = Builder::new().sites(12).seed(5).build();
    let mut t = triple_from_events(net, &events);

    let probes: Vec<simnet::SimTime> = (0..20).map(|i| secs(i * 700)).collect();
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..30 {
        let site = rng.gen_range(0..12u32);
        let serial = rng.gen_range(0..40u64);
        let o = workload::epc_object(site, serial);
        let from = SiteId(rng.gen_range(0..12u32));
        assert_agreement(&mut t, o, &probes, from);
    }
    assert_eq!(t.net.anomalies(), peertrack::world::Anomalies::default());
}

#[test]
fn three_backends_agree_individual_mode() {
    let events = paper_events(10, 25, false, 6);
    let net = Builder::new().sites(10).seed(6).mode(IndexingMode::Individual).build();
    let mut t = triple_from_events(net, &events);

    let probes: Vec<simnet::SimTime> = (0..15).map(|i| secs(i * 900)).collect();
    for site in 0..10u32 {
        for serial in [0u64, 3, 24] {
            let o = workload::epc_object(site, serial);
            assert_agreement(&mut t, o, &probes, SiteId((site + 5) % 10));
        }
    }
}

#[test]
fn movers_have_eleven_visit_traces() {
    // Paper workload: 10% of objects move along a 10-node trace, so a
    // mover's lifetime trace has 11 visits (home + 10).
    let events = paper_events(16, 50, true, 7);
    let net = Builder::new().sites(16).seed(7).build();
    let mut t = triple_from_events(net, &events);

    let movers = 5; // 10% of 50
    for site in 0..16u32 {
        for serial in 0..movers as u64 {
            let o = workload::epc_object(site, serial);
            let (p, stats) =
                t.net.trace(SiteId(0), o, simnet::SimTime::ZERO, simnet::SimTime::INFINITY);
            assert_eq!(p.len(), 11, "mover at site {site} serial {serial}");
            assert!(stats.complete);
            assert_eq!(p[0].site, SiteId(site), "trace starts at home");
        }
        // Non-movers have exactly their inventory capture.
        let stayer = workload::epc_object(site, movers as u64);
        let (p, _) =
            t.net.trace(SiteId(0), stayer, simnet::SimTime::ZERO, simnet::SimTime::INFINITY);
        assert_eq!(p.len(), 1);
    }
}

#[test]
fn group_mode_is_never_costlier_than_individual() {
    // Cross-crate miniature of Fig. 6: same workload, both modes.
    for vol in [20usize, 100, 400] {
        let run = |mode: IndexingMode| {
            let mut net = Builder::new().sites(24).seed(9).mode(mode).build();
            for ev in paper_events(24, vol, true, 9) {
                net.schedule_capture(ev.at, ev.site, ev.objects);
            }
            net.run_until_quiescent();
            net.metrics().indexing_messages()
        };
        let ind = run(IndexingMode::Individual);
        let grp = run(bench::experiment_group_mode());
        assert!(grp <= ind, "vol {vol}: group {grp} > individual {ind}");
    }
}

#[test]
fn warehouse_and_p2p_report_same_trace_lengths_at_scale() {
    let events = paper_events(20, 60, true, 10);
    let net = Builder::new().sites(20).seed(10).build();
    let mut t = triple_from_events(net, &events);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..50 {
        use moods::Trace;
        let o = workload::epc_object(rng.gen_range(0..20u32), rng.gen_range(0..60u64));
        let p2p = t.net.trace(SiteId(1), o, simnet::SimTime::ZERO, simnet::SimTime::INFINITY).0;
        let wh = t.warehouse.trace(o, simnet::SimTime::ZERO, simnet::SimTime::INFINITY);
        assert_eq!(p2p.len(), wh.len());
    }
}
