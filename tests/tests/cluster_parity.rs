//! The real-network daemon versus the simulator oracle.
//!
//! One workload, three executions: the deterministic simulator
//! (`peertrack::TraceableNetwork`), a 5-node loopback socket cluster
//! (`daemon::LoopbackCluster`), and the ground-truth `MovementLog`.
//! Every locate/trace answer must agree across all three, every query's
//! modelled cost must match message-for-message, and the cluster's
//! merged per-class traffic accounting must equal the simulator's
//! global tally exactly — same messages, same model bytes, same overlay
//! hops. That is the claim that makes the socket path a *port* of the
//! protocol rather than a reimplementation drifting beside it.

use daemon::LoopbackCluster;
use integration_tests::triple_from_events;
use moods::{Locate, SiteId, Trace};
use peertrack::Builder;
use simnet::metrics::{Metrics, ALL_CLASSES};
use simnet::time::secs;
use simnet::SimTime;
use workload::paper::PaperWorkload;

fn can_bind() -> bool {
    std::net::TcpListener::bind("127.0.0.1:0").is_ok()
}

macro_rules! require_sockets {
    () => {
        if !can_bind() {
            eprintln!("SKIP: sandbox forbids binding loopback sockets");
            return;
        }
    };
}

#[test]
fn five_node_cluster_matches_simulator_and_oracle() {
    require_sockets!();
    const SITES: usize = 5;
    const VOL: usize = 12;
    const SEED: u64 = 21;

    let events = PaperWorkload {
        sites: SITES,
        objects_per_site: VOL,
        grouped_movement: true,
        seed: SEED,
        ..PaperWorkload::default()
    }
    .generate();

    // Simulator + ground truth.
    let net = Builder::new().sites(SITES).seed(SEED).build();
    let mut t = triple_from_events(net, &events);

    // The same schedule over real sockets.
    let mut cluster = LoopbackCluster::start(SITES, SEED).expect("cluster start");
    cluster.run_schedule(&events).expect("cluster schedule");

    // Identical query sequence against both (queries are themselves
    // charged traffic, so the sequences must match for metric parity).
    let probes: Vec<SimTime> = (0..8).map(|i| secs(i * 700)).collect();
    for site in 0..SITES as u32 {
        for serial in 0..VOL as u64 {
            let o = workload::epc_object(site, serial);
            let origin = SiteId((site + 2) % SITES as u32);

            for &probe in &probes {
                let truth = t.oracle.locate(o, probe);
                let (sim_ans, sim_stats) = t.net.locate(origin, o, probe);
                let (net_ans, net_cost, complete) =
                    cluster.locate(origin, o, probe).expect("cluster locate");
                assert!(complete, "cluster locate incomplete for {o:?} at {probe}");
                assert_eq!(sim_ans, truth, "simulator vs oracle at {probe}");
                assert_eq!(net_ans, truth, "cluster vs oracle at {probe}");
                assert_eq!(
                    (net_cost.messages, net_cost.hops, net_cost.bytes),
                    (sim_stats.messages, sim_stats.hops, sim_stats.bytes),
                    "locate cost diverged for {o:?} at {probe}"
                );
            }

            let truth = t.oracle.trace(o, SimTime::ZERO, SimTime::INFINITY);
            let (sim_path, sim_stats) = t.net.trace(origin, o, SimTime::ZERO, SimTime::INFINITY);
            let (net_path, net_cost, complete) = cluster
                .trace(origin, o, SimTime::ZERO, SimTime::INFINITY)
                .expect("cluster trace");
            assert!(complete, "cluster trace incomplete for {o:?}");
            assert_eq!(sim_path, truth, "simulator trace vs oracle for {o:?}");
            assert_eq!(net_path, truth, "cluster trace vs oracle for {o:?}");
            assert_eq!(
                (net_cost.messages, net_cost.hops, net_cost.bytes),
                (sim_stats.messages, sim_stats.hops, sim_stats.bytes),
                "trace cost diverged for {o:?}"
            );
        }
    }

    // Clean protocol run on both sides.
    assert_eq!(t.net.anomalies(), peertrack::world::Anomalies::default());
    let reports = cluster.shutdown().expect("cluster shutdown");
    let mut merged = Metrics::new();
    for r in &reports {
        assert_eq!(
            r.anomalies,
            peertrack::world::Anomalies::default(),
            "site {} protocol anomalies",
            r.site.0
        );
        assert_eq!(r.unsupported, 0, "site {} left the supported regime", r.site.0);
        merged.merge(&r.metrics);
    }

    // The headline: per-class accounting equality, class by class.
    let sim = t.net.metrics();
    for class in ALL_CLASSES {
        assert_eq!(
            merged.messages_of(class),
            sim.messages_of(class),
            "{class:?} message count diverged"
        );
        assert_eq!(
            merged.bytes_of(class),
            sim.bytes_of(class),
            "{class:?} model-byte count diverged"
        );
        assert_eq!(merged.hops_of(class), sim.hops_of(class), "{class:?} hop count diverged");
    }
    // And the run must have produced real traffic to compare.
    assert!(sim.total_messages() > 0, "workload produced no traffic");
}
