//! Durability: kill a node mid-schedule, restart it from its data
//! directory, and prove nothing was lost.
//!
//! Three layers of the claim:
//!
//! 1. **Socket-level** — a 5-node durable loopback cluster runs half a
//!    workload, one node is crashed (no final snapshot, volatile state
//!    abandoned) and restarted on a fresh port; its canonical state
//!    encoding must come back byte-identical, the schedule continues,
//!    and every locate/trace answer afterwards must match the
//!    `MovementLog` ground truth with zero protocol anomalies.
//! 2. **State-machine level** — a socket-free property: replaying a WAL
//!    through `daemon::Core` equals snapshotting at *any* record
//!    boundary and replaying the tail. This is the invariant that makes
//!    snapshot cadence a pure performance knob.
//! 3. **Storage level** — torn writes and bit flips in a node's data
//!    dir either recover a strict prefix of the logged records (WAL
//!    damage) or fail the open loudly (snapshot damage) — never a
//!    silently wrong state.

use daemon::{Core, LoopbackCluster, ScheduleCursor, WalRecord};
use durable::{DataDir, FsyncMode, WAL_FILE};
use integration_tests::triple_from_events;
use moods::{Locate, SiteId, Trace};
use peertrack::config::GroupConfig;
use peertrack::Builder;
use proptiny::prelude::*;
use simnet::time::secs;
use simnet::SimTime;
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::path::PathBuf;
use workload::paper::PaperWorkload;

fn can_bind() -> bool {
    std::net::TcpListener::bind("127.0.0.1:0").is_ok()
}

macro_rules! require_sockets {
    () => {
        if !can_bind() {
            eprintln!("SKIP: sandbox forbids binding loopback sockets");
            return;
        }
    };
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pt-crash-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

// ----------------------------------------------------------------------
// 1. Socket level: crash + restart inside a live schedule
// ----------------------------------------------------------------------

#[test]
fn crashed_node_recovers_byte_identical_and_answers_match_oracle() {
    require_sockets!();
    const SITES: usize = 5;
    const VOL: usize = 12;
    const SEED: u64 = 21;
    const VICTIM: usize = 2;
    const FIRST_LEG_OPS: usize = 40;

    let events = PaperWorkload {
        sites: SITES,
        objects_per_site: VOL,
        grouped_movement: true,
        seed: SEED,
        ..PaperWorkload::default()
    }
    .generate();

    // Ground truth fed the full schedule up front (the oracle is
    // time-indexed, so it answers historical probes identically
    // whenever it is asked).
    let net = Builder::new().sites(SITES).seed(SEED).build();
    let t = triple_from_events(net, &events);

    let root = scratch("cluster");
    let mut cluster = LoopbackCluster::start_durable(
        SITES,
        SEED,
        GroupConfig::default(),
        &root,
        FsyncMode::Batch,
        64,
    )
    .expect("durable cluster start");

    // First leg: part of the schedule, then a query so the WAL holds
    // every record kind (Member, Capture, Flush, Protocol, Query).
    let mut cursor = ScheduleCursor::new(&events);
    let ran = cluster.run_cursor(&mut cursor, FIRST_LEG_OPS).expect("first schedule leg");
    assert_eq!(ran, FIRST_LEG_OPS, "workload too short to split around a crash");
    assert!(cursor.remaining() > 0, "nothing left for the post-restart leg");
    let probe_obj = workload::epc_object(VICTIM as u32, 0);
    cluster
        .locate(SiteId(VICTIM as u32), probe_obj, secs(100))
        .expect("pre-crash locate");

    // Kill it — no warning, no final snapshot — and bring it back.
    let before = cluster.state_dump(VICTIM).expect("state before crash");
    cluster.crash(VICTIM).expect("crash");
    cluster.restart(VICTIM).expect("restart from data dir");
    let after = cluster.state_dump(VICTIM).expect("state after restart");
    assert_eq!(before, after, "recovered state must be byte-identical");

    // Second leg: the restarted node keeps playing its protocol role.
    cluster.run_cursor(&mut cursor, usize::MAX).expect("second schedule leg");
    assert_eq!(cursor.remaining(), 0);

    // Every answer — asked at the node that died as well as its peers —
    // must match the ground truth over the full history.
    let probes: Vec<SimTime> = (0..8).map(|i| secs(i * 700)).collect();
    for site in 0..SITES as u32 {
        for serial in 0..VOL as u64 {
            let o = workload::epc_object(site, serial);
            let origin = SiteId((site + VICTIM as u32) % SITES as u32);
            for &probe in &probes {
                let truth = t.oracle.locate(o, probe);
                let (ans, _, complete) = cluster.locate(origin, o, probe).expect("locate");
                assert!(complete, "locate incomplete for {o:?} at {probe}");
                assert_eq!(ans, truth, "locate vs oracle for {o:?} at {probe}");
            }
            let truth = t.oracle.trace(o, SimTime::ZERO, SimTime::INFINITY);
            let (path, _, complete) =
                cluster.trace(origin, o, SimTime::ZERO, SimTime::INFINITY).expect("trace");
            assert!(complete, "trace incomplete for {o:?}");
            assert_eq!(path, truth, "trace vs oracle for {o:?}");
        }
    }

    // A clean protocol run end to end, crash included.
    let reports = cluster.shutdown().expect("shutdown");
    for r in &reports {
        assert_eq!(
            r.anomalies,
            peertrack::world::Anomalies::default(),
            "site {} protocol anomalies",
            r.site.0
        );
        assert_eq!(r.unsupported, 0, "site {} left the supported regime", r.site.0);
    }
    std::fs::remove_dir_all(&root).ok();
}

// ----------------------------------------------------------------------
// 2. State-machine level: snapshot-at-any-boundary ≡ pure replay
// ----------------------------------------------------------------------

fn addr_of(i: usize) -> SocketAddr {
    format!("10.0.0.{}:7000", i + 1).parse().expect("synthetic addr")
}

/// A tiny WAL-only universe: every core's inputs are `WalRecord`s, and
/// outbound protocol messages are delivered by logging a `Protocol`
/// record at the destination — exactly the daemon's write path minus
/// the sockets. Returns each site's final core and its complete log.
fn run_universe(
    sites: usize,
    seed: u64,
    group: GroupConfig,
    events: &[workload::CaptureEvent],
) -> (Vec<Core>, Vec<Vec<WalRecord>>) {
    let mut cores: Vec<Core> =
        (0..sites).map(|i| Core::new(SiteId(i as u32), seed, group, addr_of(i))).collect();
    let mut logs: Vec<Vec<WalRecord>> = vec![Vec::new(); sites];

    let log_apply = |cores: &mut Vec<Core>, logs: &mut Vec<Vec<WalRecord>>,
                     site: usize, rec: WalRecord| {
        logs[site].push(rec.clone());
        cores[site].apply_record(&rec);
        // Deliver the fallout (and its fallout) in FIFO order.
        let mut queue: VecDeque<(SiteId, WalRecord)> = VecDeque::new();
        let enqueue = |queue: &mut VecDeque<(SiteId, WalRecord)>, from: SiteId, core: &mut Core| {
            for out in core.take_outbox() {
                queue.push_back((out.to, WalRecord::Protocol { sender: from, wire: out.wire }));
            }
        };
        enqueue(&mut queue, SiteId(site as u32), &mut cores[site]);
        while let Some((to, rec)) = queue.pop_front() {
            let t = to.0 as usize;
            logs[t].push(rec.clone());
            cores[t].apply_record(&rec);
            enqueue(&mut queue, to, &mut cores[t]);
        }
    };

    // Full membership first, like the join phase of a real cluster.
    for i in 0..sites {
        for j in 0..sites {
            let rec = WalRecord::Member { site: SiteId(j as u32), addr: addr_of(j).to_string() };
            log_apply(&mut cores, &mut logs, i, rec);
        }
    }
    let mut sorted: Vec<&workload::CaptureEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.at);
    let mut last = SimTime::ZERO;
    for ev in &sorted {
        last = ev.at;
        let rec = WalRecord::Capture { at: ev.at, objects: ev.objects.clone() };
        log_apply(&mut cores, &mut logs, ev.site.0 as usize, rec);
    }
    // Close every trailing window.
    for i in 0..sites {
        log_apply(&mut cores, &mut logs, i, WalRecord::Flush { now: last + group.t_max });
    }
    (cores, logs)
}

proptiny! {
    #![proptiny_config(Config::with_cases(12))]
    #[test]
    fn prop_snapshot_at_any_boundary_equals_pure_replay(
        sites in 2usize..=4,
        volume in 1usize..=6,
        seed in any::<u16>(),
        cut_pct in 0u8..=100,
    ) {
        let group = GroupConfig::default();
        let events = PaperWorkload {
            sites,
            objects_per_site: volume,
            grouped_movement: true,
            seed: seed as u64,
            ..PaperWorkload::default()
        }
        .generate();
        let (live, logs) = run_universe(sites, seed as u64, group, &events);

        for i in 0..sites {
            let site = SiteId(i as u32);
            let want = live[i].state_bytes(true);

            // Pure replay of the full log.
            let mut replayed = Core::new(site, seed as u64, group, addr_of(i));
            for rec in &logs[i] {
                replayed.replay(rec);
            }
            prop_assert_eq!(&replayed.state_bytes(true), &want);

            // Snapshot at an arbitrary record boundary + tail replay.
            let cut = logs[i].len() * cut_pct as usize / 100;
            let mut upto = Core::new(site, seed as u64, group, addr_of(i));
            for rec in &logs[i][..cut] {
                upto.replay(rec);
            }
            let body = upto.snapshot_body();
            let mut recovered = Core::from_snapshot(site, seed as u64, group, &body)
                .expect("self-produced snapshot loads");
            for rec in &logs[i][cut..] {
                recovered.replay(rec);
            }
            prop_assert_eq!(&recovered.state_bytes(true), &want);
        }
    }
}

// ----------------------------------------------------------------------
// 3. Storage level: damage recovers a prefix or fails loudly
// ----------------------------------------------------------------------

proptiny! {
    #![proptiny_config(Config::with_cases(24))]
    #[test]
    fn prop_damaged_data_dir_recovers_prefix_or_fails_loudly(
        volume in 1usize..=8,
        seed in any::<u16>(),
        damage_at in any::<u16>(),
        damage_kind in 0u8..=8, // 0..8 = flip that bit, 8 = truncate
        hit_snapshot in any::<bool>(),
        snap_at_pct in 0u8..=100,
    ) {
        let (truncate_instead, flip_bit) = (damage_kind == 8, damage_kind % 8);
        let group = GroupConfig::default();
        let site = SiteId(0);
        let events = PaperWorkload {
            sites: 1,
            objects_per_site: volume,
            grouped_movement: true,
            seed: seed as u64,
            ..PaperWorkload::default()
        }
        .generate();
        // A one-site universe: every record self-applies, no sockets.
        let (_, logs) = run_universe(1, seed as u64, group, &events);
        let records = &logs[0];
        prop_assume!(!records.is_empty());

        let dir = scratch(&format!("dmg-{volume}-{seed}-{damage_at}-{damage_kind}-{hit_snapshot}-{snap_at_pct}"));
        let snap_at = records.len() * snap_at_pct as usize / 100;
        {
            let (mut d, _) = DataDir::open(&dir, FsyncMode::Never).unwrap();
            let mut core = Core::new(site, seed as u64, group, addr_of(0));
            for (k, rec) in records.iter().enumerate() {
                d.append(&rec.encode()).unwrap();
                core.replay(rec);
                if k + 1 == snap_at {
                    d.install_snapshot(&core.snapshot_body()).unwrap();
                }
            }
        }

        let target = if hit_snapshot && snap_at > 0 {
            dir.join("snapshot.bin")
        } else {
            dir.join(WAL_FILE)
        };
        let mut raw = std::fs::read(&target).unwrap();
        prop_assume!(!raw.is_empty());
        let pos = damage_at as usize % raw.len();
        if truncate_instead {
            raw.truncate(pos);
        } else {
            raw[pos] ^= 1 << flip_bit;
        }
        std::fs::write(&target, &raw).unwrap();

        match DataDir::open(&dir, FsyncMode::Never) {
            Err(_) => {
                // Loud refusal — the snapshot (or, for a truncated-to-
                // nothing WAL header, the log) could not be trusted.
            }
            Ok((_, rec)) => {
                // Whatever survived must decode to a *prefix* of what
                // was logged, and replaying it must reproduce exactly
                // the state after that prefix.
                let base = match &rec.snapshot {
                    Some((lsn, _)) => *lsn as usize,
                    None => 0,
                };
                let recovered: Vec<WalRecord> = rec
                    .tail
                    .iter()
                    .map(|e| WalRecord::decode(&e.payload).expect("intact payload decodes"))
                    .collect();
                let upto = base + recovered.len();
                prop_assert!(upto <= records.len(), "recovery invented records");

                let mut from_disk = match &rec.snapshot {
                    Some((_, body)) => Core::from_snapshot(site, seed as u64, group, body)
                        .expect("undamaged snapshot loads"),
                    None => Core::new(site, seed as u64, group, addr_of(0)),
                };
                for r in &recovered {
                    from_disk.replay(r);
                }
                let mut expect = Core::new(site, seed as u64, group, addr_of(0));
                for r in &records[..upto] {
                    expect.replay(r);
                }
                prop_assert_eq!(&from_disk.state_bytes(true), &expect.state_bytes(true));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
