//! Schedule-exploring invariant auditor (the tentpole test layer).
//!
//! Random operation schedules — captures, movements, churn, crashes,
//! clock advances — run against a lossy network, and the auditor checks
//! the global invariants of §III–§IV after quiescence (see
//! `integration_tests::audit`). Three claims are established:
//!
//! 1. With the retry layer **off**, a modest drop rate breaks the
//!    invariants, and proptiny shrinks the breaking schedule to a
//!    minimal reproducer (printed as a runnable `AUDIT_SCHEDULE` line).
//! 2. With the retry layer **on**, the *same* drop rate passes the full
//!    invariant audit across many random schedules.
//! 3. The recovery traffic is visible under its own message classes
//!    (`Retrans`, `Ack`) so experiments can price reliability.
//!
//! Replay a reproducer with:
//!
//! ```text
//! AUDIT_SCHEDULE='<words>' cargo test -p integration-tests \
//!     --test schedule_audit replay_schedule_from_env -- --nocapture
//! ```

use integration_tests::audit::{
    causal_slice, decode, describe, encode, format_schedule, parse_schedule, run_schedule,
    run_schedule_traced, shrink_word, AuditConfig, Op,
};
use proptiny::prelude::*;
use proptiny::schedule::{schedule, ScheduleStrategy};

/// Drop rate both headline properties run at (ISSUE: "at least 5%").
const DROP: f64 = 0.08;

/// The schedule vocabulary: mostly captures and movements, a steady
/// trickle of time advances and churn, occasional crashes. Selectors
/// are resolved modulo the live population at execution time, so every
/// generated (or shrunk) word list is runnable.
fn schedule_words(max_len: usize) -> ScheduleStrategy<u64> {
    schedule(1..max_len)
        .with_op(10, |rng| encode(Op::Capture { site: detrand::Rng::gen_range(rng, 0..32u16) }))
        .with_op(8, |rng| {
            encode(Op::MoveObj {
                site: detrand::Rng::gen_range(rng, 0..32u16),
                obj: detrand::Rng::gen_range(rng, 0..64u16),
            })
        })
        .with_op(4, |rng| encode(Op::Advance { ms: detrand::Rng::gen_range(rng, 20..700u16) }))
        .with_op(2, |_| encode(Op::Quiesce))
        .with_op(2, |_| encode(Op::Join))
        .with_op(1, |rng| encode(Op::Leave { sel: detrand::Rng::gen_range(rng, 0..16u16) }))
        .with_op(1, |rng| encode(Op::Crash { sel: detrand::Rng::gen_range(rng, 0..16u16) }))
        .with_op_shrink(|w| shrink_word(*w))
}

/// The same vocabulary with mid-schedule locates mixed in, for the
/// locate-cache property: locates warm the per-site cache, subsequent
/// movements and churn must invalidate it.
fn schedule_words_with_locates(max_len: usize) -> ScheduleStrategy<u64> {
    schedule(1..max_len)
        .with_op(10, |rng| encode(Op::Capture { site: detrand::Rng::gen_range(rng, 0..32u16) }))
        .with_op(8, |rng| {
            encode(Op::MoveObj {
                site: detrand::Rng::gen_range(rng, 0..32u16),
                obj: detrand::Rng::gen_range(rng, 0..64u16),
            })
        })
        .with_op(6, |rng| encode(Op::Locate { obj: detrand::Rng::gen_range(rng, 0..64u16) }))
        .with_op(4, |rng| encode(Op::Advance { ms: detrand::Rng::gen_range(rng, 20..700u16) }))
        .with_op(2, |_| encode(Op::Quiesce))
        .with_op(2, |_| encode(Op::Join))
        .with_op(1, |rng| encode(Op::Leave { sel: detrand::Rng::gen_range(rng, 0..16u16) }))
        .with_op(1, |rng| encode(Op::Crash { sel: detrand::Rng::gen_range(rng, 0..16u16) }))
        .with_op_shrink(|w| shrink_word(*w))
}

/// The same vocabulary with permanent kills mixed in, for the
/// replicated-network property.
fn schedule_words_with_kills(max_len: usize) -> ScheduleStrategy<u64> {
    schedule(1..max_len)
        .with_op(10, |rng| encode(Op::Capture { site: detrand::Rng::gen_range(rng, 0..32u16) }))
        .with_op(8, |rng| {
            encode(Op::MoveObj {
                site: detrand::Rng::gen_range(rng, 0..32u16),
                obj: detrand::Rng::gen_range(rng, 0..64u16),
            })
        })
        .with_op(4, |rng| encode(Op::Advance { ms: detrand::Rng::gen_range(rng, 20..700u16) }))
        .with_op(2, |_| encode(Op::Quiesce))
        .with_op(2, |_| encode(Op::Join))
        .with_op(3, |rng| encode(Op::Kill { sel: detrand::Rng::gen_range(rng, 0..16u16) }))
        .with_op_shrink(|w| shrink_word(*w))
}

/// Recover the word list from proptiny's `Debug`-rendered minimal
/// counterexample, e.g. `([72057594037927936, 3],)`.
fn words_from_minimal(minimal: &str) -> Vec<u64> {
    let digits: String =
        minimal.chars().map(|c| if c.is_ascii_digit() { c } else { ' ' }).collect();
    parse_schedule(&digits).expect("minimal schedule is a digit list")
}

/// Claim 1: the auditor finds an invariant violation under loss without
/// retries, and the shrunk schedule still reproduces it.
#[test]
fn auditor_finds_and_shrinks_a_violation_without_retries() {
    let cfg = AuditConfig::lossy_no_retries(DROP);
    let failure = proptiny::run_collect(
        "auditor_finds_and_shrinks_a_violation_without_retries",
        &proptiny::Config { cases: 32, max_shrink_steps: 2048, ..proptiny::Config::default() },
        &(schedule_words(40),),
        |(words,): (Vec<u64>,)| {
            let report = run_schedule(&cfg, &words);
            if report.violations.is_empty() {
                proptiny::CaseResult::Pass
            } else {
                proptiny::CaseResult::Fail(report.violations.join("; "))
            }
        },
    )
    .expect_err("an unreliable network at 8% drop must violate the tracking invariants");

    let words = words_from_minimal(&failure.minimal);
    assert!(!words.is_empty(), "shrinking must keep at least one op: {failure:?}");
    // Re-run the shrunk schedule with the causal trace on: tracing is
    // observation-only, so the violation must reproduce identically —
    // and now arrives with the message chain that caused it.
    let (report, rec) = run_schedule_traced(&cfg, &words);
    assert!(
        !report.violations.is_empty(),
        "the shrunk schedule must still reproduce a violation: {}",
        describe(&words)
    );
    println!(
        "shrunk to {} op(s) after {} shrink evals (seed {:#x}):\n  {}\n  violations: {:?}",
        words.len(),
        failure.shrink_steps,
        failure.seed,
        describe(&words),
        report.violations
    );
    println!(
        "replay: AUDIT_SCHEDULE='{}' AUDIT_RETRIES=off AUDIT_DROP={DROP} cargo test -q \
         -p integration-tests --test schedule_audit replay_schedule_from_env -- --nocapture",
        format_schedule(&words)
    );
    let slice = causal_slice(&rec.borrow(), &report);
    assert!(!slice.is_empty(), "a violating traced run must yield a causal slice");
    println!("{slice}");
}

/// Claim 2: with the retry layer on, the same drop rate passes the full
/// audit across many random schedules (`AUDIT_CASES` overrides the
/// budget; `scripts/verify.sh` uses a reduced fast-mode budget).
#[test]
fn schedules_with_retries_preserve_all_invariants() {
    let cases = std::env::var("AUDIT_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(50);
    let cfg = AuditConfig::lossy_with_retries(DROP);
    proptiny::run(
        "schedules_with_retries_preserve_all_invariants",
        &proptiny::Config::with_cases(cases),
        &(schedule_words(40),),
        |(words,): (Vec<u64>,)| {
            let report = run_schedule(&cfg, &words);
            prop_assert!(
                report.violations.is_empty(),
                "invariants violated despite retries: {:?}\nschedule: {}\n({})",
                report.violations,
                format_schedule(&words),
                describe(&words)
            );
            proptiny::CaseResult::Pass
        },
    );
}

/// The locate-cache invariant as a property over random schedules
/// (DESIGN.md §15): with a per-site locate-answer cache enabled and
/// mid-schedule locates warming it, the *same* lossy-with-retries
/// network passes the full invariant audit — cached answers are
/// invalidated by movement epochs and churn, never served stale. The
/// cached run's protocol traffic is also byte-for-byte the uncached
/// run's (queries are read-only), asserted via the fault-plane counters
/// (`AUDIT_CASES` overrides the budget; `scripts/verify.sh` uses a
/// reduced fast-mode budget).
#[test]
fn cached_schedules_stay_oracle_exact() {
    let cases = std::env::var("AUDIT_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(24);
    let cfg = AuditConfig::lossy_with_retries(DROP);
    proptiny::run(
        "cached_schedules_stay_oracle_exact",
        &proptiny::Config::with_cases(cases),
        &(2usize..=32, schedule_words_with_locates(36)),
        |(capacity, words): (usize, Vec<u64>)| {
            let cached = run_schedule(&cfg.with_locate_cache(capacity), &words);
            prop_assert!(
                cached.violations.is_empty(),
                "locate cache (capacity {capacity}) violated the tracking invariants: \
                 {:?}\nschedule: {}\n({})",
                cached.violations,
                format_schedule(&words),
                describe(&words)
            );
            let plain = run_schedule(&cfg, &words);
            prop_assert!(
                plain.fault_stats == cached.fault_stats
                    && plain.retrans_messages == cached.retrans_messages
                    && plain.ack_messages == cached.ack_messages,
                "caching must be invisible to the protocol plane: {:?} vs {:?}\nschedule: {}",
                plain.fault_stats,
                cached.fault_stats,
                format_schedule(&words)
            );
            proptiny::CaseResult::Pass
        },
    );
}

/// The kill-forever invariant as a property over random schedules: on a
/// fault-free plane with K-successor replication, any schedule whose
/// permanent losses stay within the K−1 budget (the auditor degrades
/// the rest to crashes) must keep every locate and trace oracle-exact —
/// kills earn **no** taints (`AUDIT_CASES` overrides the budget;
/// `scripts/verify.sh` uses a reduced fast-mode budget).
#[test]
fn kill_forever_schedules_stay_oracle_exact() {
    let cases = std::env::var("AUDIT_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(32);
    proptiny::run(
        "kill_forever_schedules_stay_oracle_exact",
        &proptiny::Config::with_cases(cases),
        &(2usize..=4, schedule_words_with_kills(30)),
        |(k, words): (usize, Vec<u64>)| {
            let cfg = AuditConfig::replicated(k);
            let report = run_schedule(&cfg, &words);
            prop_assert!(
                report.violations.is_empty(),
                "kill-forever (K={k}) violated the tracking invariants: {:?}\nschedule: {}\n({})",
                report.violations,
                format_schedule(&words),
                describe(&words)
            );
            proptiny::CaseResult::Pass
        },
    );
}

/// Claim 3: recovery traffic is observable — on a lossy run with
/// retries enabled, drops happen, retransmissions are charged to
/// `MsgClass::Retrans`, acks to `MsgClass::Ack`, and the invariants
/// still hold.
#[test]
fn retry_traffic_is_charged_to_its_own_message_classes() {
    let cfg = AuditConfig::lossy_with_retries(0.15);
    let words: Vec<u64> = [
        Op::Capture { site: 0 },
        Op::Capture { site: 1 },
        Op::Capture { site: 2 },
        Op::Capture { site: 3 },
        Op::Capture { site: 4 },
        Op::Capture { site: 5 },
        Op::Quiesce,
        Op::MoveObj { site: 1, obj: 0 },
        Op::MoveObj { site: 2, obj: 1 },
        Op::MoveObj { site: 3, obj: 2 },
        Op::MoveObj { site: 4, obj: 3 },
        Op::Quiesce,
        Op::Join,
        Op::MoveObj { site: 5, obj: 4 },
        Op::MoveObj { site: 0, obj: 5 },
        Op::Quiesce,
    ]
    .into_iter()
    .map(encode)
    .collect();
    let report = run_schedule(&cfg, &words);
    assert_eq!(report.violations, Vec::<String>::new());
    assert!(report.fault_stats.dropped > 0, "the fault plane must have dropped something");
    assert!(
        report.retrans_messages > 0,
        "dropped sequenced messages must surface as Retrans traffic: {report:?}"
    );
    assert!(report.ack_messages > 0, "delivered sequenced messages must be acked");
}

/// Replay harness for shrunk reproducers. Skips (trivially passes) when
/// `AUDIT_SCHEDULE` is unset. `AUDIT_DROP` (default 0.08),
/// `AUDIT_RETRIES` (`on`/`off`, default `off`) and `AUDIT_SEED` tune
/// the configuration to match the failure being replayed.
#[test]
fn replay_schedule_from_env() {
    let Ok(sched) = std::env::var("AUDIT_SCHEDULE") else {
        return;
    };
    let words = parse_schedule(&sched).expect("AUDIT_SCHEDULE must be decimal words");
    let drop = std::env::var("AUDIT_DROP").ok().and_then(|v| v.parse().ok()).unwrap_or(DROP);
    let retries = std::env::var("AUDIT_RETRIES").map(|v| v == "on").unwrap_or(false);
    let mut cfg = if retries {
        AuditConfig::lossy_with_retries(drop)
    } else {
        AuditConfig::lossy_no_retries(drop)
    };
    if let Some(seed) = std::env::var("AUDIT_SEED").ok().and_then(|v| v.parse().ok()) {
        cfg.seed = seed;
    }
    println!("replaying {} op(s): {}", words.len(), describe(&words));
    let (report, rec) = run_schedule_traced(&cfg, &words);
    println!("{report:#?}");
    if !report.violations.is_empty() {
        println!("{}", causal_slice(&rec.borrow(), &report));
    }
    assert!(
        report.violations.is_empty(),
        "schedule violates the tracking invariants: {:?}",
        report.violations
    );
}

/// The word codec the reproducer pipeline rests on: decode ∘ encode is
/// the identity over the whole op vocabulary (belt to the unit tests'
/// braces — this is the integration boundary the env replay uses).
#[test]
fn reproducer_words_survive_print_and_parse() {
    let words: Vec<u64> = [
        Op::Capture { site: 31 },
        Op::MoveObj { site: 7, obj: 63 },
        Op::Advance { ms: 699 },
        Op::Quiesce,
        Op::Join,
        Op::Leave { sel: 15 },
        Op::Crash { sel: 9 },
    ]
    .into_iter()
    .map(encode)
    .collect();
    let reparsed = parse_schedule(&format_schedule(&words)).unwrap();
    assert_eq!(reparsed, words);
    for (&w, &r) in words.iter().zip(reparsed.iter()) {
        assert_eq!(decode(w), decode(r));
    }
}
