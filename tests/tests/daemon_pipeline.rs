//! The daemon's event-loop core under adversarial client behaviour.
//!
//! Four claims about the readiness-driven engine (`daemon::node`):
//!
//! 1. **Pipelining parity** — N request frames written back-to-back
//!    before reading anything yield exactly the N responses, in order,
//!    that request-at-a-time clients get — byte-identical — and the
//!    locate answers match the simulator-fed ground truth. This is the
//!    per-connection ordering invariant (`busy_conn` + staged
//!    responses) that makes open-loop clients sound.
//! 2. **Slow-loris isolation** — a client trickling one byte at a time
//!    (and one stalled mid-frame indefinitely) must not block other
//!    connections or corrupt frame decoding; every split offset of a
//!    `Capture` frame is a valid resume point.
//! 3. **Backpressure** — a client that writes hundreds of requests
//!    without ever reading is *parked* (bounded outbox), not buffered
//!    without bound or disconnected; once it drains, every response
//!    arrives complete and in order, and the node reports the parking.
//! 4. **Group-commit durability** — captures acked to a pipelined
//!    client are on disk: kill the node with `Frame::Crash` (the
//!    kill -9 model — no flush, no snapshot) right after the last ack
//!    and the restarted node's canonical state is byte-identical.

use daemon::{Frame, LoopbackCluster};
use durable::FsyncMode;
use integration_tests::triple_from_events;
use moods::SiteId;
use peertrack::config::GroupConfig;
use peertrack::Builder;
use simnet::time::secs;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;
use transport::frame::{read_frame, write_frame};
use workload::paper::PaperWorkload;

fn can_bind() -> bool {
    TcpListener::bind("127.0.0.1:0").is_ok()
}

macro_rules! require_sockets {
    () => {
        if !can_bind() {
            eprintln!("SKIP: sandbox forbids binding loopback sockets");
            return;
        }
    };
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pt-pipe-{}-{}", std::process::id(), name));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn connect(cluster: &LoopbackCluster, i: usize) -> TcpStream {
    let s = TcpStream::connect(cluster.addr(i)).expect("connect to node");
    s.set_nodelay(true).expect("nodelay");
    s
}

fn read_response(stream: &mut TcpStream) -> Vec<u8> {
    read_frame(stream).expect("read response").expect("node closed mid-test")
}

// ----------------------------------------------------------------------
// 1. Pipelining parity
// ----------------------------------------------------------------------

/// The same read-only request sequence, issued request-at-a-time on one
/// connection and as one back-to-back pipelined burst on another, must
/// produce byte-identical response sequences — and the locate answers
/// must match the oracle, so "identical" can't mean "identically wrong".
#[test]
fn pipelined_burst_matches_request_at_a_time_and_oracle() {
    require_sockets!();
    const SITES: usize = 4;
    const VOL: usize = 6;
    const SEED: u64 = 21;

    let events = PaperWorkload {
        sites: SITES,
        objects_per_site: VOL,
        grouped_movement: true,
        seed: SEED,
        ..PaperWorkload::default()
    }
    .generate();

    let net = Builder::new().sites(SITES).seed(SEED).build();
    let t = triple_from_events(net, &events);

    let mut cluster = LoopbackCluster::start(SITES, SEED).expect("cluster start");
    cluster.run_schedule(&events).expect("schedule");

    // A mixed request plan against node 0: locates and traces
    // (distributed queries — each takes the nested-RPC path while later
    // frames of this same connection wait their turn), interleaved with
    // local lookups (Resolve). Responses must be position-for-position
    // identical across client disciplines; queries log `Query` records
    // whose *per-query* costs are deterministic, while cumulative
    // surfaces (StateDump, Status) are deliberately left out of the
    // plan — they drift with history, not with discipline.
    let probes = [secs(0), secs(1_400), secs(4_200)];
    let mut requests: Vec<Vec<u8>> = Vec::new();
    for site in 0..SITES as u32 {
        for serial in 0..VOL as u64 {
            let o = workload::epc_object(site, serial);
            for &p in &probes {
                requests.push(Frame::Locate { object: o, t: p }.encode());
            }
            requests.push(
                Frame::Trace { object: o, t0: simnet::SimTime::ZERO, t1: secs(100_000) }
                    .encode(),
            );
            requests.push(Frame::Resolve { site: SiteId(site) }.encode());
        }
    }

    // Pass A: request-at-a-time (the pre-event-loop client discipline).
    let mut serial_conn = connect(&cluster, 0);
    let mut serial_responses: Vec<Vec<u8>> = Vec::with_capacity(requests.len());
    for req in &requests {
        write_frame(&mut serial_conn, req).expect("serial write");
        serial_responses.push(read_response(&mut serial_conn));
    }

    // Pass B: the whole plan written back-to-back before reading one
    // byte of response.
    let mut burst_conn = connect(&cluster, 0);
    for req in &requests {
        write_frame(&mut burst_conn, req).expect("burst write");
    }
    let burst_responses: Vec<Vec<u8>> =
        (0..requests.len()).map(|_| read_response(&mut burst_conn)).collect();

    assert_eq!(
        serial_responses, burst_responses,
        "pipelined responses must be byte-identical to request-at-a-time, in order"
    );

    // Ground-truth the locate answers (requests[k] layout: the first
    // `probes.len()` frames of every object block are locates).
    let mut k = 0;
    for site in 0..SITES as u32 {
        for serial in 0..VOL as u64 {
            let o = workload::epc_object(site, serial);
            for &p in &probes {
                let truth = {
                    use moods::Locate;
                    t.oracle.locate(o, p)
                };
                let resp = Frame::decode(&serial_responses[k]).expect("decode locate resp");
                match resp {
                    Frame::LocateResp { answer, complete, .. } => {
                        assert!(complete, "locate incomplete for {o:?} at {p}");
                        assert_eq!(answer, truth, "locate diverged from oracle at {p}");
                    }
                    other => panic!("expected LocateResp, got {other:?}"),
                }
                k += 1;
            }
            k += 2; // trace + resolve
        }
    }

    let reports = cluster.shutdown().expect("shutdown");
    for r in &reports {
        assert_eq!(r.unsupported, 0, "site {} rejected well-formed frames", r.site.0);
    }
}

// ----------------------------------------------------------------------
// 2. Slow-loris / partial frames
// ----------------------------------------------------------------------

/// A byte-at-a-time writer and a connection stalled mid-frame must not
/// block other clients, and the dribbled frame must decode intact.
#[test]
fn slow_loris_does_not_block_other_connections() {
    require_sockets!();
    let cluster = LoopbackCluster::start(2, 7).expect("cluster start");

    // A connection that sends half a frame header and then goes silent
    // forever (the classic slow-loris hold).
    let mut stalled = connect(&cluster, 0);
    let capture = Frame::Capture { at: secs(1), objects: vec![workload::epc_object(0, 0)] };
    let mut wire = Vec::new();
    write_frame(&mut wire, &capture.encode()).expect("encode to buffer");
    stalled.write_all(&wire[..2]).expect("send partial prefix");
    stalled.flush().expect("flush partial");

    // A second connection dribbles a full frame one byte at a time...
    let mut dribble = connect(&cluster, 0);
    let dribble_frame =
        Frame::Capture { at: secs(2), objects: vec![workload::epc_object(0, 1)] };
    let mut dribble_wire = Vec::new();
    write_frame(&mut dribble_wire, &dribble_frame.encode()).expect("encode to buffer");

    for (i, byte) in dribble_wire.iter().enumerate() {
        dribble.write_all(std::slice::from_ref(byte)).expect("dribble byte");
        dribble.flush().expect("flush byte");
        // ...and in the middle of the dribble, a normal client gets
        // served promptly on yet another connection.
        if i == dribble_wire.len() / 2 {
            let mut normal = connect(&cluster, 0);
            write_frame(&mut normal, &Frame::Status.encode()).expect("status write");
            match Frame::decode(&read_response(&mut normal)).expect("status decode") {
                Frame::StatusResp { .. } => {}
                other => panic!("expected StatusResp, got {other:?}"),
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    }

    // The dribbled capture was assembled correctly and acked.
    match Frame::decode(&read_response(&mut dribble)).expect("decode dribble ack") {
        Frame::Ack => {}
        other => panic!("expected Ack for dribbled capture, got {other:?}"),
    }

    drop(stalled);
    let reports = cluster.shutdown().expect("shutdown");
    for r in &reports {
        assert_eq!(r.unsupported, 0, "partial frames must not decode as garbage");
    }
}

/// Regression for frame-boundary handling: a `Capture` frame split into
/// two writes at *every* byte offset must decode identically. (The
/// `FrameAccum` unit tests cover this in-process; this covers the
/// socket path end to end, where reads land on poll-wakeup boundaries.)
#[test]
fn capture_frame_split_at_every_offset_decodes_intact() {
    require_sockets!();
    let cluster = LoopbackCluster::start(2, 7).expect("cluster start");
    let mut conn = connect(&cluster, 1);

    let mut offsets_tried = 0;
    let mut serial = 0u64;
    // Representative wire length: a 2-object capture (~70 bytes).
    let probe_len = {
        let f = Frame::Capture {
            at: secs(0),
            objects: vec![workload::epc_object(1, 0), workload::epc_object(1, 1)],
        };
        let mut w = Vec::new();
        write_frame(&mut w, &f.encode()).expect("encode");
        w.len()
    };

    for cut in 1..probe_len {
        // Fresh objects per iteration so every ack acks a new record.
        let frame = Frame::Capture {
            at: secs(10 + serial),
            objects: vec![
                workload::epc_object(1, 100 + serial * 2),
                workload::epc_object(1, 101 + serial * 2),
            ],
        };
        serial += 1;
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame.encode()).expect("encode");
        assert_eq!(wire.len(), probe_len, "frame length drifted mid-test");

        conn.write_all(&wire[..cut]).expect("first half");
        conn.flush().expect("flush first half");
        // Give the engine a poll wakeup with only the partial frame.
        std::thread::sleep(Duration::from_micros(300));
        conn.write_all(&wire[cut..]).expect("second half");
        conn.flush().expect("flush second half");

        match Frame::decode(&read_response(&mut conn)).expect("decode ack") {
            Frame::Ack => offsets_tried += 1,
            other => panic!("split at {cut}: expected Ack, got {other:?}"),
        }
    }
    assert_eq!(offsets_tried, probe_len - 1, "every split offset exercised");

    let reports = cluster.shutdown().expect("shutdown");
    for r in &reports {
        assert_eq!(r.unsupported, 0, "split frames must never decode as garbage");
    }
}

// ----------------------------------------------------------------------
// 3. Backpressure
// ----------------------------------------------------------------------

/// A client that pipelines hundreds of large-response requests without
/// reading must be *parked* — bounded per-connection outbox — rather
/// than ballooning the node's memory or getting dropped. When the
/// client finally drains, every response arrives in order.
#[test]
fn never_reading_client_is_parked_not_unbounded() {
    require_sockets!();
    const SITES: usize = 2;
    const REQUESTS: usize = 300;

    let cluster = LoopbackCluster::start(SITES, 7).expect("cluster start");

    // Grow node 0's state so every StateDump response is fat: several
    // captures of many objects each (kept under n_max so no protocol
    // traffic complicates the picture).
    let mut loader = connect(&cluster, 0);
    for batch in 0..4u64 {
        let objects: Vec<_> =
            (0..200).map(|j| workload::epc_object(0, batch * 200 + j)).collect();
        let f = Frame::Capture { at: secs(batch + 1), objects };
        write_frame(&mut loader, &f.encode()).expect("load write");
        match Frame::decode(&read_response(&mut loader)).expect("load ack") {
            Frame::Ack => {}
            other => panic!("expected Ack, got {other:?}"),
        }
    }
    let dump_len = {
        write_frame(&mut loader, &Frame::StateDump.encode()).expect("probe dump");
        read_response(&mut loader).len()
    };
    assert!(
        dump_len * REQUESTS / 2 > daemon::OUTBOX_LIMIT_BYTES * 2,
        "test must oversubscribe the outbox limit (dump is {dump_len} bytes)"
    );

    // The hog: pipeline alternating StateDump (fat) and Resolve (small,
    // distinguishable) requests, reading nothing.
    let mut hog = connect(&cluster, 0);
    for k in 0..REQUESTS {
        let req = if k % 2 == 0 {
            Frame::StateDump.encode()
        } else {
            Frame::Resolve { site: SiteId((k as u32 / 2) % SITES as u32) }.encode()
        };
        write_frame(&mut hog, &req).expect("hog write");
    }
    // Let the engine process into the outbox limit and park the hog.
    std::thread::sleep(Duration::from_millis(300));

    // Meanwhile the node still serves everyone else.
    let mut normal = connect(&cluster, 0);
    write_frame(&mut normal, &Frame::Status.encode()).expect("status write");
    match Frame::decode(&read_response(&mut normal)).expect("status decode") {
        Frame::StatusResp { .. } => {}
        other => panic!("expected StatusResp, got {other:?}"),
    }

    // Drain: all 300 responses, correct kinds, in request order.
    for k in 0..REQUESTS {
        let resp = Frame::decode(&read_response(&mut hog)).expect("hog response");
        match (k % 2, resp) {
            (0, Frame::StateResp(body)) => {
                assert_eq!(body.len() + 5, dump_len, "state changed mid-drain")
            }
            (1, Frame::AddrResp(Some(_))) => {}
            (_, other) => panic!("response {k} out of order or wrong kind: {other:?}"),
        }
    }

    let reports = cluster.shutdown().expect("shutdown");
    let hogged = &reports[0];
    assert!(
        hogged.backpressure_parks > 0,
        "oversubscribing the outbox must park the connection \
         (parks = {}, dump = {dump_len} bytes)",
        hogged.backpressure_parks
    );
    for r in &reports {
        assert_eq!(r.unsupported, 0, "site {} rejected well-formed frames", r.site.0);
    }
}

// ----------------------------------------------------------------------
// 4. Group-commit durability at the socket level
// ----------------------------------------------------------------------

/// Every capture acked to a pipelined client survives `Frame::Crash`
/// (abrupt exit: no flush, no final snapshot) under `--fsync batch`:
/// the group-commit rule is that the batch fsync happens *before* its
/// acks are released, so an ack in hand means the record is replayable.
#[test]
fn pipelined_acked_captures_survive_crash_under_batch_fsync() {
    require_sockets!();
    const SITES: usize = 3;
    const VICTIM: usize = 1;
    const CAPTURES: u64 = 60;

    let root = scratch("group-commit");
    let mut cluster = LoopbackCluster::start_durable(
        SITES,
        7,
        GroupConfig::default(),
        &root,
        FsyncMode::Batch,
        // Snapshots far away: recovery must come from WAL replay.
        100_000,
    )
    .expect("durable cluster start");

    // Pipeline a burst of captures, then collect every ack.
    let mut conn = connect(&cluster, VICTIM);
    for k in 0..CAPTURES {
        let f = Frame::Capture {
            at: secs(k + 1),
            objects: vec![workload::epc_object(VICTIM as u32, k)],
        };
        write_frame(&mut conn, &f.encode()).expect("capture write");
    }
    for k in 0..CAPTURES {
        match Frame::decode(&read_response(&mut conn)).expect("decode ack") {
            Frame::Ack => {}
            other => panic!("capture {k}: expected Ack, got {other:?}"),
        }
    }

    // Everything acked is now claimed durable. Kill -9 and recover.
    let before = cluster.state_dump(VICTIM).expect("state before crash");
    cluster.crash(VICTIM).expect("crash");
    cluster.restart(VICTIM).expect("restart from data dir");
    let after = cluster.state_dump(VICTIM).expect("state after restart");
    assert_eq!(before, after, "acked state lost across crash: group commit leaked an ack");

    cluster.shutdown().expect("shutdown");
    std::fs::remove_dir_all(&root).ok();
}
