//! Determinism regression: same-seed runs must be byte-identical.
//!
//! The §V evaluation depends on bit-reproducible simulation (ISSUE 1 /
//! DESIGN.md hermetic-build rule): every random choice flows from one
//! seeded `detrand` stream through a single-threaded event loop, so a
//! repeated run is the *same* run. These tests pin that property at two
//! levels — the raw `simnet` engine with a jittered latency model, and
//! the full peertrack stack driving the paper workload — by comparing
//! serialized event traces and metrics byte for byte.

use detrand::{Rng, SeedableRng};
use peertrack::Builder;
use simnet::time::{ms, secs};
use simnet::{Metrics, MsgClass, NodeIndex, Sim, SimConfig, SimTime, UniformJitter, World};
use std::fmt::Write as _;
use workload::paper::PaperWorkload;

/// A toy protocol that exercises every nondeterminism source the engine
/// has: RNG-driven latency (jitter), RNG draws inside handlers, timers
/// and message fan-out. Appends one line per event to `trace`.
struct Recorder {
    trace: String,
    budget: u32,
}

impl World<u64> for Recorder {
    fn on_message(&mut self, sim: &mut Sim<u64>, to: NodeIndex, from: NodeIndex, msg: u64) {
        let draw: u64 = sim.rng_mut().gen_range(0..1000);
        writeln!(self.trace, "{} msg {}->{} payload={} draw={}", sim.now().0, from, to, msg, draw)
            .unwrap();
        if self.budget > 0 {
            self.budget -= 1;
            // Fan out to two pseudo-random peers over jittered links.
            for _ in 0..2 {
                let next = sim.rng_mut().gen_range(0..8u64) as NodeIndex;
                let hops = sim.rng_mut().gen_range(1..4u32);
                sim.send(to, next, MsgClass::Refresh, 64, hops, msg.wrapping_add(draw));
            }
            let delay = ms(sim.rng_mut().gen_range(1..50));
            sim.set_timer(to, delay, msg);
        }
    }

    fn on_timer(&mut self, sim: &mut Sim<u64>, node: NodeIndex, kind: u64) {
        writeln!(self.trace, "{} timer @{} kind={}", sim.now().0, node, kind).unwrap();
    }
}

/// Run the toy protocol to quiescence; returns (event trace, metrics).
fn engine_run(seed: u64) -> (String, String) {
    let mut sim: Sim<u64> = SimConfig::default()
        .with_seed(seed)
        .with_latency(Box::new(UniformJitter::new(ms(40), ms(25))))
        .build();
    let mut world = Recorder { trace: String::new(), budget: 200 };
    for n in 0..8 {
        sim.send(0, n, MsgClass::Refresh, 64, 1, n as u64);
    }
    sim.run_until_quiescent(&mut world);
    (world.trace, format!("{:?}", sim.metrics()))
}

#[test]
fn same_seed_engine_runs_are_byte_identical() {
    let (trace_a, metrics_a) = engine_run(0xDECAF);
    let (trace_b, metrics_b) = engine_run(0xDECAF);
    assert!(!trace_a.is_empty(), "toy protocol produced no events");
    assert_eq!(trace_a, trace_b, "same-seed event traces differ");
    assert_eq!(metrics_a, metrics_b, "same-seed metrics differ");
}

#[test]
fn different_seed_engine_runs_diverge() {
    let (trace_a, _) = engine_run(1);
    let (trace_b, _) = engine_run(2);
    assert_ne!(trace_a, trace_b, "jittered runs with different seeds should diverge");
}

/// Full-stack fingerprint: paper workload → peertrack network, then
/// serialize everything observable — metrics, gateway load, the answer
/// to a fixed probe schedule — into one string.
fn stack_fingerprint(seed: u64) -> String {
    stack_fingerprint_inner(seed, None)
}

fn stack_fingerprint_inner(seed: u64, rec: Option<obs::SharedRecorder>) -> String {
    let events = PaperWorkload {
        sites: 10,
        objects_per_site: 30,
        grouped_movement: true,
        seed,
        ..PaperWorkload::default()
    }
    .generate();
    let mut net = Builder::new().sites(10).seed(seed).build();
    if let Some(r) = rec {
        net.set_trace_sink(Box::new(r));
    }
    for ev in &events {
        net.schedule_capture(ev.at, ev.site, ev.objects.clone());
    }
    net.run_until_quiescent();

    let mut out = String::new();
    writeln!(out, "now={:?}", net.now()).unwrap();
    writeln!(out, "lp={}", net.current_lp()).unwrap();
    writeln!(out, "load={:?}", net.load_distribution()).unwrap();
    writeln!(out, "metrics={:?}", net.metrics()).unwrap();
    let mut probe_rng = detrand::rngs::StdRng::seed_from_u64(99);
    for _ in 0..25 {
        let o = workload::epc_object(probe_rng.gen_range(0..10u32), probe_rng.gen_range(0..30u64));
        let from = moods::SiteId(probe_rng.gen_range(0..10u32));
        let (loc, stats) = net.locate(from, o, net.now());
        writeln!(out, "locate {o:?} from {from:?}: {loc:?} {stats:?}").unwrap();
        let (path, stats) = net.trace(from, o, SimTime::ZERO, net.now());
        writeln!(out, "trace {o:?}: {path:?} {stats:?}").unwrap();
    }
    out
}

#[test]
fn same_seed_full_stack_runs_are_byte_identical() {
    let a = stack_fingerprint(7);
    let b = stack_fingerprint(7);
    assert_eq!(a, b, "same-seed full-stack fingerprints differ");
}

#[test]
fn different_seed_full_stack_runs_diverge() {
    let a = stack_fingerprint(7);
    let b = stack_fingerprint(8);
    assert_ne!(a, b, "different-seed full-stack fingerprints should not collide");
}

/// The tracing layer's two determinism promises (see `simnet::trace`):
/// installing a sink does not perturb the run (no extra RNG draws, no
/// reordering), and a traced run's exports are byte-identical across
/// same-seed invocations.
#[test]
fn tracing_does_not_perturb_the_run_and_exports_deterministically() {
    let blind = stack_fingerprint(7);
    let rec_a = obs::SharedRecorder::new();
    let traced_a = stack_fingerprint_inner(7, Some(rec_a.clone()));
    assert_eq!(blind, traced_a, "a trace sink must be observation-only");

    let rec_b = obs::SharedRecorder::new();
    let traced_b = stack_fingerprint_inner(7, Some(rec_b.clone()));
    assert_eq!(traced_a, traced_b, "same-seed traced runs differ");

    let (rec_a, rec_b) = (rec_a.borrow(), rec_b.borrow());
    assert!(!rec_a.events().is_empty(), "the workload must have been traced");
    let json_a = obs::chrome_trace_json(&rec_a, &peertrack::spans::label);
    let json_b = obs::chrome_trace_json(&rec_b, &peertrack::spans::label);
    assert_eq!(json_a, json_b, "Chrome trace export is not deterministic");
    let csv_a = obs::latency_summary_csv(&rec_a, &peertrack::spans::label);
    let csv_b = obs::latency_summary_csv(&rec_b, &peertrack::spans::label);
    assert_eq!(csv_a, csv_b, "latency summary export is not deterministic");
    assert!(csv_a.lines().count() > 1, "the summary must have at least one data row");
}

#[test]
fn metrics_debug_is_deterministic_across_merges() {
    // Metrics aggregation must not depend on accumulation order of
    // equal contributions (guards against map-iteration nondeterminism
    // sneaking into the report path).
    let mut rng = detrand::rngs::StdRng::seed_from_u64(3);
    let mut parts: Vec<Metrics> = Vec::new();
    for _ in 0..6 {
        let mut m = Metrics::new();
        for _ in 0..40 {
            let class = match rng.gen_range(0..5u8) {
                0 => MsgClass::IndexReport,
                1 => MsgClass::IopUpdate,
                2 => MsgClass::GroupIndex,
                3 => MsgClass::Refresh,
                _ => MsgClass::Delegate,
            };
            m.record(class, rng.gen_range(16..256), rng.gen_range(1..6));
        }
        parts.push(m);
    }
    let mut fwd = Metrics::new();
    for p in &parts {
        fwd.merge(p);
    }
    let mut rev = Metrics::new();
    for p in parts.iter().rev() {
        rev.merge(p);
    }
    assert_eq!(format!("{fwd:?}"), format!("{rev:?}"));
    let _ = secs(1); // keep the time helpers import exercised
}
