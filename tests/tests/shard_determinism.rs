//! Thread-count invariance of the sharded executor, as a property over
//! random flat-world geometries: for any (nodes, objects, shards, seed)
//! the full [`peertrack::flat::FlatReport`] — merged metrics, event and
//! window counts, violation strings — must be byte-identical at
//! `T ∈ {1, 2, 4}` worker threads. The `Debug` rendering is the
//! comparison key, so every public field participates.
//!
//! This is the same guarantee `verify.sh` gates at a fixed canonical
//! geometry (`complexity_check --shard-csv` at `T = 1` vs `T = 4`);
//! here the geometry itself is randomized and failures shrink.

use peertrack::flat::{run_flat, FlatConfig};
use proptiny::prelude::*;
use simnet::time::SimTime;

proptiny! {
    #![proptiny_config(Config::with_cases(10))]

    #[test]
    fn prop_thread_count_never_changes_the_flat_report(
        nodes in 32u32..256,
        objects in 50u32..500,
        shards in 2usize..8,
        seed in any::<u64>(),
    ) {
        let base = FlatConfig {
            nodes,
            objects,
            shards,
            seed,
            locates: 32,
            spread: SimTime::from_secs(3),
            ..FlatConfig::default()
        };
        let runs: Vec<String> = [1usize, 2, 4]
            .iter()
            .map(|&threads| format!("{:?}", run_flat(&FlatConfig { threads, ..base })))
            .collect();
        prop_assert_eq!(&runs[0], &runs[1], "T=2 diverged from T=1");
        prop_assert_eq!(&runs[0], &runs[2], "T=4 diverged from T=1");
        // The runs must also be *clean* — byte-identical garbage would
        // pass the comparison but indicates a broken workload.
        prop_assert!(
            runs[0].contains("locates_bad: 0") && runs[0].contains("out_of_order: 0"),
            "violations in report: {}",
            runs[0]
        );
    }
}
