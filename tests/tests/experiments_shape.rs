//! Shape tests over the experiment harness (DESIGN.md §5 acceptance
//! criteria at miniature scale) — the same code paths the figure
//! binaries run, kept fast enough for CI.

use bench::report::{gini, log_log_slope};
use bench::{fig6, fig7, fig8};
use peertrack::{IndexingMode, PrefixScheme};

#[test]
fn e1_shape_group_sublinear_individual_linear() {
    let volumes = [50usize, 150, 300, 600];
    let mut ind = Vec::new();
    let mut grp = Vec::new();
    for &v in &volumes {
        let i = fig6::run_indexing(24, v, IndexingMode::Individual, true, 0, 42);
        let g = fig6::run_indexing(24, v, bench::experiment_group_mode(), true, 0, 42);
        ind.push((v as f64, i.messages as f64));
        grp.push((v as f64, g.messages as f64));
        assert!(g.messages <= i.messages, "group must not exceed individual at {v}");
    }
    let s_ind = log_log_slope(&ind);
    let s_grp = log_log_slope(&grp);
    assert!((0.9..1.1).contains(&s_ind), "individual slope {s_ind}");
    assert!(s_grp < s_ind, "group slope {s_grp} !< individual {s_ind}");
}

#[test]
fn e2_shape_gap_narrows_with_network_size() {
    let sizes = [8usize, 16, 32, 64];
    let mut ratios = Vec::new();
    for &n in &sizes {
        let i = fig6::run_indexing(n, 200, IndexingMode::Individual, true, 0, 42);
        let g = fig6::run_indexing(n, 200, bench::experiment_group_mode(), true, 0, 42);
        ratios.push(i.messages as f64 / g.messages as f64);
    }
    assert!(
        ratios.last().unwrap() < ratios.first().unwrap(),
        "gap must narrow: {ratios:?}"
    );
    assert!(ratios.iter().all(|r| *r >= 1.0), "group never costlier: {ratios:?}");
}

#[test]
fn e3_e4_shape_p2p_flat_centralized_growing() {
    let a = fig7::run_queries(16, 100, 25, 42);
    let b = fig7::run_queries(16, 400, 25, 42);
    let c = fig7::run_queries(32, 400, 25, 42);
    // P2P stays within a factor ~2 across a 4x volume and 2x size change.
    let p2ps = [a.p2p_ms, b.p2p_ms, c.p2p_ms];
    let spread = p2ps.iter().cloned().fold(f64::MIN, f64::max)
        / p2ps.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 2.0, "P2P spread {spread} over {p2ps:?}");
    // Centralized strictly grows with DB size.
    assert!(a.centralized_ms < b.centralized_ms);
    assert!(b.centralized_ms < c.centralized_ms);
}

#[test]
fn e5_shape_gini_ordering_and_delta() {
    let points = fig8::fig8a(bench::Scale::Quick);
    let g = |s: PrefixScheme| points.iter().find(|p| p.scheme == s).unwrap();
    assert!(g(PrefixScheme::Scheme3).gini < g(PrefixScheme::Scheme2).gini);
    assert!(g(PrefixScheme::Scheme2).gini < g(PrefixScheme::Scheme1).gini);
    assert!(g(PrefixScheme::Scheme2).delta_observed > 0.9);
    // Curves are valid Lorenz-style curves.
    for p in &points {
        assert_eq!(p.curve.first(), Some(&(0.0, 0.0)));
        let last = p.curve.last().unwrap();
        assert!((last.0 - 1.0).abs() < 1e-9 && (last.1 - 1.0).abs() < 1e-9);
        assert!(p.curve.windows(2).all(|w| w[0].1 <= w[1].1));
    }
}

#[test]
fn e6_shape_cost_ordering_across_sizes() {
    for &n in &[16usize, 32] {
        let mut costs = Vec::new();
        for &s in &fig8::SCHEMES {
            let pts = {
                // Reuse the figure path at a single size via run helper:
                // schemes differ only in Lp.
                use peertrack::{Builder, GroupConfig, IndexingMode};
                use workload::paper::PaperWorkload;
                let mode =
                    IndexingMode::Group(GroupConfig { scheme: s, ..GroupConfig::default() });
                let mut net = Builder::new().sites(n).seed(13).mode(mode).build();
                let wl = PaperWorkload {
                    sites: n,
                    objects_per_site: 150,
                    seed: 13,
                    ..PaperWorkload::default()
                };
                for ev in wl.generate() {
                    net.schedule_capture(ev.at, ev.site, ev.objects);
                }
                net.run_until_quiescent();
                net.metrics().indexing_messages()
            };
            costs.push(pts);
        }
        assert!(
            costs[0] <= costs[1] && costs[1] <= costs[2],
            "cost ordering violated at n={n}: {costs:?}"
        );
    }
}

#[test]
fn load_distribution_sums_to_indexed_objects() {
    // Cross-check: Fig. 8a's load metric equals the number of indexed
    // (object, latest-state) entries, which equals the object universe.
    use peertrack::Builder;
    let n = 16;
    let vol = 120;
    let mut net = Builder::new().sites(n).seed(21).mode(bench::experiment_group_mode()).build();
    let wl = workload::paper::PaperWorkload {
        sites: n,
        objects_per_site: vol,
        move_fraction: 0.0,
        seed: 21,
        ..workload::paper::PaperWorkload::default()
    };
    for ev in wl.generate() {
        net.schedule_capture(ev.at, ev.site, ev.objects);
    }
    net.run_until_quiescent();
    let total: u64 = net.load_distribution().iter().sum();
    assert_eq!(total, (n * vol) as u64);
    let gi = gini(&net.load_distribution());
    assert!(gi < 0.9, "load should not be pathologically concentrated: {gi}");
}
