//! WAN federation over real sockets (DESIGN.md §17).
//!
//! The loopback-cluster counterpart of the simulator's region-cut
//! audits: a 6-node cluster started over `geo::Topology::wan3` (two
//! sites per region) runs a cross-region schedule, is then partitioned
//! into three isolated regions — every node parks its cross-region
//! protocol frames instead of dropping them — keeps answering queries
//! about fully-propagated history exactly, and after the heal releases
//! the parked frames in order, reconverges, and is oracle-exact on
//! *everything*, movements made during the partition included, with
//! zero protocol anomalies on every node.
//!
//! The partition covers all three region pairs so that the mid-cut
//! movement is guaranteed to park at least one frame: the handoff's M2
//! (to the previous holder's region) and M3 (to the new holder's
//! region) cannot both be same-region with the serving gateway.

use daemon::LoopbackCluster;
use geo::Topology;
use moods::{MovementLog, ObjectId, SiteId};
use peertrack::config::GroupConfig;
use simnet::time::secs;
use simnet::SimTime;
use workload::CaptureEvent;

fn can_bind() -> bool {
    std::net::TcpListener::bind("127.0.0.1:0").is_ok()
}

macro_rules! require_sockets {
    () => {
        if !can_bind() {
            eprintln!("SKIP: sandbox forbids binding loopback sockets");
            return;
        }
    };
}

fn obj(n: u64) -> ObjectId {
    ObjectId::from_raw(&n.to_be_bytes())
}

/// Capture `o` at `site`/`t` in both the cluster schedule and the oracle.
fn hop(
    events: &mut Vec<CaptureEvent>,
    log: &mut MovementLog,
    o: ObjectId,
    site: u32,
    t: SimTime,
) {
    events.push(CaptureEvent { at: t, site: SiteId(site), objects: vec![o] });
    log.record(o, SiteId(site), t);
}

/// Every movement the oracle knows, re-asked at `origin` over sockets.
fn audit(cluster: &mut LoopbackCluster, log: &moods::MovementLog, origin: SiteId) {
    use moods::Trace;
    let objects: Vec<ObjectId> = log.objects().collect();
    for o in objects {
        let truth = log.trace(o, SimTime::ZERO, SimTime::INFINITY);
        let (path, _, complete) =
            cluster.trace(origin, o, SimTime::ZERO, SimTime::INFINITY).expect("cluster trace");
        assert!(complete, "trace of {o:?} flagged incomplete");
        assert_eq!(path, truth, "trace of {o:?} diverged from the oracle");
        for v in &truth {
            let (ans, _, complete) = cluster.locate(origin, o, v.arrived).expect("cluster locate");
            assert!(complete, "locate of {o:?} flagged incomplete");
            assert_eq!(ans, Some(v.site), "locate of {o:?} at {:?} wrong", v.arrived);
        }
    }
}

#[test]
fn partition_parks_frames_and_heals_to_oracle_exact() {
    require_sockets!();
    const SITES: usize = 6; // eu: 0,1  us: 2,3  ap: 4,5
    const SEED: u64 = 47;

    let topo = Topology::wan3(SITES);
    let mut cluster =
        LoopbackCluster::start_geo(SITES, SEED, GroupConfig::default(), 1, topo)
            .expect("geo cluster start");
    let mut log = MovementLog::new();

    // A cross-region supply chain per object, fully delivered pre-cut.
    let mut events: Vec<CaptureEvent> = Vec::new();
    for (n, path) in [
        (0u64, [0u32, 2, 4]), // eu -> us -> ap
        (1, [5, 3, 1]),       // ap -> us -> eu
        (2, [1, 0, 3]),       // eu -> eu -> us
    ] {
        let o = obj(n);
        for (i, s) in path.iter().enumerate() {
            hop(&mut events, &mut log, o, *s, secs(10 + n * 7 + i as u64 * 100));
        }
    }
    events.sort_by_key(|e| e.at);
    cluster.run_schedule(&events).expect("pre-cut schedule");
    audit(&mut cluster, &log, SiteId(0));

    // Partition the WAN into three islands.
    cluster.region_cut(0, 1).expect("cut eu-us");
    cluster.region_cut(0, 2).expect("cut eu-ap");
    cluster.region_cut(1, 2).expect("cut us-ap");

    // Fully-propagated history stays exact mid-cut from any region:
    // query RPCs are driver-plane (never parked), and every index entry
    // they read was delivered before the cut.
    for origin in [0u32, 2, 4] {
        audit(&mut cluster, &log, SiteId(origin));
    }

    // A handoff *during* the partition: object 0 moves ap -> us. The
    // serving gateway cannot be in both the old and the new holder's
    // region, so at least one of the update frames parks at a sender
    // until the heal. The harness still quiesces — parked frames are
    // excluded from the sent/received balance.
    let mut more: Vec<CaptureEvent> = Vec::new();
    hop(&mut more, &mut log, obj(0), 2, secs(5_000));
    cluster.run_schedule(&more).expect("mid-cut schedule");

    // Heal every pair: parked frames are released in park order and the
    // cluster drains to a converged state.
    cluster.region_heal(0, 1).expect("heal eu-us");
    cluster.region_heal(0, 2).expect("heal eu-ap");
    cluster.region_heal(1, 2).expect("heal us-ap");

    // Everything — the mid-cut movement included — is oracle-exact.
    for origin in [1u32, 3, 5] {
        audit(&mut cluster, &log, SiteId(origin));
    }

    // Clean protocol run on every node: nothing was dropped or
    // reordered by the partition, merely delayed.
    let reports = cluster.shutdown().expect("shutdown");
    assert_eq!(reports.len(), SITES);
    for r in &reports {
        assert_eq!(
            r.anomalies,
            peertrack::world::Anomalies::default(),
            "site {} protocol anomalies",
            r.site.0
        );
        assert_eq!(r.unsupported, 0, "site {} left the supported regime", r.site.0);
    }
}
