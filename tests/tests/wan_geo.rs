//! WAN topology properties in the simulator (DESIGN.md §17).
//!
//! Two contracts pin the geo plane down:
//!
//! * **Zero-cost when off.** A zero-latency single-region topology is
//!   *invisible*: the same seeded workload run with and without the
//!   plane produces identical virtual time, metrics, query answers and
//!   query costs. This is what keeps every pre-geo committed CSV
//!   byte-identical (`verify.sh` regenerates them with no topology
//!   configured; this test proves configuring a degenerate one would
//!   not have mattered either).
//!
//! * **Proximity pays.** Over `wan3`, region-clustered placement
//!   (`Placement::Proximity`) strictly reduces cross-region protocol
//!   bytes versus the flat ring at identical seeds, while both modes
//!   stay oracle-exact — the wan_sweep headline, held as a test at
//!   small scale so regressions fail fast without running the bench.

use geo::Topology;
use moods::{MovementLog, SiteId};
use peertrack::{Builder, GroupConfig, IndexingMode, Placement, TraceableNetwork};
use simnet::time::ms;
use simnet::{GeoConfig, SimTime};
use workload::paper::PaperWorkload;
use workload::wan::WanChain;

const SEED: u64 = 0x0E0_CAFE;

fn group_builder(sites: usize) -> Builder {
    Builder::new().sites(sites).seed(SEED).mode(IndexingMode::Group(GroupConfig {
        t_max: ms(200),
        n_max: 32,
        ..GroupConfig::default()
    }))
}

fn small_workload(sites: usize) -> PaperWorkload {
    PaperWorkload {
        sites,
        objects_per_site: 6,
        move_fraction: 0.5,
        trace_len: 4,
        grouped_movement: true,
        seed: SEED ^ 0x77,
        start: SimTime::from_secs(5),
        step: SimTime::from_secs(30),
    }
}

fn run(net: &mut TraceableNetwork, events: &[workload::CaptureEvent]) -> MovementLog {
    let mut log = MovementLog::new();
    workload::replay(net, &mut log, events);
    net.run_until_quiescent();
    log
}

#[test]
fn zero_latency_single_region_topology_is_invisible() {
    const SITES: usize = 16;
    let events = small_workload(SITES).generate();

    let mut plain = group_builder(SITES).build();
    let mut geoed = group_builder(SITES)
        .geo(GeoConfig::new(SEED ^ 0x6E0, Topology::single_region(SITES)))
        .build();

    let log = run(&mut plain, &events);
    let _ = run(&mut geoed, &events);

    assert_eq!(plain.now(), geoed.now(), "virtual clocks diverged");
    assert_eq!(plain.metrics(), geoed.metrics(), "metrics diverged");
    assert_eq!(plain.anomalies(), geoed.anomalies(), "anomalies diverged");
    assert_eq!(
        plain.load_distribution(),
        geoed.load_distribution(),
        "per-site load diverged"
    );

    // Same answers at the same cost, object by object — including the
    // geo-only accounting, which must stay zero on a degenerate plane.
    let now = plain.now();
    for o in log.objects() {
        let (a, sa) = plain.locate(SiteId(0), o, now);
        let (b, sb) = geoed.locate(SiteId(0), o, now);
        assert_eq!(a, b, "answers diverged for {o:?}");
        assert_eq!(sa, sb, "query stats diverged for {o:?}");
        assert_eq!(sb.wan, SimTime::ZERO, "degenerate plane charged WAN time");
    }

    // The plane exists but recorded no cross-region traffic.
    let stats = geoed.geo_stats().expect("geo plane configured");
    assert_eq!(stats.cross_bytes(), 0);
    assert_eq!(stats.cross_msgs(), 0);
    assert_eq!(geoed.parked_deliveries(), 0);
}

#[test]
fn proximity_placement_reduces_cross_region_bytes_oracle_exact() {
    const SITES: usize = 12;
    const OBJECTS: usize = 24;
    let topo = Topology::wan3(SITES);
    let chain = WanChain::generate(
        &topo,
        OBJECTS,
        2,
        SimTime::from_secs(1),
        ms(1_000),
        ms(25),
        SEED,
    );

    let mut cross = Vec::new();
    for placement in [Placement::Flat, Placement::Proximity] {
        let mut net = group_builder(SITES)
            .geo(GeoConfig::new(SEED ^ 0x6E0, topo.clone()))
            .placement(placement)
            .replicas(3)
            .build();
        let _ = run(&mut net, &chain.events);

        // Every route's final stop answers exactly, from every region.
        let now = net.now();
        for (k, route) in chain.routes.iter().enumerate() {
            let truth = *route.last().expect("route non-empty");
            let object = workload::epc_object((k % topo.regions()) as u32, k as u64);
            for origin in [0u32, 4, 8] {
                let (ans, stats) = net.locate(SiteId(origin), object, now);
                assert_eq!(ans, Some(truth), "{placement:?} locate of object {k} wrong");
                assert!(stats.complete, "{placement:?} locate of object {k} incomplete");
            }
        }
        cross.push(net.geo_stats().expect("geo plane").cross_bytes());
    }

    assert!(
        cross[1] < cross[0],
        "proximity placement must reduce cross-region bytes ({} vs {})",
        cross[1],
        cross[0]
    );
}
