//! Satellite: transport framing over *real* sockets — round-trips,
//! split reads/writes at every byte boundary, mid-frame connection
//! drops, and idempotent shutdown.
//!
//! These tests bind ephemeral loopback listeners; in sandboxes that
//! forbid binding they are skipped (same probe the verify.sh smoke
//! gate uses).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use transport::{read_frame, write_frame, Backoff, ConnCache, Server};

/// `true` when the sandbox lets us bind a loopback socket.
fn can_bind() -> bool {
    TcpListener::bind("127.0.0.1:0").is_ok()
}

macro_rules! require_sockets {
    () => {
        if !can_bind() {
            eprintln!("SKIP: sandbox forbids binding loopback sockets");
            return;
        }
    };
}

/// A connected loopback socket pair.
fn socket_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let client = TcpStream::connect(addr).expect("connect");
    let (server, _) = listener.accept().expect("accept");
    (client, server)
}

#[test]
fn roundtrip_across_real_socket_pair() {
    require_sockets!();
    let (mut a, mut b) = socket_pair();
    let payloads: Vec<Vec<u8>> = vec![
        b"".to_vec(),
        b"x".to_vec(),
        (0..=255u8).collect(),
        vec![0xCD; 70_000], // larger than one TCP segment
    ];
    let expected = payloads.clone();
    let writer = std::thread::spawn(move || {
        for p in &payloads {
            write_frame(&mut a, p).expect("write");
        }
        // a drops here: clean close on a frame boundary.
    });
    for want in &expected {
        let got = read_frame(&mut b).expect("read").expect("frame");
        assert_eq!(&got, want);
    }
    assert!(read_frame(&mut b).expect("clean eof").is_none());
    writer.join().unwrap();
}

#[test]
fn split_reads_at_every_byte_boundary() {
    require_sockets!();
    // Write the frame one byte at a time, flushing each byte, so the
    // reader observes every possible partial-read split of both the
    // prefix and the payload.
    let (mut a, mut b) = socket_pair();
    let payload = b"partial reads must reassemble".to_vec();
    let mut wire = Vec::new();
    write_frame(&mut wire, &payload).unwrap();
    let writer = std::thread::spawn(move || {
        for byte in wire {
            a.write_all(&[byte]).expect("write byte");
            a.flush().expect("flush");
        }
    });
    let got = read_frame(&mut b).expect("read").expect("frame");
    assert_eq!(got, payload);
    writer.join().unwrap();
}

#[test]
fn connection_drop_mid_frame_is_a_clean_error() {
    require_sockets!();
    let mut wire = Vec::new();
    write_frame(&mut wire, b"this frame will be cut short").unwrap();
    // Cut at every interior byte boundary: inside the prefix (1..4)
    // and inside the payload (4..len) — the reader must surface
    // UnexpectedEof, never panic, never return a truncated frame.
    for cut in 1..wire.len() {
        let (mut a, mut b) = socket_pair();
        a.write_all(&wire[..cut]).expect("partial write");
        a.flush().expect("flush");
        drop(a); // connection dies mid-frame
        let err = read_frame(&mut b).expect_err("mid-frame drop must error");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "cut at {cut}");
    }
}

#[test]
fn server_delivers_frames_and_replies_flow_back() {
    require_sockets!();
    let (tx, rx) = mpsc::channel();
    let mut server = Server::bind("127.0.0.1:0", tx).expect("bind");
    let addr = server.local_addr();

    let mut cache = ConnCache::new(Backoff::fast());
    cache.send(addr, b"ping-1").expect("send");
    let mut incoming = rx.recv().expect("frame delivered");
    assert_eq!(incoming.frame, b"ping-1");

    // Request/response on the same connection.
    incoming.reply.send(b"pong-1").expect("reply");
    let replied = std::thread::spawn(move || {
        // The cache reuses its cached stream, so the reply written
        // above is what request() reads back after its own send.
        cache.request(addr, b"ping-2").expect("request")
    });
    let second = rx.recv().expect("second frame");
    assert_eq!(second.frame, b"ping-2");
    // The reply to ping-1 is already in flight to the client; request()
    // reads it as its response (FIFO per connection).
    assert_eq!(replied.join().unwrap(), b"pong-1");

    server.shutdown();
}

#[test]
fn double_shutdown_is_idempotent() {
    require_sockets!();
    let (tx, rx) = mpsc::channel();
    let mut server = Server::bind("127.0.0.1:0", tx).expect("bind");
    let addr = server.local_addr();

    let mut cache = ConnCache::new(Backoff::fast());
    cache.send(addr, b"hello").expect("send");
    assert_eq!(rx.recv().expect("frame").frame, b"hello");

    server.shutdown();
    server.shutdown(); // second call must be a no-op
    drop(server); // Drop also calls shutdown — third time

    // The listener is really gone: a fresh dial must fail (give the
    // OS a beat to tear the socket down on slow machines).
    let mut attempts = 0;
    while TcpStream::connect(addr).is_ok() {
        attempts += 1;
        assert!(attempts < 50, "listener still accepting after shutdown");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

#[test]
fn conncache_reconnects_after_peer_restart() {
    require_sockets!();
    let (tx1, rx1) = mpsc::channel();
    let mut first = Server::bind("127.0.0.1:0", tx1).expect("bind");
    let addr = first.local_addr();

    let mut cache = ConnCache::new(Backoff::fast());
    cache.send(addr, b"before restart").expect("send");
    assert_eq!(rx1.recv().expect("frame").frame, b"before restart");

    first.shutdown();

    // Rebind the same port (free after shutdown) and send again: the
    // cache must notice the stale stream and redial under backoff.
    let (tx2, rx2) = mpsc::channel();
    let _second = Server::bind(&addr.to_string(), tx2).expect("rebind same port");
    cache.send(addr, b"after restart").expect("send after restart");
    assert_eq!(rx2.recv().expect("frame").frame, b"after restart");
}
