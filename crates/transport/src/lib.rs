//! Real-socket transport for the PeerTrack daemon.
//!
//! The simulator moves messages as Rust values through an event queue;
//! this crate is the first layer where they cross a process boundary
//! for real. It is deliberately tiny and std-only (hermetic policy —
//! no tokio, no mio): blocking `TcpStream`s, one reader thread per
//! accepted connection, and a 4-byte big-endian length prefix around
//! each [`peertrack::codec`]-encoded payload.
//!
//! Three pieces:
//!
//! * [`frame`] — `write_frame`/`read_frame` with a [`frame::MAX_FRAME_BYTES`]
//!   guard mirroring the codec's own `MAX_VECTOR_LEN` hardening: a
//!   hostile length prefix is rejected by arithmetic before any
//!   allocation is sized from it.
//! * [`conn`] — [`conn::ConnCache`], a per-peer cache of outbound
//!   connections with reconnect + exponential backoff
//!   ([`conn::Backoff`], the same `timeout · factor^(attempt−1)` shape
//!   as `peertrack::RetryConfig`), plus blocking request/response.
//! * [`server`] — [`server::Server`], a listener whose accepted
//!   connections feed decoded frames into an `mpsc` channel, with
//!   idempotent graceful shutdown that joins every thread it spawned.
//! * [`nio`] — nonblocking building blocks ([`nio::NbListener`],
//!   [`nio::NbConn`], [`nio::FrameAccum`]) for the daemon's
//!   readiness-driven event loop: many frames in flight per
//!   connection, explicit write buffering for backpressure.

pub mod conn;
pub mod frame;
pub mod nio;
pub mod server;

pub use conn::{Backoff, ConnCache};
pub use frame::{read_frame, write_frame, MAX_FRAME_BYTES};
pub use nio::{FrameAccum, NbConn, NbListener};
pub use server::{Incoming, Reply, Server};
