//! Outbound connection cache with reconnect + exponential backoff.
//!
//! Each daemon keeps one cached `TcpStream` per peer it talks to
//! (protocol messages are small and frequent; re-dialing per message
//! would dominate). A send that fails invalidates the cached stream
//! and redials under a [`Backoff`] schedule — the same
//! `timeout · factor^(attempt−1)` shape as `peertrack::RetryConfig`,
//! so the wall-clock retry plane and the simulated one are tuned with
//! the same vocabulary.

use crate::frame::{read_frame, write_frame};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Reconnect schedule: attempt `k` (1-based) is preceded by a wait of
/// `base · factor^(k−2)` (no wait before the first attempt). Mirrors
/// `RetryConfig { timeout, backoff, max_attempts }`.
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    /// Wait before the second attempt.
    pub base: Duration,
    /// Wait multiplier per successive attempt (1 = constant).
    pub factor: u32,
    /// Total dial attempts before giving up.
    pub max_attempts: u32,
}

impl Default for Backoff {
    fn default() -> Backoff {
        // RetryConfig's defaults: 200 ms timeout, doubling, 6 attempts.
        Backoff { base: Duration::from_millis(200), factor: 2, max_attempts: 6 }
    }
}

impl Backoff {
    /// A schedule for loopback tests: quick, few attempts.
    pub fn fast() -> Backoff {
        Backoff { base: Duration::from_millis(10), factor: 2, max_attempts: 3 }
    }

    /// Wait before attempt `attempt` (1-based; zero before the first).
    /// Total: the exponent saturates at zero so an out-of-contract
    /// `attempt` of 0 or 1 yields `Duration::ZERO` / `base` instead of
    /// underflowing (panic in debug, a wrapped 4-billion-power schedule
    /// in release).
    pub fn delay_before(&self, attempt: u32) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        let factor = self.factor.saturating_pow(attempt.saturating_sub(2));
        self.base.saturating_mul(factor)
    }
}

/// Per-peer cache of outbound framed connections.
pub struct ConnCache {
    conns: HashMap<SocketAddr, TcpStream>,
    backoff: Backoff,
    /// Consecutive *failed dials* per peer (each dial is a full backoff
    /// schedule). Reset to zero by the next successful dial, so a peer
    /// that restarts — even on the same address — starts with a clean
    /// slate instead of inheriting its predecessor's failure history.
    failure_streaks: HashMap<SocketAddr, u32>,
    /// Injected per-peer dial latency (WAN topology emulation for the
    /// loopback harness). Applied once per successful-or-not dial, on
    /// top of the backoff schedule; survives `invalidate`/`close_all`,
    /// so a reconnect after a region heal pays the topology's delay
    /// again rather than defaulting to zero. Only honored in test
    /// builds — release daemons ignore it entirely.
    dial_delays: HashMap<SocketAddr, Duration>,
}

impl ConnCache {
    /// An empty cache using the given reconnect schedule.
    pub fn new(backoff: Backoff) -> ConnCache {
        ConnCache {
            conns: HashMap::new(),
            backoff,
            failure_streaks: HashMap::new(),
            dial_delays: HashMap::new(),
        }
    }

    /// How many consecutive dials to `addr` have exhausted their backoff
    /// schedule without connecting. Zero after any successful dial.
    pub fn failure_streak(&self, addr: SocketAddr) -> u32 {
        self.failure_streaks.get(&addr).copied().unwrap_or(0)
    }

    /// Inject `delay` before every future dial of `addr` (test builds
    /// only — see the field docs). `Duration::ZERO` removes the entry.
    pub fn set_dial_delay(&mut self, addr: SocketAddr, delay: Duration) {
        if delay.is_zero() {
            self.dial_delays.remove(&addr);
        } else {
            self.dial_delays.insert(addr, delay);
        }
    }

    /// The injected dial delay for `addr` (zero when none).
    pub fn dial_delay(&self, addr: SocketAddr) -> Duration {
        self.dial_delays.get(&addr).copied().unwrap_or(Duration::ZERO)
    }

    /// The cached (or freshly dialed) stream for `addr`.
    fn stream(&mut self, addr: SocketAddr) -> io::Result<&mut TcpStream> {
        if !self.conns.contains_key(&addr) {
            let stream = self.dial(addr)?;
            self.conns.insert(addr, stream);
        }
        Ok(self.conns.get_mut(&addr).expect("just inserted"))
    }

    /// Dial `addr` under the backoff schedule, updating its streak.
    fn dial(&mut self, addr: SocketAddr) -> io::Result<TcpStream> {
        #[cfg(any(test, debug_assertions))]
        if let Some(&delay) = self.dial_delays.get(&addr) {
            std::thread::sleep(delay);
        }
        let mut last_err = None;
        for attempt in 1..=self.backoff.max_attempts {
            std::thread::sleep(self.backoff.delay_before(attempt));
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    self.failure_streaks.remove(&addr);
                    return Ok(stream);
                }
                Err(e) => last_err = Some(e),
            }
        }
        *self.failure_streaks.entry(addr).or_insert(0) += 1;
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::Other, "zero dial attempts configured")
        }))
    }

    /// `true` when a cached stream's peer has hung up. A TCP write
    /// after the peer closed often *succeeds* locally (the RST arrives
    /// later), silently losing the frame — so staleness is probed with
    /// a non-blocking `peek` (EOF ⇒ stale, `WouldBlock` ⇒ alive)
    /// instead of being inferred from a write error. `peek` never
    /// consumes, so a buffered RPC reply is left intact.
    fn is_stale(stream: &TcpStream) -> bool {
        if stream.set_nonblocking(true).is_err() {
            return true;
        }
        let mut probe = [0u8; 1];
        let result = stream.peek(&mut probe);
        let restored = stream.set_nonblocking(false).is_ok();
        let alive = matches!(result, Ok(n) if n > 0)
            || matches!(&result, Err(e) if e.kind() == io::ErrorKind::WouldBlock);
        !(alive && restored)
    }

    /// Send one framed payload to `addr`, reconnecting if the cached
    /// stream has gone stale (peer restarted, half-closed TCP).
    pub fn send(&mut self, addr: SocketAddr, payload: &[u8]) -> io::Result<()> {
        if let Some(stream) = self.conns.get_mut(&addr) {
            if Self::is_stale(stream) {
                self.conns.remove(&addr);
            }
        }
        if let Ok(stream) = self.stream(addr) {
            if write_frame(stream, payload).is_ok() {
                return Ok(());
            }
        }
        // Stale or unreachable: drop the cached stream and redial once
        // (the dial itself already retries under the backoff schedule).
        self.conns.remove(&addr);
        let stream = self.stream(addr)?;
        write_frame(stream, payload)
    }

    /// Blocking request/response: send one frame, then read one frame
    /// back *on the same stream*. The peer must reply in arrival order
    /// on this connection (the daemon's engine thread guarantees it).
    /// A peer that closes instead of replying is `ConnectionAborted`.
    pub fn request(&mut self, addr: SocketAddr, payload: &[u8]) -> io::Result<Vec<u8>> {
        self.send(addr, payload)?;
        let stream = self.stream(addr)?;
        match read_frame(stream)? {
            Some(reply) => Ok(reply),
            None => {
                self.conns.remove(&addr);
                Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "peer closed before replying",
                ))
            }
        }
    }

    /// Take the cached stream for `addr` out of the cache, dialing if
    /// needed. The caller owns it until [`ConnCache::checkin`] — used
    /// by the daemon's event loop to read an RPC reply while the cache
    /// itself stays borrowable for concurrent sends to other peers.
    pub fn checkout(&mut self, addr: SocketAddr) -> io::Result<TcpStream> {
        if let Some(stream) = self.conns.get_mut(&addr) {
            if Self::is_stale(stream) {
                self.conns.remove(&addr);
            }
        }
        if let Some(stream) = self.conns.remove(&addr) {
            return Ok(stream);
        }
        self.dial(addr)
    }

    /// Return a checked-out stream to the cache for reuse. If a send
    /// during the checkout window already dialed a fresh stream to the
    /// same peer, the fresh one is kept and the returned one closed —
    /// every frame is self-contained, so either connection serves.
    pub fn checkin(&mut self, addr: SocketAddr, stream: TcpStream) {
        if self.conns.contains_key(&addr) {
            stream.shutdown(std::net::Shutdown::Both).ok();
        } else {
            self.conns.insert(addr, stream);
        }
    }

    /// Drop the cached stream for `addr` (after an error on a
    /// checked-out stream, to force a redial next time).
    pub fn invalidate(&mut self, addr: SocketAddr) {
        if let Some(stream) = self.conns.remove(&addr) {
            stream.shutdown(std::net::Shutdown::Both).ok();
        }
    }

    /// Drop every cached connection (half-close our side). Idempotent.
    pub fn close_all(&mut self) {
        for (_, stream) in self.conns.drain() {
            stream.shutdown(std::net::Shutdown::Both).ok();
        }
    }
}

impl Drop for ConnCache {
    fn drop(&mut self) {
        self.close_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_mirrors_retry_config_shape() {
        let b = Backoff { base: Duration::from_millis(100), factor: 2, max_attempts: 4 };
        assert_eq!(b.delay_before(1), Duration::ZERO);
        assert_eq!(b.delay_before(2), Duration::from_millis(100));
        assert_eq!(b.delay_before(3), Duration::from_millis(200));
        assert_eq!(b.delay_before(4), Duration::from_millis(400));
    }

    /// Regression: `delay_before` takes `attempt - 2` as an exponent.
    /// Attempts 0 and 1 must hit the zero-delay fast path (never the
    /// subtraction), and attempt 2 must be exactly `base` (exponent 0)
    /// — the three smallest inputs bracket the underflow site.
    #[test]
    fn backoff_small_attempts_never_underflow() {
        let b = Backoff { base: Duration::from_millis(100), factor: 2, max_attempts: 4 };
        assert_eq!(b.delay_before(0), Duration::ZERO);
        assert_eq!(b.delay_before(1), Duration::ZERO);
        assert_eq!(b.delay_before(2), Duration::from_millis(100));
    }

    #[test]
    fn backoff_factor_one_is_constant() {
        let b = Backoff { base: Duration::from_millis(50), factor: 1, max_attempts: 8 };
        assert_eq!(b.delay_before(2), b.delay_before(7));
    }

    /// A dial delay set for a peer survives invalidation and close_all:
    /// a reconnect after a region heal must pay the topology's delay
    /// again, not default back to zero.
    #[test]
    fn dial_delay_survives_invalidation_and_applies_on_redial() {
        use std::net::TcpListener;
        use std::time::Instant;

        let listener = match TcpListener::bind("127.0.0.1:0") {
            Ok(l) => l,
            Err(_) => {
                eprintln!("skipping: loopback sockets unavailable here");
                return;
            }
        };
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut got = Vec::new();
            // First connection carries two frames (the second send rides
            // the cached stream); the post-teardown redial is a second
            // connection with one more.
            let (mut s, _) = listener.accept().expect("accept");
            got.push(crate::frame::read_frame(&mut s).expect("read frame"));
            got.push(crate::frame::read_frame(&mut s).expect("read frame"));
            let (mut s, _) = listener.accept().expect("accept redial");
            got.push(crate::frame::read_frame(&mut s).expect("read frame"));
            got
        });

        let delay = Duration::from_millis(60);
        let mut cache = ConnCache::new(Backoff::fast());
        cache.set_dial_delay(addr, delay);
        assert_eq!(cache.dial_delay(addr), delay);

        let t0 = Instant::now();
        cache.send(addr, b"first").expect("send over delayed dial");
        assert!(t0.elapsed() >= delay, "first dial pays the injected delay");

        // A cached stream pays nothing: the delay models link setup.
        let t1 = Instant::now();
        cache.send(addr, b"second").expect("send over cached stream");
        assert!(t1.elapsed() < delay, "cached sends skip the dial delay");

        // Invalidate (region cut tearing connections down) — the delay
        // table is untouched and the redial pays again.
        cache.invalidate(addr);
        cache.close_all();
        assert_eq!(cache.dial_delay(addr), delay, "delay survives teardown");

        let t2 = Instant::now();
        cache.send(addr, b"third").expect("send over redial");
        assert!(t2.elapsed() >= delay, "the redial pays the delay again");

        cache.set_dial_delay(addr, Duration::ZERO);
        assert_eq!(cache.dial_delay(addr), Duration::ZERO, "zero clears the entry");

        drop(cache);
        let frames = server.join().unwrap();
        assert_eq!(frames[0].as_deref(), Some(&b"first"[..]));
        assert_eq!(frames[1].as_deref(), Some(&b"second"[..]));
        assert_eq!(frames[2].as_deref(), Some(&b"third"[..]));
    }

    /// A peer that comes back (same address, new process — the restart
    /// path) must clear its dial-failure streak, or health heuristics
    /// built on the streak would keep treating the reborn peer as dead.
    #[test]
    fn failure_streak_resets_after_successful_reconnect() {
        use std::net::TcpListener;

        // Reserve a loopback port, then free it so dials fail.
        let addr = match TcpListener::bind("127.0.0.1:0") {
            Ok(l) => l.local_addr().unwrap(),
            Err(_) => {
                eprintln!("skipping: loopback sockets unavailable here");
                return;
            }
        };

        let mut cache = ConnCache::new(Backoff {
            base: Duration::from_millis(1),
            factor: 1,
            max_attempts: 2,
        });
        assert_eq!(cache.failure_streak(addr), 0);
        assert!(cache.send(addr, b"down").is_err());
        // send() dials twice (initial + the redial-once path).
        let streak = cache.failure_streak(addr);
        assert!(streak > 0, "failed dials must be counted");
        assert!(cache.send(addr, b"still down").is_err());
        assert!(cache.failure_streak(addr) > streak, "streak must grow while down");

        // The peer returns on the same address.
        let listener = TcpListener::bind(addr).expect("rebind reserved port");
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            crate::frame::read_frame(&mut s).expect("read frame")
        });
        cache.send(addr, b"hello again").expect("peer is back");
        assert_eq!(cache.failure_streak(addr), 0, "success clears the streak");
        assert_eq!(server.join().unwrap().as_deref(), Some(&b"hello again"[..]));
    }
}
