//! Nonblocking I/O building blocks for the daemon's event loop.
//!
//! The blocking [`crate::server::Server`] spawns one reader thread per
//! accepted connection; at load that model caps pipelining (one frame
//! in flight per thread wake) and makes fairness an accident of the
//! scheduler. This module is the readiness-driven alternative, std-only
//! per the hermetic policy (no mio/epoll binding — `set_nonblocking`
//! plus a poll loop):
//!
//! * [`FrameAccum`] — an incremental decoder for the length-prefixed
//!   framing of [`crate::frame`]: bytes go in at *any* split boundary,
//!   whole frames come out. The [`crate::frame::MAX_FRAME_BYTES`] cap
//!   is enforced on the prefix before any buffer is sized from it,
//!   exactly like the blocking reader.
//! * [`NbListener`] — a nonblocking acceptor: `accept_ready` drains
//!   every pending connection and returns instead of blocking.
//! * [`NbConn`] — one nonblocking connection with explicit read and
//!   write buffering: `read_ready` pulls whatever bytes the kernel has
//!   (feeding the accumulator), `queue` stages outgoing bytes, and
//!   `try_flush` writes as much as the socket accepts. A peer that
//!   stops reading therefore backs frames up in `queued_bytes`, which
//!   the event loop bounds explicitly (backpressure parking) instead
//!   of blocking a writer thread.

use crate::frame::MAX_FRAME_BYTES;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Read chunk size: one `read(2)` per readiness check pulls at most
/// this many bytes, so a single firehose connection cannot starve the
/// rest of the loop within one wakeup.
const READ_CHUNK: usize = 64 * 1024;

/// Incremental frame decoder: push raw stream bytes at arbitrary
/// split boundaries, pop whole frames.
#[derive(Default)]
pub struct FrameAccum {
    buf: Vec<u8>,
    /// Bytes before `start` are already consumed (compacted lazily so
    /// one-byte-per-wakeup peers do not trigger O(n²) copying).
    start: usize,
}

impl FrameAccum {
    /// An empty accumulator.
    pub fn new() -> FrameAccum {
        FrameAccum::default()
    }

    /// Feed stream bytes in (any amount, any boundary).
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as a frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pop the next whole frame, if one has fully arrived.
    ///
    /// Returns `Err(InvalidData)` when the buffered prefix claims more
    /// than [`MAX_FRAME_BYTES`] — the connection is protocol-violating
    /// or hostile and must be dropped; the check runs on the prefix
    /// arithmetic alone, before any allocation is sized from it.
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let p = self.start;
        let len = u32::from_be_bytes(self.buf[p..p + 4].try_into().unwrap()) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame prefix claims {len} bytes (limit {MAX_FRAME_BYTES})"),
            ));
        }
        if avail < 4 + len {
            self.compact();
            return Ok(None);
        }
        let frame = self.buf[p + 4..p + 4 + len].to_vec();
        self.start += 4 + len;
        self.compact();
        Ok(Some(frame))
    }

    /// Drop consumed bytes once they dominate the buffer (amortized
    /// O(1) per byte).
    fn compact(&mut self) {
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// A nonblocking listener: `accept_ready` never blocks.
pub struct NbListener {
    listener: TcpListener,
    local_addr: SocketAddr,
}

impl NbListener {
    /// Bind `addr` (port 0 for ephemeral) in nonblocking mode.
    pub fn bind(addr: &str) -> io::Result<NbListener> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok(NbListener { listener, local_addr })
    }

    /// The bound address (ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Accept every connection the kernel has pending, without
    /// blocking. Transient per-connection errors are skipped.
    pub fn accept_ready(&self) -> Vec<(TcpStream, SocketAddr)> {
        let mut out = Vec::new();
        loop {
            match self.listener.accept() {
                Ok(pair) => out.push(pair),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        out
    }
}

/// One nonblocking connection with explicit read/write buffering.
pub struct NbConn {
    stream: TcpStream,
    peer: SocketAddr,
    rbuf: FrameAccum,
    /// Outgoing bytes the kernel has not yet accepted, in write order.
    wbuf: VecDeque<u8>,
    dead: bool,
}

impl NbConn {
    /// Adopt an accepted stream: nonblocking + NODELAY.
    pub fn new(stream: TcpStream, peer: SocketAddr) -> io::Result<NbConn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        Ok(NbConn { stream, peer, rbuf: FrameAccum::new(), wbuf: VecDeque::new(), dead: false })
    }

    /// The remote address (the peer's ephemeral client port).
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// True once the peer closed, errored, or violated framing. A dead
    /// connection accepts no further reads or writes; buffered frames
    /// already decoded remain poppable.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Read whatever the kernel has (up to one [`READ_CHUNK`]) into
    /// the frame accumulator. Returns `true` if any bytes arrived.
    pub fn read_ready(&mut self) -> bool {
        if self.dead {
            return false;
        }
        let mut chunk = [0u8; 4096];
        let mut total = 0;
        while total < READ_CHUNK {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true; // EOF: peer closed
                    break;
                }
                Ok(n) => {
                    self.rbuf.push(&chunk[..n]);
                    total += n;
                    if n < chunk.len() {
                        break; // drained the kernel buffer
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        total > 0
    }

    /// Pop the next fully-received frame. A framing violation (hostile
    /// length prefix) kills the connection.
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        match self.rbuf.next_frame() {
            Ok(f) => f,
            Err(_) => {
                self.dead = true;
                None
            }
        }
    }

    /// Stage one framed payload for writing (prefix + payload).
    pub fn queue_frame(&mut self, payload: &[u8]) {
        if self.dead {
            return;
        }
        debug_assert!(payload.len() <= MAX_FRAME_BYTES);
        self.wbuf.extend(&(payload.len() as u32).to_be_bytes());
        self.wbuf.extend(payload);
    }

    /// Bytes staged but not yet accepted by the kernel — the quantity
    /// the event loop's backpressure bound watches.
    pub fn queued_bytes(&self) -> usize {
        self.wbuf.len()
    }

    /// Write as much of the staged bytes as the socket accepts right
    /// now. Returns `true` when the buffer fully drained.
    pub fn try_flush(&mut self) -> bool {
        if self.dead {
            self.wbuf.clear();
            return true;
        }
        while !self.wbuf.is_empty() {
            let (head, _) = self.wbuf.as_slices();
            match self.stream.write(head) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.wbuf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        self.wbuf.is_empty()
    }

    /// Half-close our side (used at orderly engine shutdown).
    pub fn close(&mut self) {
        self.stream.shutdown(std::net::Shutdown::Both).ok();
        self.dead = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::write_frame;

    /// Every split offset of a frame (and of a pair of frames) must
    /// decode identically to the unsplit stream — the frame-boundary
    /// regression the slow-loris tests rely on.
    #[test]
    fn frame_accum_handles_every_split_offset() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first frame payload").unwrap();
        write_frame(&mut wire, &[0xC3; 97]).unwrap();
        for cut in 0..=wire.len() {
            let mut acc = FrameAccum::new();
            acc.push(&wire[..cut]);
            let mut got = Vec::new();
            while let Some(f) = acc.next_frame().unwrap() {
                got.push(f);
            }
            acc.push(&wire[cut..]);
            while let Some(f) = acc.next_frame().unwrap() {
                got.push(f);
            }
            assert_eq!(got.len(), 2, "cut at {cut}");
            assert_eq!(got[0], b"first frame payload", "cut at {cut}");
            assert_eq!(got[1], vec![0xC3; 97], "cut at {cut}");
        }
    }

    /// One byte per push — the slow-loris delivery pattern.
    #[test]
    fn frame_accum_one_byte_at_a_time() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"slow").unwrap();
        let mut acc = FrameAccum::new();
        for (i, b) in wire.iter().enumerate() {
            assert!(acc.next_frame().unwrap().is_none() || i == wire.len());
            acc.push(&[*b]);
        }
        assert_eq!(acc.next_frame().unwrap().unwrap(), b"slow");
        assert!(acc.next_frame().unwrap().is_none());
    }

    #[test]
    fn frame_accum_many_frames_in_one_push() {
        let mut wire = Vec::new();
        for i in 0..50u8 {
            write_frame(&mut wire, &[i; 3]).unwrap();
        }
        let mut acc = FrameAccum::new();
        acc.push(&wire);
        for i in 0..50u8 {
            assert_eq!(acc.next_frame().unwrap().unwrap(), [i; 3]);
        }
        assert!(acc.next_frame().unwrap().is_none());
    }

    #[test]
    fn frame_accum_rejects_hostile_prefix_before_allocation() {
        let mut acc = FrameAccum::new();
        acc.push(&u32::MAX.to_be_bytes());
        let err = acc.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn frame_accum_empty_frames_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"x").unwrap();
        let mut acc = FrameAccum::new();
        acc.push(&wire);
        assert_eq!(acc.next_frame().unwrap().unwrap(), b"");
        assert_eq!(acc.next_frame().unwrap().unwrap(), b"x");
    }

    /// Compaction must never lose or reorder bytes under a workload of
    /// many small frames trickled in.
    #[test]
    fn frame_accum_compaction_preserves_stream() {
        let mut wire = Vec::new();
        for i in 0..2000u32 {
            write_frame(&mut wire, &i.to_be_bytes()).unwrap();
        }
        let mut acc = FrameAccum::new();
        let mut next = 0u32;
        for chunk in wire.chunks(7) {
            acc.push(chunk);
            while let Some(f) = acc.next_frame().unwrap() {
                assert_eq!(f, next.to_be_bytes());
                next += 1;
            }
        }
        assert_eq!(next, 2000);
    }
}
