//! Length-prefixed framing over a byte stream.
//!
//! Layout: a 4-byte big-endian length `n`, then exactly `n` payload
//! bytes. TCP gives us an ordered byte stream but no message
//! boundaries; the prefix restores them. The codec's own header and
//! vector-length hardening sits *inside* the payload — this layer only
//! guarantees that whole payloads come out exactly as they went in, or
//! that the caller gets a clean error.

use std::io::{self, Read, Write};

/// Hard cap on a single frame's payload. A peer announcing more than
/// this (the `u32` prefix can claim up to 4 GiB) is protocol-violating
/// or hostile; the frame is rejected *before* any buffer is sized from
/// the claim. Generous relative to real traffic: the largest protocol
/// message is a full-window `GroupIndex` (`n_max ≤` a few thousand
/// observations × 28 B ≈ 100 KiB).
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Write one frame: length prefix, payload, flush.
///
/// Returns `InvalidInput` if the payload exceeds [`MAX_FRAME_BYTES`]
/// (the symmetric guard — a conforming sender can never produce a
/// frame a conforming reader must reject).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_BYTES", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame.
///
/// * `Ok(Some(payload))` — a whole frame arrived.
/// * `Ok(None)` — the stream ended *cleanly on a frame boundary*
///   (EOF before the first prefix byte): the peer closed normally.
/// * `Err(UnexpectedEof)` — the stream died mid-frame (inside the
///   prefix or the payload): a dropped connection, surfaced as an
///   error rather than a silently truncated message.
/// * `Err(InvalidData)` — the prefix claims more than
///   [`MAX_FRAME_BYTES`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    if !read_exact_or_clean_eof(r, &mut prefix)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame prefix claims {len} bytes (limit {MAX_FRAME_BYTES})"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Like `read_exact`, but distinguishes EOF *before the first byte*
/// (clean close, returns `Ok(false)`) from EOF after a partial read
/// (mid-frame drop, returns `UnexpectedEof`). Retries on `Interrupted`
/// like `read_exact` does.
fn read_exact_or_clean_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_in_memory() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[0xAB; 1000]).unwrap();
        let mut r = Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![0xAB; 1000]);
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversize_claim_rejected_before_allocation() {
        let mut r = Cursor::new(u32::MAX.to_be_bytes().to_vec());
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversize_payload_refused_on_write() {
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &vec![0u8; MAX_FRAME_BYTES + 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(sink.is_empty(), "nothing may reach the wire");
    }

    #[test]
    fn eof_mid_prefix_and_mid_payload_are_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        for cut in 1..wire.len() {
            let mut r = Cursor::new(wire[..cut].to_vec());
            let err = read_frame(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }
}
