//! Frame server: a listener whose accepted connections feed whole
//! frames into an `mpsc` channel.
//!
//! Thread model (documented in DESIGN.md §11): one accept thread per
//! server, one reader thread per accepted connection. Readers decode
//! frames and push [`Incoming`] events — the frame plus a [`Reply`]
//! handle cloned from the connection — so a single consumer thread
//! (the daemon's engine) owns all protocol state and writes replies
//! back over the originating connection without locking.
//!
//! Shutdown is explicit, idempotent and complete: it closes the
//! listener (a self-connect unblocks `accept`), half-closes every live
//! connection (unblocking the readers), and joins every thread the
//! server spawned — no leaked threads or sockets, asserted by the
//! loopback harness.

use crate::frame::{read_frame, write_frame};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One received frame, with a handle for replying on its connection.
pub struct Incoming {
    /// The address of the sending peer (its ephemeral client port, not
    /// its listener — peer identity rides inside the payload).
    pub peer: SocketAddr,
    /// The frame payload.
    pub frame: Vec<u8>,
    /// Write-half of the originating connection.
    pub reply: Reply,
}

/// Write-half of an accepted connection, for request/response frames.
pub struct Reply {
    stream: TcpStream,
}

impl Reply {
    /// Send one framed reply back over the originating connection.
    pub fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, payload)
    }
}

/// A listening frame server. Dropping it shuts it down.
pub struct Server {
    local_addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    shared: Arc<SharedState>,
}

/// State shared with the accept thread: live connections (for shutdown
/// to half-close) and reader join handles.
#[derive(Default)]
struct SharedState {
    conns: Mutex<Vec<TcpStream>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port; see
    /// [`local_addr`](Server::local_addr)) and start accepting.
    /// Received frames flow into `tx`; the server stops pushing when
    /// the receiver hangs up.
    pub fn bind(addr: &str, tx: Sender<Incoming>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(SharedState::default());

        let accept_handle = {
            let stopping = Arc::clone(&stopping);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, tx, stopping, shared))
        };

        Ok(Server { local_addr, stopping, accept_handle: Some(accept_handle), shared })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, unblock and join every thread. Idempotent:
    /// the second and later calls are no-ops.
    pub fn shutdown(&mut self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock accept() with a throwaway self-connection; the accept
        // loop sees the flag and exits without serving it.
        TcpStream::connect(self.local_addr).ok();
        if let Some(h) = self.accept_handle.take() {
            h.join().ok();
        }
        // No new readers can appear now; unblock and join the rest.
        for conn in self.shared.conns.lock().expect("conns lock").drain(..) {
            conn.shutdown(std::net::Shutdown::Both).ok();
        }
        let readers: Vec<_> =
            self.shared.readers.lock().expect("readers lock").drain(..).collect();
        for h in readers {
            h.join().ok();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: Sender<Incoming>,
    stopping: Arc<AtomicBool>,
    shared: Arc<SharedState>,
) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) if stopping.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        };
        if stopping.load(Ordering::SeqCst) {
            break;
        }
        stream.set_nodelay(true).ok();
        let Ok(for_shutdown) = stream.try_clone() else { continue };
        shared.conns.lock().expect("conns lock").push(for_shutdown);
        let tx = tx.clone();
        let handle = std::thread::spawn(move || reader_loop(stream, peer, tx));
        shared.readers.lock().expect("readers lock").push(handle);
    }
}

fn reader_loop(mut stream: TcpStream, peer: SocketAddr, tx: Sender<Incoming>) {
    loop {
        match read_frame(&mut stream) {
            Ok(Some(frame)) => {
                let Ok(reply_stream) = stream.try_clone() else { break };
                let incoming = Incoming { peer, frame, reply: Reply { stream: reply_stream } };
                if tx.send(incoming).is_err() {
                    break; // consumer gone: stop reading
                }
            }
            // Clean close, mid-frame drop, or our own shutdown: the
            // connection is done either way. Protocol-level recovery
            // (redial, retry) belongs to the sending side's ConnCache.
            Ok(None) | Err(_) => break,
        }
    }
}
