//! MOODS — a Model for mOving Objects in Discrete Space (paper §II).
//!
//! The paper abstracts traceability applications into *traceable
//! networks* (§II-A): **nodes** (logical partners — a distribution
//! centre, a retail store) govern **receptors** (RFID readers at fixed
//! locations) that capture **objects** (tagged goods). Physical object
//! flow becomes digital *information flow* at the receptors.
//!
//! On top of that sits the MOODS model (§II-B): time is continuous, space
//! is the finite, dynamic node set `N`, and two functions define all
//! queries —
//!
//! ```text
//! L(o, t)              : O × T     → N ∪ {nil}     (Eq. 1, locate)
//! TR(o, t_start, t_end): O × T × T → P             (Eq. 2, trace)
//! ```
//!
//! where `P` is the domain of paths: node lists sorted by visit time
//! (Eq. 3).
//!
//! This crate defines the vocabulary types, the [`Locate`]/[`Trace`]
//! traits every tracking backend implements (PeerTrack and the
//! centralized baseline both do), and [`MovementLog`] — an oracle that
//! answers `L`/`TR` from a complete, centrally recorded movement history.
//! The oracle is the *semantic reference*: property tests assert that the
//! distributed IOP reconstruction agrees with it exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod containment;
pub mod log;
pub mod model;

pub use analytics::{dwell_times, journey_time, mean_dwell_by_site, path_stats, Dwell, PathStats};
pub use containment::{resolve_locate, resolve_trace, ContainmentLog};
pub use log::MovementLog;
pub use model::{Locate, ObjectId, Observation, Path, ReceptorId, SiteId, Trace, Visit};
