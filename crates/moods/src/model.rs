//! Vocabulary types and the `L`/`TR` traits.

use ids::Id;
use simnet::SimTime;
use std::fmt;

/// A logical traceable-network node (`n ∈ N`): one organization's
/// repository — a warehouse, a distribution centre, a retail store.
///
/// Sites are dense application-level indices; the binding to a DHT/ring
/// identity is owned by the tracking backend.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A receptor (RFID reader) at a fixed location within a site, e.g. "the
/// reader at dock door 3".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ReceptorId {
    /// The governing site.
    pub site: SiteId,
    /// Reader number within the site.
    pub reader: u16,
}

/// An object's identity in the system: the SHA-1 hash of its raw id
/// (EPC), per §III footnote 1. Newtype over [`Id`] so object keys and
/// ring/node ids cannot be confused in signatures.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub Id);

impl ObjectId {
    /// Hash a raw id (EPC binary encoding, URI, etc.) into an object id.
    pub fn from_raw(raw: &[u8]) -> ObjectId {
        ObjectId(Id::hash(raw))
    }

    /// The underlying ring identifier.
    pub fn id(&self) -> Id {
        self.0
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o:{}", &self.0.to_hex()[..8])
    }
}

/// One capture: a receptor at `site` read `object` at `time`.
///
/// Receptor data is assumed cleansed (§II-A: "we assume in this paper
/// that the data captured by receptors is already cleansed").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Observation {
    /// The captured object.
    pub object: ObjectId,
    /// The receptor that read it.
    pub receptor: ReceptorId,
    /// Capture time.
    pub time: SimTime,
}

impl Observation {
    /// The site where the capture happened.
    pub fn site(&self) -> SiteId {
        self.receptor.site
    }
}

/// One stay at a site: `[arrived, departed)` where `departed` is the
/// arrival at the next site (`None` while the object is still there).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Visit {
    /// The site visited.
    pub site: SiteId,
    /// Arrival (capture) time.
    pub arrived: SimTime,
    /// Arrival time at the *next* site, if the object has moved on.
    pub departed: Option<SimTime>,
}

impl Visit {
    /// Does this stay overlap the closed interval `[t0, t1]`?
    pub fn overlaps(&self, t0: SimTime, t1: SimTime) -> bool {
        let ends = self.departed.unwrap_or(SimTime::INFINITY);
        self.arrived <= t1 && ends > t0
    }
}

/// A path `P`: visits sorted by arrival time (Eq. 3's "sorted list of
/// nodes ... by the order of the nodes visited").
pub type Path = Vec<Visit>;

/// The locating function `L(o, t)` (Eq. 1).
///
/// Semantics: an object is *at* the site of its most recent capture at or
/// before `t`; `None` means the object is not (yet) in the system —
/// Eq. 1's `nil`, "nowhere". (Receptors observe arrivals; between an
/// arrival and the next one the object is attributed to the last site
/// that saw it, which is exactly the information a traceable network
/// possesses.)
pub trait Locate {
    /// Where was/is `object` at time `t`?
    fn locate(&self, object: ObjectId, t: SimTime) -> Option<SiteId>;
}

/// The trace function `TR(o, t_start, t_end)` (Eq. 2): every visit that
/// overlaps the window, in visit order. An empty path means the object
/// was nowhere in the system during the window.
pub trait Trace {
    /// The object's path during `[t_start, t_end]`.
    fn trace(&self, object: ObjectId, t_start: SimTime, t_end: SimTime) -> Path;
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::ms;

    #[test]
    fn visit_overlap_rules() {
        let v = Visit { site: SiteId(1), arrived: ms(10), departed: Some(ms(20)) };
        assert!(v.overlaps(ms(0), ms(10))); // touches arrival boundary
        assert!(v.overlaps(ms(15), ms(15)));
        assert!(v.overlaps(ms(19), ms(100)));
        assert!(!v.overlaps(ms(20), ms(30))); // departed at 20, half-open
        assert!(!v.overlaps(ms(0), ms(9)));
    }

    #[test]
    fn open_visit_overlaps_any_future() {
        let v = Visit { site: SiteId(1), arrived: ms(10), departed: None };
        assert!(v.overlaps(ms(1_000_000), ms(2_000_000)));
        assert!(!v.overlaps(ms(0), ms(9)));
    }

    #[test]
    fn object_id_from_raw_is_sha1() {
        let o = ObjectId::from_raw(b"urn:epc:id:sgtin:1.2.3");
        assert_eq!(o.id(), Id::hash(b"urn:epc:id:sgtin:1.2.3"));
    }

    #[test]
    fn observation_site_is_receptor_site() {
        let obs = Observation {
            object: ObjectId::from_raw(b"x"),
            receptor: ReceptorId { site: SiteId(7), reader: 2 },
            time: ms(1),
        };
        assert_eq!(obs.site(), SiteId(7));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", SiteId(3)), "n3");
        assert_eq!(format!("{:?}", SiteId(3)), "n3");
    }
}
