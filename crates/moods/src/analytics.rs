//! Path analytics — the historical questions §I motivates:
//! "previous locations, transportation time between locations, and time
//! spent in storage".
//!
//! Receptors in this model observe *arrivals* (§II-A), so a visit's
//! duration spans storage plus the outbound transport to the next
//! capture; deployments with exit readers would split the two. The
//! functions here are pure over [`Path`] values, so they work on the
//! output of any backend — PeerTrack traces, warehouse traces, or the
//! oracle.

use crate::model::{Path, SiteId};
use simnet::SimTime;
use std::collections::HashMap;

/// Time spent at one stop of a path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dwell {
    /// The site.
    pub site: SiteId,
    /// Time from this arrival to the next one (`None` for the final,
    /// still-open visit).
    pub duration: Option<SimTime>,
}

/// Per-stop dwell times of a path, in visit order.
pub fn dwell_times(path: &Path) -> Vec<Dwell> {
    path.iter()
        .map(|v| Dwell { site: v.site, duration: v.departed.map(|d| d.since(v.arrived)) })
        .collect()
}

/// Total elapsed time from the first capture to the last (`None` for
/// empty or single-visit paths).
pub fn journey_time(path: &Path) -> Option<SimTime> {
    let first = path.first()?;
    let last = path.last()?;
    if path.len() < 2 {
        return None;
    }
    Some(last.arrived.since(first.arrived))
}

/// Summary statistics of one path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Number of visits.
    pub visits: usize,
    /// Number of *distinct* sites.
    pub distinct_sites: usize,
    /// Visits to a site already seen earlier in the path (cycles —
    /// returns, rework loops).
    pub revisits: usize,
    /// Longest single dwell (closed visits only).
    pub max_dwell: SimTime,
    /// Total journey time (0 for paths shorter than 2 visits).
    pub journey: SimTime,
}

/// Compute [`PathStats`] for a path.
pub fn path_stats(path: &Path) -> PathStats {
    let mut seen: HashMap<SiteId, usize> = HashMap::new();
    let mut revisits = 0usize;
    let mut max_dwell = SimTime::ZERO;
    for v in path {
        *seen.entry(v.site).or_default() += 1;
        if seen[&v.site] > 1 {
            revisits += 1;
        }
        if let Some(d) = v.departed {
            max_dwell = max_dwell.max(d.since(v.arrived));
        }
    }
    PathStats {
        visits: path.len(),
        distinct_sites: seen.len(),
        revisits,
        max_dwell,
        journey: journey_time(path).unwrap_or(SimTime::ZERO),
    }
}

/// Mean dwell per site across many paths — the "time spent in storage"
/// report for a whole product line. Open visits are excluded.
pub fn mean_dwell_by_site(paths: &[Path]) -> HashMap<SiteId, SimTime> {
    let mut sum: HashMap<SiteId, (u64, u64)> = HashMap::new();
    for path in paths {
        for d in dwell_times(path) {
            if let Some(dur) = d.duration {
                let e = sum.entry(d.site).or_default();
                e.0 += dur.as_micros();
                e.1 += 1;
            }
        }
    }
    sum.into_iter()
        .map(|(site, (total, n))| (site, SimTime::from_micros(total / n.max(1))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Visit;
    use simnet::time::secs;

    fn visit(site: u32, arrived: u64, departed: Option<u64>) -> Visit {
        Visit { site: SiteId(site), arrived: secs(arrived), departed: departed.map(secs) }
    }

    #[test]
    fn dwell_of_linear_path() {
        let p = vec![visit(0, 10, Some(40)), visit(1, 40, Some(100)), visit(2, 100, None)];
        let d = dwell_times(&p);
        assert_eq!(d[0].duration, Some(secs(30)));
        assert_eq!(d[1].duration, Some(secs(60)));
        assert_eq!(d[2].duration, None);
        assert_eq!(journey_time(&p), Some(secs(90)));
    }

    #[test]
    fn stats_count_revisits_and_max_dwell() {
        let p = vec![
            visit(0, 0, Some(10)),
            visit(1, 10, Some(100)),
            visit(0, 100, Some(110)),
            visit(2, 110, None),
        ];
        let s = path_stats(&p);
        assert_eq!(s.visits, 4);
        assert_eq!(s.distinct_sites, 3);
        assert_eq!(s.revisits, 1);
        assert_eq!(s.max_dwell, secs(90));
        assert_eq!(s.journey, secs(110));
    }

    #[test]
    fn degenerate_paths() {
        assert_eq!(journey_time(&vec![]), None);
        assert_eq!(journey_time(&vec![visit(0, 5, None)]), None);
        assert_eq!(path_stats(&vec![]), PathStats::default());
        assert!(dwell_times(&vec![]).is_empty());
    }

    #[test]
    fn mean_dwell_aggregates_across_paths() {
        let p1 = vec![visit(0, 0, Some(10)), visit(1, 10, None)];
        let p2 = vec![visit(0, 0, Some(30)), visit(1, 30, None)];
        let m = mean_dwell_by_site(&[p1, p2]);
        assert_eq!(m[&SiteId(0)], secs(20));
        assert!(!m.contains_key(&SiteId(1)), "open visits excluded");
    }
}
