//! Containment: items packed into SSCC-tagged containers.
//!
//! Real traceable networks tag at multiple levels — items (SGTIN) ride
//! in pallets (SSCC) which ride in trucks — and dock-door receptors
//! often read only the *outermost* tag. The temporal RFID model the
//! baseline implements (\[31\]) dedicates a CONTAINMENT table to exactly
//! this. [`ContainmentLog`] is that table: a time-versioned parent
//! relation, plus the resolution logic that turns "the pallet was seen
//! at the DC" into "so the item was too".
//!
//! Containment data is organization-local (packing stations know what
//! they packed), so the log lives beside a site's repository and is
//! *combined* with any [`Locate`]/[`Trace`] backend via
//! [`resolve_locate`]/[`resolve_trace`] — tracking stays P2P, packing
//! knowledge stays local.

use crate::model::{Locate, ObjectId, Path, SiteId, Trace};
use simnet::SimTime;
use std::collections::HashMap;

/// Time-versioned containment relation.
#[derive(Clone, Debug, Default)]
pub struct ContainmentLog {
    /// Per object: `(time, parent)` changes, time-ordered; `None` parent
    /// = unpacked.
    parents: HashMap<ObjectId, Vec<(SimTime, Option<ObjectId>)>>,
}

/// Maximum containment nesting (item → case → pallet → truck → …).
/// Resolution fails loudly past this depth — deeper chains indicate a
/// containment cycle, which is physically impossible.
pub const MAX_NESTING: usize = 16;

impl ContainmentLog {
    /// Empty log.
    pub fn new() -> ContainmentLog {
        ContainmentLog::default()
    }

    /// Record that `object` was packed into `container` at `time`.
    ///
    /// # Panics
    /// If `time` precedes the object's latest containment change, or if
    /// the pack would create a containment cycle at `time`.
    pub fn pack(&mut self, object: ObjectId, container: ObjectId, time: SimTime) {
        assert_ne!(object, container, "an object cannot contain itself");
        // Cycle check: walking up from `container` must not reach
        // `object`.
        let mut cur = Some(container);
        let mut depth = 0;
        while let Some(c) = cur {
            assert_ne!(c, object, "containment cycle: {object:?} would contain itself");
            depth += 1;
            assert!(depth <= MAX_NESTING, "containment nesting exceeds {MAX_NESTING}");
            cur = self.container_of(c, time);
        }
        self.push(object, time, Some(container));
    }

    /// Record that `object` was unpacked at `time`.
    pub fn unpack(&mut self, object: ObjectId, time: SimTime) {
        self.push(object, time, None);
    }

    fn push(&mut self, object: ObjectId, time: SimTime, parent: Option<ObjectId>) {
        let v = self.parents.entry(object).or_default();
        if let Some(&(last, _)) = v.last() {
            assert!(time >= last, "out-of-order containment change for {object:?}");
        }
        v.push((time, parent));
    }

    /// The object's direct container at `t`, if packed.
    pub fn container_of(&self, object: ObjectId, t: SimTime) -> Option<ObjectId> {
        let v = self.parents.get(&object)?;
        let idx = v.partition_point(|&(at, _)| at <= t);
        if idx == 0 {
            None
        } else {
            v[idx - 1].1
        }
    }

    /// The outermost carrier of `object` at `t` (the object itself when
    /// unpacked). This is the tag a dock-door receptor actually reads.
    pub fn outermost(&self, object: ObjectId, t: SimTime) -> ObjectId {
        let mut cur = object;
        for _ in 0..MAX_NESTING {
            match self.container_of(cur, t) {
                Some(parent) => cur = parent,
                None => return cur,
            }
        }
        cur
    }

    /// Everything directly packed in `container` at `t`.
    pub fn contents(&self, container: ObjectId, t: SimTime) -> Vec<ObjectId> {
        let mut out: Vec<ObjectId> = self
            .parents
            .iter()
            .filter(|(_, v)| {
                let idx = v.partition_point(|&(at, _)| at <= t);
                idx > 0 && v[idx - 1].1 == Some(container)
            })
            .map(|(o, _)| *o)
            .collect();
        out.sort();
        out
    }

    /// The containment intervals of `object`: `(from, to, parent)` with
    /// `to = None` for the open tail.
    pub fn history(&self, object: ObjectId) -> Vec<(SimTime, Option<SimTime>, Option<ObjectId>)> {
        let Some(v) = self.parents.get(&object) else {
            return Vec::new();
        };
        v.iter()
            .enumerate()
            .map(|(i, &(t, p))| (t, v.get(i + 1).map(|&(t2, _)| t2), p))
            .collect()
    }
}

/// `L(o, t)` through containment: locate the outermost carrier at `t`
/// with the given backend. Receptors that only read pallet tags still
/// position every item inside.
pub fn resolve_locate<B: Locate>(
    log: &ContainmentLog,
    backend: &B,
    object: ObjectId,
    t: SimTime,
) -> Option<SiteId> {
    let carrier = log.outermost(object, t);
    backend.locate(carrier, t).or_else(|| {
        // The carrier may itself be untracked (e.g. packed before any
        // capture); fall back to the object's own sightings.
        if carrier != object {
            backend.locate(object, t)
        } else {
            None
        }
    })
}

/// `TR(o, t0, t1)` through containment: stitch together the carrier's
/// trace for each containment interval overlapping the window, plus the
/// object's own sightings while unpacked.
pub fn resolve_trace<B: Trace>(
    log: &ContainmentLog,
    backend: &B,
    object: ObjectId,
    t0: SimTime,
    t1: SimTime,
) -> Path {
    let mut segments: Vec<(SimTime, SimTime, ObjectId)> = Vec::new();
    let history = log.history(object);
    if history.is_empty() {
        return backend.trace(object, t0, t1);
    }
    // Before the first containment change the object travels as itself.
    let first_change = history.first().map(|&(t, _, _)| t).unwrap_or(t1);
    if t0 < first_change {
        segments.push((t0, first_change, object));
    }
    for (from, to, parent) in history {
        let seg_end = to.unwrap_or(SimTime::INFINITY).min(t1);
        let seg_start = from.max(t0);
        if seg_start >= seg_end && !(seg_start == seg_end && seg_start == t1) {
            continue;
        }
        // While packed, follow the carrier chain at the segment start.
        let carrier = match parent {
            Some(_) => log.outermost(object, seg_start),
            None => object,
        };
        segments.push((seg_start, seg_end, carrier));
    }

    let mut path = Path::new();
    for (i, (s, e, carrier)) in segments.into_iter().enumerate() {
        for v in backend.trace(carrier, s, e) {
            // A visit that began *before* this segment reflects the
            // carrier's (or the object's own, stale) position prior to
            // the pack/unpack boundary — physically the object inherits
            // its position from the previous segment instead, so such
            // visits are only meaningful for the very first segment.
            if i > 0 && v.arrived < s {
                continue;
            }
            // Avoid duplicating a visit already appended from the
            // previous segment (boundary overlap).
            if path.last() != Some(&v) {
                path.push(v);
            }
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::MovementLog;
    use ids::Id;
    use simnet::time::secs;

    fn obj(n: u64) -> ObjectId {
        ObjectId(Id::hash(&n.to_be_bytes()))
    }

    #[test]
    fn container_of_is_time_versioned() {
        let mut log = ContainmentLog::new();
        let (item, pallet) = (obj(1), obj(100));
        log.pack(item, pallet, secs(10));
        log.unpack(item, secs(50));
        assert_eq!(log.container_of(item, secs(5)), None);
        assert_eq!(log.container_of(item, secs(10)), Some(pallet));
        assert_eq!(log.container_of(item, secs(49)), Some(pallet));
        assert_eq!(log.container_of(item, secs(50)), None);
    }

    #[test]
    fn outermost_follows_nesting() {
        let mut log = ContainmentLog::new();
        let (item, case, pallet) = (obj(1), obj(2), obj(3));
        log.pack(item, case, secs(1));
        log.pack(case, pallet, secs(2));
        assert_eq!(log.outermost(item, secs(1)), case);
        assert_eq!(log.outermost(item, secs(2)), pallet);
        assert_eq!(log.outermost(pallet, secs(2)), pallet);
    }

    #[test]
    fn contents_lists_current_members() {
        let mut log = ContainmentLog::new();
        let pallet = obj(100);
        log.pack(obj(1), pallet, secs(1));
        log.pack(obj(2), pallet, secs(1));
        log.unpack(obj(1), secs(10));
        assert_eq!(log.contents(pallet, secs(5)).len(), 2);
        assert_eq!(log.contents(pallet, secs(10)), vec![obj(2)].into_iter().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycles_rejected() {
        let mut log = ContainmentLog::new();
        log.pack(obj(1), obj(2), secs(1));
        log.pack(obj(2), obj(1), secs(2));
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn self_containment_rejected() {
        let mut log = ContainmentLog::new();
        log.pack(obj(1), obj(1), secs(1));
    }

    #[test]
    fn resolve_locate_via_pallet() {
        // Only the pallet is ever captured; the item inside is located
        // through it.
        let mut containment = ContainmentLog::new();
        let mut movement = MovementLog::new();
        let (item, pallet) = (obj(1), obj(100));
        containment.pack(item, pallet, secs(0));
        movement.record(pallet, SiteId(3), secs(10));
        movement.record(pallet, SiteId(7), secs(100));

        assert_eq!(resolve_locate(&containment, &movement, item, secs(50)), Some(SiteId(3)));
        assert_eq!(resolve_locate(&containment, &movement, item, secs(100)), Some(SiteId(7)));
        assert_eq!(resolve_locate(&containment, &movement, item, secs(1)), None);
    }

    #[test]
    fn resolve_trace_stitches_packed_and_loose_segments() {
        let mut containment = ContainmentLog::new();
        let mut movement = MovementLog::new();
        let (item, pallet) = (obj(1), obj(100));

        // Item seen loose at site 0, packed at t=20, pallet moves to
        // sites 1 and 2, item unpacked at t=200 and later seen at 4.
        movement.record(item, SiteId(0), secs(5));
        containment.pack(item, pallet, secs(20));
        movement.record(pallet, SiteId(1), secs(30));
        movement.record(pallet, SiteId(2), secs(90));
        containment.unpack(item, secs(200));
        movement.record(item, SiteId(4), secs(300));

        let p = resolve_trace(&containment, &movement, item, SimTime::ZERO, SimTime::INFINITY);
        let sites: Vec<SiteId> = p.iter().map(|v| v.site).collect();
        assert_eq!(sites, vec![SiteId(0), SiteId(1), SiteId(2), SiteId(4)]);
    }

    #[test]
    fn resolve_trace_without_containment_is_plain_trace() {
        let containment = ContainmentLog::new();
        let mut movement = MovementLog::new();
        movement.record(obj(1), SiteId(0), secs(1));
        movement.record(obj(1), SiteId(2), secs(2));
        let p = resolve_trace(&containment, &movement, obj(1), SimTime::ZERO, SimTime::INFINITY);
        assert_eq!(p.len(), 2);
    }
}
