//! The ground-truth movement oracle.
//!
//! [`MovementLog`] records every arrival centrally and answers `L`/`TR`
//! directly from the full history. It is the executable semantics of
//! §II-B against which the distributed implementations are verified: if
//! PeerTrack's IOP reconstruction and the oracle ever disagree, the
//! distributed index is wrong (tests enforce exact agreement).

use crate::model::{Locate, ObjectId, Path, SiteId, Trace, Visit};
use simnet::SimTime;
use std::collections::HashMap;

/// Append-only movement history, per object, sorted by time.
#[derive(Clone, Default, Debug)]
pub struct MovementLog {
    arrivals: HashMap<ObjectId, Vec<(SimTime, SiteId)>>,
}

impl MovementLog {
    /// Empty log.
    pub fn new() -> MovementLog {
        MovementLog::default()
    }

    /// Record that `object` arrived at `site` at `time`.
    ///
    /// # Panics
    /// If `time` precedes the object's latest recorded arrival — the
    /// physical object flow is totally ordered per object (§II-A), so an
    /// out-of-order append is a harness bug, not data noise.
    pub fn record(&mut self, object: ObjectId, site: SiteId, time: SimTime) {
        let v = self.arrivals.entry(object).or_default();
        if let Some(&(last, _)) = v.last() {
            assert!(time >= last, "out-of-order arrival for {object:?}: {time:?} < {last:?}");
        }
        v.push((time, site));
    }

    /// Number of distinct objects seen.
    pub fn object_count(&self) -> usize {
        self.arrivals.len()
    }

    /// Total number of recorded arrivals.
    pub fn arrival_count(&self) -> usize {
        self.arrivals.values().map(Vec::len).sum()
    }

    /// All objects seen, in unspecified order.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.arrivals.keys().copied()
    }

    /// The full visit history of `object` (arrival-ordered), with each
    /// departure set to the next arrival.
    pub fn visits(&self, object: ObjectId) -> Path {
        let Some(arr) = self.arrivals.get(&object) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(arr.len());
        for (i, &(t, site)) in arr.iter().enumerate() {
            out.push(Visit {
                site,
                arrived: t,
                departed: arr.get(i + 1).map(|&(t2, _)| t2),
            });
        }
        out
    }

    /// The site of the object's latest arrival (its current location).
    pub fn last_site(&self, object: ObjectId) -> Option<SiteId> {
        self.arrivals.get(&object).and_then(|v| v.last()).map(|&(_, s)| s)
    }
}

impl Locate for MovementLog {
    fn locate(&self, object: ObjectId, t: SimTime) -> Option<SiteId> {
        let arr = self.arrivals.get(&object)?;
        // Latest arrival ≤ t. Arrivals are sorted; binary search.
        let idx = arr.partition_point(|&(at, _)| at <= t);
        if idx == 0 {
            None
        } else {
            Some(arr[idx - 1].1)
        }
    }
}

impl Trace for MovementLog {
    fn trace(&self, object: ObjectId, t_start: SimTime, t_end: SimTime) -> Path {
        if t_start > t_end {
            return Vec::new();
        }
        self.visits(object)
            .into_iter()
            .filter(|v| v.overlaps(t_start, t_end))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids::Id;
    use proptiny::prelude::*;
    use simnet::time::ms;

    fn obj(n: u64) -> ObjectId {
        ObjectId(Id::hash(&n.to_be_bytes()))
    }

    fn sample_log() -> MovementLog {
        let mut log = MovementLog::new();
        log.record(obj(1), SiteId(0), ms(10));
        log.record(obj(1), SiteId(1), ms(20));
        log.record(obj(1), SiteId(2), ms(30));
        log.record(obj(2), SiteId(5), ms(15));
        log
    }

    #[test]
    fn locate_before_first_arrival_is_nowhere() {
        let log = sample_log();
        assert_eq!(log.locate(obj(1), ms(9)), None);
        assert_eq!(log.locate(obj(1), ms(10)), Some(SiteId(0)));
    }

    #[test]
    fn locate_between_and_after() {
        let log = sample_log();
        assert_eq!(log.locate(obj(1), ms(25)), Some(SiteId(1)));
        assert_eq!(log.locate(obj(1), ms(30)), Some(SiteId(2)));
        assert_eq!(log.locate(obj(1), ms(1_000_000)), Some(SiteId(2)));
    }

    #[test]
    fn locate_unknown_object_is_nil() {
        assert_eq!(sample_log().locate(obj(42), ms(100)), None);
    }

    #[test]
    fn trace_full_lifetime() {
        let log = sample_log();
        let p = log.trace(obj(1), SimTime::ZERO, SimTime::INFINITY);
        assert_eq!(
            p.iter().map(|v| v.site).collect::<Vec<_>>(),
            vec![SiteId(0), SiteId(1), SiteId(2)]
        );
        assert_eq!(p[0].departed, Some(ms(20)));
        assert_eq!(p[2].departed, None);
    }

    #[test]
    fn trace_window_clips() {
        let log = sample_log();
        let p = log.trace(obj(1), ms(20), ms(29));
        assert_eq!(p.iter().map(|v| v.site).collect::<Vec<_>>(), vec![SiteId(1)]);
        // Visit at SiteId(0) ended exactly at 20 (half-open) — excluded.
    }

    #[test]
    fn trace_inverted_window_is_empty() {
        assert!(sample_log().trace(obj(1), ms(30), ms(10)).is_empty());
    }

    #[test]
    fn duplicate_site_arrivals_allowed() {
        // An object can be re-captured at the same site (cycle in path).
        let mut log = MovementLog::new();
        log.record(obj(1), SiteId(0), ms(1));
        log.record(obj(1), SiteId(1), ms(2));
        log.record(obj(1), SiteId(0), ms(3));
        let p = log.trace(obj(1), SimTime::ZERO, SimTime::INFINITY);
        assert_eq!(
            p.iter().map(|v| v.site).collect::<Vec<_>>(),
            vec![SiteId(0), SiteId(1), SiteId(0)]
        );
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_record_panics() {
        let mut log = MovementLog::new();
        log.record(obj(1), SiteId(0), ms(10));
        log.record(obj(1), SiteId(1), ms(5));
    }

    proptiny! {
        /// locate(o, t) equals the site of the last visit whose interval
        /// contains t, for arbitrary movement schedules.
        #[test]
        fn prop_locate_consistent_with_trace(
            arrivals in prop::collection::vec((0u64..1000, 0u32..16), 1..40)
        ) {
            let mut times: Vec<u64> = arrivals.iter().map(|&(t, _)| t).collect();
            times.sort_unstable();
            let mut log = MovementLog::new();
            for (t, (_, site)) in times.iter().zip(arrivals.iter()) {
                log.record(obj(7), SiteId(*site), ms(*t));
            }
            // Probe a spread of times.
            for probe in 0..1001u64 {
                if probe % 97 != 0 { continue; }
                let loc = log.locate(obj(7), ms(probe));
                let visits = log.visits(obj(7));
                let expect = visits.iter().rfind(|v| v.arrived <= ms(probe))
                    .map(|v| v.site);
                prop_assert_eq!(loc, expect);
            }
        }

        /// A trace over the full lifetime reports exactly the recorded
        /// arrival sequence.
        #[test]
        fn prop_full_trace_is_history(
            sites in prop::collection::vec(0u32..8, 1..30)
        ) {
            let mut log = MovementLog::new();
            for (i, s) in sites.iter().enumerate() {
                log.record(obj(1), SiteId(*s), ms(i as u64 + 1));
            }
            let got: Vec<u32> = log
                .trace(obj(1), SimTime::ZERO, SimTime::INFINITY)
                .iter().map(|v| v.site.0).collect();
            prop_assert_eq!(got, sites);
        }
    }
}
