//! The canonical [`TraceSink`]: records the causal event log, derives
//! per-class delivery-latency histograms, and tracks operation spans.

use crate::hist::Histogram;
use simnet::metrics::{MsgClass, ALL_CLASSES, NUM_CLASSES};
use simnet::trace::{EventId, SpanId, TraceEvent, TraceKind, TraceSink};
use simnet::{NodeIndex, SimTime};
use std::cell::{Ref, RefCell, RefMut};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::rc::Rc;

/// One application-level operation interval.
#[derive(Clone, Copy, Debug)]
pub struct Span {
    /// Recorder-assigned id (never 0).
    pub id: SpanId,
    /// Application-defined kind tag (see `peertrack::spans`).
    pub kind: u32,
    /// Node the operation ran at.
    pub node: NodeIndex,
    /// When it opened.
    pub open: SimTime,
    /// When it closed (`None` while still open — e.g. a message whose
    /// every copy was lost).
    pub close: Option<SimTime>,
    /// Trace record the operation was started under (0 = root).
    pub cause: EventId,
}

impl Span {
    /// Duration, for closed spans.
    pub fn duration(&self) -> Option<SimTime> {
        self.close.map(|c| SimTime::from_micros(c.as_micros() - self.open.as_micros()))
    }
}

/// In-memory trace recorder.
///
/// Install it on a `Sim` (boxed, or shared via [`SharedRecorder`] to
/// keep a query handle) and it accumulates:
///
/// * the full causal event log, queryable through
///   [`crate::TraceView`];
/// * per-[`MsgClass`] delivery-latency histograms (µs), measured
///   send→deliver so dropped messages never contaminate the
///   distribution;
/// * operation spans with per-kind duration histograms.
///
/// All internal maps are used for point lookups only (iteration goes
/// through sorted structures), so exports are deterministic.
#[derive(Default)]
pub struct Recorder {
    events: Vec<TraceEvent>,
    /// Send record id → (class, sent-at); consumed at delivery.
    in_flight: HashMap<EventId, (MsgClass, SimTime)>,
    class_latency: Vec<Histogram>,
    spans: Vec<Span>,
    /// Open span id → index into `spans`.
    open_spans: HashMap<SpanId, usize>,
    next_span: SpanId,
    span_hist: BTreeMap<u32, Histogram>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder {
            events: Vec::new(),
            in_flight: HashMap::new(),
            class_latency: (0..NUM_CLASSES).map(|_| Histogram::new()).collect(),
            spans: Vec::new(),
            open_spans: HashMap::new(),
            next_span: 1,
            span_hist: BTreeMap::new(),
        }
    }

    /// The full causal event log, in recording order (ids ascending).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Delivery-latency histogram (µs) for one message class.
    pub fn class_latency(&self, class: MsgClass) -> &Histogram {
        &self.class_latency[class as usize]
    }

    /// Record one delivery latency sample (µs) directly, bypassing the
    /// [`TraceSink`] send/deliver pairing. The real-network daemon uses
    /// this: off-sim there is no event queue to observe, so the receiver
    /// computes wall-clock latency from the sender's envelope timestamp
    /// and feeds it here — the same histograms, the same exporters.
    pub fn record_latency(&mut self, class: MsgClass, micros: u64) {
        self.class_latency[class as usize].record(micros);
    }

    /// All non-empty per-class latency histograms, in `ALL_CLASSES`
    /// order.
    pub fn class_latencies(&self) -> impl Iterator<Item = (MsgClass, &Histogram)> {
        ALL_CLASSES
            .iter()
            .map(|&c| (c, &self.class_latency[c as usize]))
            .filter(|(_, h)| !h.is_empty())
    }

    /// All spans, in opening order (includes still-open ones).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Per-kind span-duration histograms (µs), sorted by kind; only
    /// closed spans are counted.
    pub fn span_histograms(&self) -> impl Iterator<Item = (u32, &Histogram)> {
        self.span_hist.iter().map(|(&k, h)| (k, h))
    }

    /// Duration histogram for one span kind, if any span of that kind
    /// closed.
    pub fn span_histogram(&self, kind: u32) -> Option<&Histogram> {
        self.span_hist.get(&kind)
    }

    /// Merge-style summary line used by debug printing.
    pub fn summary(&self) -> String {
        format!(
            "{} events, {} spans ({} open), {} classes with latency samples",
            self.events.len(),
            self.spans.len(),
            self.open_spans.len(),
            self.class_latencies().count()
        )
    }
}

impl TraceSink for Recorder {
    fn on_event(&mut self, ev: &TraceEvent) {
        match ev.kind {
            TraceKind::Send => {
                if let Some(class) = ev.class {
                    self.in_flight.insert(ev.id, (class, ev.at));
                }
            }
            TraceKind::Deliver => {
                if let Some((class, sent)) = self.in_flight.remove(&ev.cause) {
                    let lat = ev.at.as_micros().saturating_sub(sent.as_micros());
                    self.class_latency[class as usize].record(lat);
                }
            }
            TraceKind::Drop => {
                // The copy never arrived: forget it so the latency
                // histograms only see real deliveries.
                self.in_flight.remove(&ev.cause);
            }
            _ => {}
        }
        self.events.push(*ev);
    }

    fn span_open(&mut self, kind: u32, node: NodeIndex, at: SimTime, cause: EventId) -> SpanId {
        let id = self.next_span;
        self.next_span += 1;
        self.open_spans.insert(id, self.spans.len());
        self.spans.push(Span { id, kind, node, open: at, close: None, cause });
        id
    }

    fn span_close(&mut self, span: SpanId, at: SimTime) {
        if let Some(idx) = self.open_spans.remove(&span) {
            let s = &mut self.spans[idx];
            s.close = Some(at);
            let dur = at.as_micros().saturating_sub(s.open.as_micros());
            self.span_hist.entry(s.kind).or_default().record(dur);
        }
    }
}

/// A cloneable handle to a [`Recorder`], so the application can keep a
/// reference while the `Sim` owns the installed sink.
///
/// `Sim` is single-threaded (`!Send` worlds drive it), so a plain
/// `Rc<RefCell<..>>` suffices.
#[derive(Clone, Default)]
pub struct SharedRecorder(Rc<RefCell<Recorder>>);

impl SharedRecorder {
    /// A fresh shared recorder.
    pub fn new() -> SharedRecorder {
        SharedRecorder(Rc::new(RefCell::new(Recorder::new())))
    }

    /// Read access to the underlying recorder.
    pub fn borrow(&self) -> Ref<'_, Recorder> {
        self.0.borrow()
    }

    /// Write access to the underlying recorder.
    pub fn borrow_mut(&self) -> RefMut<'_, Recorder> {
        self.0.borrow_mut()
    }
}

impl TraceSink for SharedRecorder {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.0.borrow_mut().on_event(ev);
    }

    fn span_open(&mut self, kind: u32, node: NodeIndex, at: SimTime, cause: EventId) -> SpanId {
        self.0.borrow_mut().span_open(kind, node, at, cause)
    }

    fn span_close(&mut self, span: SpanId, at: SimTime) {
        self.0.borrow_mut().span_close(span, at);
    }
}
