//! **obs** — observability for the PeerTrack simulations.
//!
//! The paper (§V) and our `simnet::metrics` both evaluate with
//! aggregate message counters; this crate adds the *when* and *why*:
//!
//! * [`Recorder`] — a [`simnet::TraceSink`] that stores the engine's
//!   causal event log (every send/deliver/drop/timer with the id of
//!   the event that caused it) and derives per-`MsgClass`
//!   delivery-latency histograms plus per-operation span durations;
//! * [`Histogram`] — hand-rolled HDR-style log-bucketed histogram
//!   (power-of-two buckets, 32 linear sub-buckets, ≤ 3.2% relative
//!   error) with `p50`/`p95`/`p99`/`max` accessors and an
//!   order-independent `merge`;
//! * [`RegionRecorder`] — a lighter sink for WAN runs: per-region-pair
//!   delivery-latency histograms straight off `Send` records (no log
//!   retention), with a focus class for group-index flush latency;
//! * [`TraceView`] — queries over the log: filter by node / class /
//!   context tag, time slices, and the ancestor-chain walk the
//!   schedule auditor uses to print the causal slice behind an
//!   invariant violation;
//! * exporters — [`chrome_trace_json`] (loadable in `chrome://tracing`
//!   / Perfetto) and CSV summaries ([`latency_summary_csv`]).
//!
//! Zero dependencies beyond `simnet` (which defines the sink trait so
//! the engine never depends on this crate). Installing no sink keeps
//! the engine's traced path completely dormant — see
//! `simnet::trace` for the zero-cost argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod export;
pub mod hist;
pub mod recorder;
pub mod region;
pub mod view;

pub use chrome::chrome_trace_json;
pub use export::{histogram_buckets_csv, latency_summary_csv, LATENCY_CSV_HEADER};
pub use hist::Histogram;
pub use recorder::{Recorder, SharedRecorder, Span};
pub use region::{RegionRecorder, SharedRegionRecorder};
pub use view::{format_event, TraceView};
