//! Per-region-pair delivery-latency histograms (DESIGN.md §17).
//!
//! [`RegionRecorder`] is a [`TraceSink`] that buckets every classed
//! `Send` record by the *region pair* of its endpoints — the site →
//! region mapping is passed in as a plain `Vec<u16>`, so this module
//! needs no topology type — and records the engine-assigned delivery
//! latency (`deliver_at − at`, which includes the geo plane's wire
//! cost and jitter). One focus class (typically the group-index flush
//! traffic) additionally gets its own per-pair histograms, so the wan
//! sweep can report "flush latency per region pair" without replaying
//! the trace.
//!
//! Like every sink, installing one never changes behaviour — traced
//! runs are byte-identical to untraced runs.

use crate::hist::Histogram;
use simnet::{MsgClass, TraceEvent, TraceKind, TraceSink};
use std::cell::{Ref, RefCell, RefMut};
use std::rc::Rc;

/// Per-region-pair latency/traffic recorder.
pub struct RegionRecorder {
    /// Region of each site index; later sites wrap (the same rule
    /// `geo::Topology::region_of` applies).
    regions: Vec<u16>,
    r: usize,
    /// All classed sends, bucketed `[from_region * r + to_region]`.
    all: Vec<Histogram>,
    /// Sends of the focus class only, same bucketing.
    focus: Vec<Histogram>,
    focus_class: MsgClass,
}

impl RegionRecorder {
    /// A recorder over `region_count` regions with the given site →
    /// region map, focusing on `focus_class` (e.g.
    /// `MsgClass::GroupIndex` for flush latency).
    pub fn new(regions: Vec<u16>, region_count: usize, focus_class: MsgClass) -> RegionRecorder {
        assert!(!regions.is_empty(), "site->region map must be non-empty");
        assert!(region_count > 0, "need at least one region");
        RegionRecorder {
            regions,
            r: region_count,
            all: (0..region_count * region_count).map(|_| Histogram::new()).collect(),
            focus: (0..region_count * region_count).map(|_| Histogram::new()).collect(),
            focus_class,
        }
    }

    fn region_of(&self, site: usize) -> usize {
        self.regions[site % self.regions.len()] as usize
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.r
    }

    /// Latency histogram of every classed send from region `a` to
    /// region `b`.
    pub fn pair(&self, a: u16, b: u16) -> &Histogram {
        &self.all[a as usize * self.r + b as usize]
    }

    /// Latency histogram of focus-class sends from region `a` to `b`.
    pub fn focus_pair(&self, a: u16, b: u16) -> &Histogram {
        &self.focus[a as usize * self.r + b as usize]
    }

    /// All cross-region focus-class latencies merged into one
    /// histogram.
    pub fn focus_cross(&self) -> Histogram {
        let mut h = Histogram::new();
        for a in 0..self.r {
            for b in 0..self.r {
                if a != b {
                    h.merge(&self.focus[a * self.r + b]);
                }
            }
        }
        h
    }
}

impl TraceSink for RegionRecorder {
    fn on_event(&mut self, ev: &TraceEvent) {
        // Send records carry the delivery time (`deliver_at`), so the
        // latency is known at send time; node = receiver, peer =
        // sender (see `Sim::trace_emit`).
        if ev.kind != TraceKind::Send {
            return;
        }
        let Some(class) = ev.class else { return };
        let lat = ev.deliver_at.as_micros().saturating_sub(ev.at.as_micros());
        let idx = self.region_of(ev.peer) * self.r + self.region_of(ev.node);
        self.all[idx].record(lat);
        if class == self.focus_class {
            self.focus[idx].record(lat);
        }
    }
}

/// A cloneable handle to a [`RegionRecorder`] (same pattern as
/// [`crate::SharedRecorder`]): the application keeps one clone while
/// the `Sim` owns the installed sink.
#[derive(Clone)]
pub struct SharedRegionRecorder(Rc<RefCell<RegionRecorder>>);

impl SharedRegionRecorder {
    /// A fresh shared recorder (see [`RegionRecorder::new`]).
    pub fn new(
        regions: Vec<u16>,
        region_count: usize,
        focus_class: MsgClass,
    ) -> SharedRegionRecorder {
        SharedRegionRecorder(Rc::new(RefCell::new(RegionRecorder::new(
            regions,
            region_count,
            focus_class,
        ))))
    }

    /// Read access to the underlying recorder.
    pub fn borrow(&self) -> Ref<'_, RegionRecorder> {
        self.0.borrow()
    }

    /// Write access to the underlying recorder.
    pub fn borrow_mut(&self) -> RefMut<'_, RegionRecorder> {
        self.0.borrow_mut()
    }
}

impl TraceSink for SharedRegionRecorder {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.0.borrow_mut().on_event(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimTime;

    fn send(from: usize, to: usize, class: MsgClass, at_us: u64, deliver_us: u64) -> TraceEvent {
        TraceEvent {
            id: 1,
            cause: 0,
            kind: TraceKind::Send,
            at: SimTime::from_micros(at_us),
            deliver_at: SimTime::from_micros(deliver_us),
            node: to,
            peer: from,
            class: Some(class),
            bytes: 8,
            hops: 1,
            ctx: 0,
        }
    }

    #[test]
    fn buckets_by_region_pair_and_focus_class() {
        // Sites 0,1 -> region 0; sites 2,3 -> region 1.
        let mut r = RegionRecorder::new(vec![0, 0, 1, 1], 2, MsgClass::GroupIndex);
        r.on_event(&send(0, 2, MsgClass::GroupIndex, 0, 45_000));
        r.on_event(&send(0, 1, MsgClass::GroupIndex, 0, 5_000));
        r.on_event(&send(2, 0, MsgClass::Query, 10, 60_010));
        // Non-send and classless records are ignored.
        let mut deliver = send(0, 2, MsgClass::Query, 0, 1);
        deliver.kind = TraceKind::Deliver;
        r.on_event(&deliver);
        let mut unclassed = send(0, 2, MsgClass::Query, 0, 1);
        unclassed.class = None;
        r.on_event(&unclassed);

        assert_eq!(r.pair(0, 1).count(), 1);
        assert_eq!(r.pair(0, 0).count(), 1);
        assert_eq!(r.pair(1, 0).count(), 1);
        assert_eq!(r.focus_pair(0, 1).count(), 1);
        assert_eq!(r.focus_pair(1, 0).count(), 0);
        assert_eq!(r.focus_cross().count(), 1);
        assert!(r.pair(0, 1).p50() >= 45_000);
    }

    #[test]
    fn shared_handle_sees_sink_updates() {
        let shared = SharedRegionRecorder::new(vec![0, 1], 2, MsgClass::Query);
        let mut sink: Box<dyn TraceSink> = Box::new(shared.clone());
        sink.on_event(&send(0, 1, MsgClass::Query, 0, 7));
        assert_eq!(shared.borrow().focus_pair(0, 1).count(), 1);
    }
}
