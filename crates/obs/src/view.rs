//! Query API over a recorded causal trace.

use simnet::metrics::MsgClass;
use simnet::trace::{EventId, TraceEvent, TraceKind};
use simnet::{NodeIndex, SimTime};

/// A read-only lens over an event log (usually
/// [`Recorder::events`](crate::Recorder::events)).
///
/// Event ids are assigned monotonically by the engine, so the slice is
/// sorted by id and lookups are binary searches.
#[derive(Clone, Copy)]
pub struct TraceView<'a> {
    events: &'a [TraceEvent],
}

impl<'a> TraceView<'a> {
    /// Wrap an event log (must be in recording order, as produced by
    /// any sink fed from one `Sim`).
    pub fn new(events: &'a [TraceEvent]) -> TraceView<'a> {
        TraceView { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events.
    pub fn events(&self) -> &'a [TraceEvent] {
        self.events
    }

    /// Look an event up by id.
    pub fn by_id(&self, id: EventId) -> Option<&'a TraceEvent> {
        self.events.binary_search_by_key(&id, |e| e.id).ok().map(|i| &self.events[i])
    }

    /// Events a node participated in (as `node` or `peer`).
    pub fn filter_node(&self, node: NodeIndex) -> Vec<&'a TraceEvent> {
        self.events.iter().filter(|e| e.node == node || e.peer == node).collect()
    }

    /// Events of one message class.
    pub fn filter_class(&self, class: MsgClass) -> Vec<&'a TraceEvent> {
        self.events.iter().filter(|e| e.class == Some(class)).collect()
    }

    /// Events carrying a context tag (e.g. the per-object digest the
    /// peertrack layer attaches; see `peertrack::spans::object_tag`).
    pub fn filter_ctx(&self, ctx: u64) -> Vec<&'a TraceEvent> {
        self.events.iter().filter(|e| e.ctx == ctx).collect()
    }

    /// Events with `at` inside `[from, to]`.
    pub fn between(&self, from: SimTime, to: SimTime) -> Vec<&'a TraceEvent> {
        self.events.iter().filter(|e| e.at >= from && e.at <= to).collect()
    }

    /// The causal ancestor chain of `id`: the event itself, its cause,
    /// its cause's cause, … up to a root. Returned root-first, the
    /// queried event last. Empty if `id` is unknown.
    pub fn ancestors(&self, id: EventId) -> Vec<&'a TraceEvent> {
        let mut chain = Vec::new();
        let mut cur = id;
        while cur != 0 {
            let Some(ev) = self.by_id(cur) else { break };
            chain.push(ev);
            // Ids are assigned in causal order, so the walk strictly
            // decreases and terminates even on malformed input.
            if ev.cause >= cur {
                break;
            }
            cur = ev.cause;
        }
        chain.reverse();
        chain
    }

    /// Does the ancestor chain of `id` contain an event tagged `ctx`?
    pub fn descends_from_ctx(&self, id: EventId, ctx: u64) -> bool {
        self.ancestors(id).iter().any(|e| e.ctx == ctx)
    }

    /// The last delivery causally downstream of any event tagged
    /// `ctx` — the anchor the auditor uses: "the violating delivery for
    /// this object". Falls back to the last tagged event of any kind
    /// when no such delivery exists (e.g. every update was dropped).
    pub fn last_delivery_for_ctx(&self, ctx: u64) -> Option<&'a TraceEvent> {
        self.events
            .iter()
            .rev()
            .find(|e| e.kind == TraceKind::Deliver && self.descends_from_ctx(e.id, ctx))
            .or_else(|| self.events.iter().rev().find(|e| e.ctx == ctx))
    }

    /// Human-readable dump of the ancestor chain of `id`, one event
    /// per line, root first.
    pub fn format_chain(&self, id: EventId) -> String {
        let chain = self.ancestors(id);
        let mut out = String::new();
        for ev in chain {
            out.push_str("  ");
            out.push_str(&format_event(ev));
            out.push('\n');
        }
        out
    }
}

/// One-line human-readable rendering of an event.
pub fn format_event(ev: &TraceEvent) -> String {
    let kind = match ev.kind {
        TraceKind::Send => "send      ",
        TraceKind::Deliver => "deliver   ",
        TraceKind::Drop => "drop      ",
        TraceKind::TimerSet => "timer-set ",
        TraceKind::TimerFired => "timer-fire",
        TraceKind::LookupHop => "hop       ",
    };
    let class = ev.class.map(|c| format!(" {}", c.label())).unwrap_or_default();
    let ctx = if ev.ctx != 0 { format!(" ctx={:#018x}", ev.ctx) } else { String::new() };
    let route = if ev.peer == ev.node {
        format!("@{}", ev.node)
    } else {
        format!("{}->{}", ev.peer, ev.node)
    };
    format!(
        "#{:<6} {} t={:<12} {:<9}{}{} (cause #{})",
        ev.id,
        kind,
        format!("{}us", ev.at.as_micros()),
        route,
        class,
        ctx,
        ev.cause
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: EventId, cause: EventId, kind: TraceKind, ctx: u64) -> TraceEvent {
        TraceEvent {
            id,
            cause,
            kind,
            at: SimTime::from_micros(id * 10),
            deliver_at: SimTime::from_micros(id * 10),
            node: 1,
            peer: 0,
            class: None,
            bytes: 0,
            hops: 0,
            ctx,
        }
    }

    #[test]
    fn ancestors_walk_to_root() {
        let log = vec![
            ev(1, 0, TraceKind::TimerSet, 7),
            ev(2, 1, TraceKind::TimerFired, 0),
            ev(3, 2, TraceKind::Send, 0),
            ev(4, 3, TraceKind::Deliver, 0),
        ];
        let v = TraceView::new(&log);
        let chain: Vec<EventId> = v.ancestors(4).iter().map(|e| e.id).collect();
        assert_eq!(chain, vec![1, 2, 3, 4]);
        assert!(v.descends_from_ctx(4, 7));
        assert!(!v.descends_from_ctx(4, 8));
        assert_eq!(v.last_delivery_for_ctx(7).unwrap().id, 4);
    }

    #[test]
    fn filters_and_slices() {
        let log = vec![
            ev(1, 0, TraceKind::Send, 0),
            ev(2, 1, TraceKind::Deliver, 5),
            ev(3, 0, TraceKind::TimerSet, 0),
        ];
        let v = TraceView::new(&log);
        assert_eq!(v.filter_ctx(5).len(), 1);
        assert_eq!(v.between(SimTime::from_micros(15), SimTime::from_micros(25)).len(), 1);
        assert_eq!(v.filter_node(1).len(), 3);
        assert!(v.by_id(9).is_none());
    }
}
