//! CSV summaries of a recorder's histograms.
//!
//! Pure string emitters — callers decide where the bytes go (the bench
//! binaries and examples write under `results/`).

use crate::hist::Histogram;
use crate::recorder::Recorder;
use std::fmt::Write as _;

/// Header used by [`latency_summary_csv`].
pub const LATENCY_CSV_HEADER: &str = "scope,name,count,p50_us,p95_us,p99_us,max_us,mean_us";

fn push_row(out: &mut String, scope: &str, name: &str, h: &Histogram) {
    let _ = writeln!(
        out,
        "{},{},{},{},{},{},{},{:.1}",
        scope,
        name,
        h.count(),
        h.p50(),
        h.p95(),
        h.p99(),
        h.max(),
        h.mean()
    );
}

/// One CSV with a row per non-empty histogram: message-class delivery
/// latencies (`scope=class`) followed by application-span durations
/// (`scope=span`, named by `span_label`). Deterministic: rows follow
/// `ALL_CLASSES` order, then span kinds ascending.
pub fn latency_summary_csv(rec: &Recorder, span_label: &dyn Fn(u32) -> &'static str) -> String {
    let mut out = String::new();
    out.push_str(LATENCY_CSV_HEADER);
    out.push('\n');
    for (class, h) in rec.class_latencies() {
        push_row(&mut out, "class", class.label(), h);
    }
    for (kind, h) in rec.span_histograms() {
        push_row(&mut out, "span", span_label(kind), h);
    }
    out
}

/// Full bucket dump of one histogram (`lower_us,upper_us,count`), for
/// plotting distributions rather than summaries.
pub fn histogram_buckets_csv(h: &Histogram) -> String {
    let mut out = String::from("lower_us,upper_us,count\n");
    for (lo, hi, c) in h.buckets() {
        let _ = writeln!(out, "{lo},{hi},{c}");
    }
    out
}
