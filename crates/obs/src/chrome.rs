//! Hand-rolled Chrome trace-event JSON emitter.
//!
//! The output loads in `chrome://tracing` and in Perfetto
//! (<https://ui.perfetto.dev>). We emit the stable subset of the trace
//! event format:
//!
//! * one complete (`"ph":"X"`) slice per delivered message, from send
//!   to delivery, on the destination node's track, with flow arrows
//!   (`"ph":"s"` / `"ph":"f"`) tying cause to effect;
//! * an instant (`"ph":"i"`) event per dropped message;
//! * one complete slice per closed application span.
//!
//! `pid` is always 0 (one simulated network), `tid` is the node index,
//! timestamps are virtual microseconds. Output is deterministic: the
//! emitter walks the event log and the span list in recording order
//! and never touches a hash map.

use crate::recorder::Recorder;
use simnet::trace::{EventId, TraceKind};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Escape a string for a JSON literal (ASCII labels in practice).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a recorder's trace as Chrome trace-event JSON.
///
/// `span_label` names application span kinds (use
/// `peertrack::spans::label` for peertrack traffic; any stable mapping
/// works).
pub fn chrome_trace_json(rec: &Recorder, span_label: &dyn Fn(u32) -> &'static str) -> String {
    let mut out = String::with_capacity(256 + rec.events().len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;

    // Send metadata for slice reconstruction: send id -> event index.
    let mut sends: HashMap<EventId, usize> = HashMap::new();
    for (i, ev) in rec.events().iter().enumerate() {
        if ev.kind == TraceKind::Send {
            sends.insert(ev.id, i);
        }
    }

    let emit = |out: &mut String, first: &mut bool, body: String| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&body);
    };

    for ev in rec.events() {
        match ev.kind {
            TraceKind::Deliver => {
                let Some(&si) = sends.get(&ev.cause) else { continue };
                let send = &rec.events()[si];
                let name = send.class.map(|c| c.label()).unwrap_or("local");
                let ts = send.at.as_micros();
                let dur = ev.at.as_micros().saturating_sub(ts);
                emit(&mut out, &mut first, format!(
                    "{{\"name\":\"{}\",\"cat\":\"msg\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"id\":{},\"cause\":{},\"from\":{},\"bytes\":{},\"hops\":{},\"ctx\":{}}}}}",
                    esc(name), ts, dur, ev.node, ev.id, send.cause, ev.peer, send.bytes, send.hops, ev.ctx
                ));
                // Flow arrow from the sender's track to the delivery.
                emit(&mut out, &mut first, format!(
                    "{{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{},\"ts\":{},\"pid\":0,\"tid\":{}}}",
                    send.id, ts, send.peer
                ));
                emit(&mut out, &mut first, format!(
                    "{{\"name\":\"flow\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"ts\":{},\"pid\":0,\"tid\":{}}}",
                    send.id, ev.at.as_micros(), ev.node
                ));
            }
            TraceKind::Drop => {
                let name = ev.class.map(|c| c.label()).unwrap_or("in-flight");
                emit(&mut out, &mut first, format!(
                    "{{\"name\":\"drop {}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"id\":{},\"cause\":{}}}}}",
                    esc(name), ev.at.as_micros(), ev.node, ev.id, ev.cause
                ));
            }
            _ => {}
        }
    }

    for span in rec.spans() {
        let Some(close) = span.close else { continue };
        let ts = span.open.as_micros();
        emit(&mut out, &mut first, format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"span\":{},\"cause\":{}}}}}",
            esc(span_label(span.kind)), ts, close.as_micros().saturating_sub(ts), span.node, span.id, span.cause
        ));
    }

    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::metrics::MsgClass;
    use simnet::trace::{TraceEvent, TraceSink};
    use simnet::SimTime;

    #[test]
    fn emits_slices_and_balanced_json() {
        let mut rec = Recorder::new();
        let send = TraceEvent {
            id: 1,
            cause: 0,
            kind: TraceKind::Send,
            at: SimTime::from_micros(0),
            deliver_at: SimTime::from_micros(5_000),
            node: 2,
            peer: 1,
            class: Some(MsgClass::Query),
            bytes: 40,
            hops: 1,
            ctx: 0,
        };
        rec.on_event(&send);
        rec.on_event(&TraceEvent {
            id: 2,
            cause: 1,
            kind: TraceKind::Deliver,
            at: SimTime::from_micros(5_000),
            deliver_at: SimTime::from_micros(5_000),
            node: 2,
            peer: 1,
            class: None,
            bytes: 0,
            hops: 0,
            ctx: 0,
        });
        let s = rec.span_open(7, 2, SimTime::from_micros(0), 0);
        rec.span_close(s, SimTime::from_micros(9_000));
        let json = chrome_trace_json(&rec, &|_| "op");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"pid\":0"));
        assert!(json.contains("\"dur\":5000"));
        assert!(json.contains("\"name\":\"op\""));
        let braces: i64 = json
            .chars()
            .map(|c| match c {
                '{' => 1,
                '}' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(braces, 0);
    }
}
