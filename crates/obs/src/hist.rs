//! Log-bucketed latency histogram, HDR-style.
//!
//! Values are `u64` (the simulator records microseconds). Buckets are
//! powers of two subdivided into `2^SUB_BITS = 32` linear sub-buckets,
//! so the relative quantization error is bounded by `1/32 ≈ 3.1%`
//! while the whole `u64` range fits in a fixed 1 920-slot table — no
//! allocation after construction, `merge` is plain counter addition
//! and therefore order-independent by construction.
//!
//! Layout: values below 32 get exact singleton buckets (index =
//! value). For larger values with most-significant bit `m ≥ 5`, the
//! five bits below the msb select a sub-bucket of width `2^(m-5)`:
//!
//! ```text
//! index 0..32    : width 1      (values 0..32, exact)
//! index 32..64   : width 1      (values 32..64 — same grid, exact)
//! index 64..96   : width 2      (values 64..128)
//! index 96..128  : width 4      (values 128..256)
//! ...
//! ```

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per power of two.
const SUB_BITS: u32 = 5;
/// Sub-buckets per power-of-two bucket.
const SUB: usize = 1 << SUB_BITS;
/// Total slots: the exact group (values < 32) plus one group of 32 for
/// each possible msb position 5..=63 — 60 groups.
const SLOTS: usize = SUB * (64 - SUB_BITS as usize + 1);

/// A fixed-memory log-bucketed histogram over `u64` values.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; SLOTS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { counts: Box::new([0; SLOTS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Slot index for `value`.
    fn index_of(value: u64) -> usize {
        if value < SUB as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BITS;
        let bucket = (msb - SUB_BITS + 1) as usize;
        let sub = (value >> shift) as usize - SUB;
        bucket * SUB + sub
    }

    /// Inclusive `(lower, upper)` bounds of slot `index`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        if index < SUB {
            return (index as u64, index as u64);
        }
        let bucket = index / SUB;
        let sub = (index % SUB) as u64;
        let width_log = (bucket - 1) as u32;
        let lower = (SUB as u64 + sub) << width_log;
        // Parenthesised so the top slot (upper == u64::MAX) does not
        // overflow before the subtraction.
        let upper = lower + ((1u64 << width_log) - 1);
        (lower, upper)
    }

    /// Inclusive bounds of the bucket `value` falls into — for tests
    /// and bucket-resolution reasoning.
    pub fn bucket_of(value: u64) -> (u64, u64) {
        Self::bucket_bounds(Self::index_of(value))
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Is the histogram empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q ∈ [0, 1]`: an upper bound for the value at
    /// rank `⌈q·count⌉`, clamped to the observed `[min, max]`. Exact
    /// for values below 32; within one sub-bucket (≤ 3.2% relative)
    /// above. Monotone non-decreasing in `q`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, upper) = Self::bucket_bounds(i);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one. Plain counter addition:
    /// `a.merge(&b)` equals recording the concatenation of both value
    /// streams, in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for i in 0..SLOTS {
            self.counts[i] += other.counts[i];
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterate non-empty buckets as `(lower, upper, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| {
            let (lo, hi) = Self::bucket_bounds(i);
            (lo, hi, c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        for q in [0.1, 0.5, 0.9] {
            let rank = (q * 64.0_f64).ceil() as u64;
            assert_eq!(h.quantile(q), rank - 1, "q={q}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
    }

    #[test]
    fn bucket_layout_is_contiguous_and_ordered() {
        // Every slot's lower bound is the previous slot's upper + 1.
        let mut expect = 0u64;
        for i in 0..SLOTS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(lo, expect, "slot {i}");
            assert!(hi >= lo);
            if hi == u64::MAX {
                break;
            }
            expect = hi + 1;
        }
    }

    #[test]
    fn extremes_fit() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        let (lo, hi) = Histogram::bucket_of(u64::MAX);
        assert!(lo <= u64::MAX && hi == u64::MAX);
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        let p = h.p50();
        assert!(p >= 1_000_000, "upper-bound estimate");
        assert!((p - 1_000_000) as f64 / 1_000_000.0 <= 1.0 / 32.0 + 1e-9);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
