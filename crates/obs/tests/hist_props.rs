//! Property tests for the log-bucketed histogram: bucket containment,
//! merge = concatenation (hence order-independence), and quantile
//! monotonicity — the algebra the latency reports rest on.

use obs::Histogram;
use proptiny::prelude::*;

fn hist_of(vals: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h
}

proptiny! {
    #[test]
    fn prop_every_value_lands_in_a_bucket_containing_it(v in any::<u64>()) {
        let (lower, upper) = Histogram::bucket_of(v);
        prop_assert!(lower <= v && v <= upper, "{v} outside [{lower}, {upper}]");
        let h = hist_of(&[v]);
        let hit: Vec<_> = h.buckets().collect();
        prop_assert_eq!(hit.len(), 1, "one value, one non-empty bucket");
        let (blo, bhi, n) = hit[0];
        prop_assert_eq!(n, 1);
        prop_assert!(blo <= v && v <= bhi);
    }

    #[test]
    fn prop_merge_equals_concatenation(
        a in prop::collection::vec(any::<u64>(), 0..100),
        b in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        // Recording a++b in one histogram and merging two halves must
        // agree bucket-for-bucket — which also makes merge commutative,
        // so shard-local histograms can be combined in any order.
        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let whole = hist_of(&concat);
        let mut ab = hist_of(&a);
        ab.merge(&hist_of(&b));
        let mut ba = hist_of(&b);
        ba.merge(&hist_of(&a));
        for h in [&ab, &ba] {
            prop_assert_eq!(h.count(), whole.count());
            prop_assert_eq!(h.buckets().collect::<Vec<_>>(), whole.buckets().collect::<Vec<_>>());
            if !whole.is_empty() {
                prop_assert_eq!(h.min(), whole.min());
                prop_assert_eq!(h.max(), whole.max());
                prop_assert_eq!(h.p50(), whole.p50());
                prop_assert_eq!(h.p99(), whole.p99());
            }
        }
    }

    #[test]
    fn prop_quantiles_monotone_and_bounded(
        vals in prop::collection::vec(any::<u64>(), 1..200),
        qa_pm in 0u32..=1000,
        qb_pm in 0u32..=1000,
    ) {
        let h = hist_of(&vals);
        let (qa, qb) = (qa_pm as f64 / 1000.0, qb_pm as f64 / 1000.0);
        let (lo, hi) = (qa.min(qb), qa.max(qb));
        prop_assert!(h.quantile(lo) <= h.quantile(hi), "quantile must be monotone in q");
        prop_assert!(h.quantile(lo) >= h.min() && h.quantile(hi) <= h.max());
    }
}
