//! Structural properties of the hand-rolled Chrome trace export: for
//! arbitrary event logs the JSON stays balanced, every record carries
//! the trace-event-format essentials (`ph`, `ts`, `pid`), and the
//! output is a pure function of the recorder's contents.

use obs::{chrome_trace_json, Recorder};
use proptiny::prelude::*;
use simnet::time::SimTime;
use simnet::{MsgClass, TraceEvent, TraceKind, TraceSink};

/// Feed a synthetic send/deliver (or send/drop) pair per sample into a
/// recorder, mimicking the engine's id/cause threading.
fn recorder_from(samples: &[(u8, u64, u64, bool)]) -> Recorder {
    let mut rec = Recorder::new();
    let mut next_id = 1u64;
    for &(class, at, latency, dropped) in samples {
        let class = match class % 5 {
            0 => MsgClass::IndexReport,
            1 => MsgClass::GroupIndex,
            2 => MsgClass::IopUpdate,
            3 => MsgClass::Delegate,
            _ => MsgClass::SplitMerge,
        };
        let at = SimTime::from_micros(at % 1_000_000_000);
        let latency = latency % 10_000_000;
        let deliver_at = at + SimTime::from_micros(latency);
        let send_id = next_id;
        next_id += 1;
        rec.on_event(&TraceEvent {
            id: send_id,
            cause: 0,
            kind: TraceKind::Send,
            at,
            deliver_at,
            node: 1,
            peer: 2,
            class: Some(class),
            bytes: 64,
            hops: 2,
            ctx: 0,
        });
        rec.on_event(&TraceEvent {
            id: next_id,
            cause: send_id,
            kind: if dropped { TraceKind::Drop } else { TraceKind::Deliver },
            at: deliver_at,
            deliver_at,
            node: 2,
            peer: 1,
            class: Some(class),
            bytes: 64,
            hops: 2,
            ctx: 0,
        });
        next_id += 1;
    }
    rec
}

fn label(_kind: u32) -> &'static str {
    "span"
}

proptiny! {
    #[test]
    fn prop_chrome_json_is_balanced_and_deterministic(
        samples in prop::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u64>(), any::<bool>()),
            0..50,
        ),
    ) {
        let json = chrome_trace_json(&recorder_from(&samples), &label);
        let (mut braces, mut brackets) = (0i64, 0i64);
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            match c {
                _ if escaped => escaped = false,
                '\\' if in_str => escaped = true,
                '"' => in_str = !in_str,
                '{' if !in_str => braces += 1,
                '}' if !in_str => braces -= 1,
                '[' if !in_str => brackets += 1,
                ']' if !in_str => brackets -= 1,
                _ => {}
            }
            prop_assert!(braces >= 0 && brackets >= 0, "closer before opener");
        }
        prop_assert_eq!(braces, 0, "unbalanced braces");
        prop_assert_eq!(brackets, 0, "unbalanced brackets");
        prop_assert!(!in_str, "unterminated string");
        prop_assert!(json.starts_with('{') && json.trim_end().ends_with('}'));

        let delivered = samples.iter().filter(|s| !s.3).count();
        if delivered > 0 {
            prop_assert!(json.contains("\"ph\":\"X\""), "delivered messages emit slices");
        }
        if samples.len() > delivered {
            prop_assert!(json.contains("\"ph\":\"i\""), "drops emit instants");
        }
        for key in ["\"ts\":", "\"pid\":"] {
            if !samples.is_empty() {
                prop_assert!(json.contains(key), "missing {key}");
            }
        }

        // Pure function of the recorder: regenerating gives bytes.
        let again = chrome_trace_json(&recorder_from(&samples), &label);
        prop_assert_eq!(json, again);
    }
}
