//! Bit-string prefixes — the group keys of §IV-A.
//!
//! Two objects belong to the same group when their hashed ids share the
//! first `Lp` bits. A [`Prefix`] is that shared bit string; its
//! [`Prefix::gateway_id`] is the DHT key the group is indexed under
//! ("objects belonging to the group \"00\" will be indexed in the node
//! hash(\"00\")").
//!
//! The Data Triangle (§IV-A.2) relates a parent prefix `p` to its two
//! children `p+'0'` and `p+'1'`, and the splitting/merging process walks
//! up and down this implicit binary trie — [`Prefix::child`],
//! [`Prefix::parent`] and [`Prefix::matches`] are exactly those moves.

use crate::id::Id;
use crate::ID_BITS;
use std::fmt;

/// A prefix of up to 160 bits of an identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    /// Bits, MSB-first, padded with zeros past `len`.
    bits: [u8; 8],
    /// Number of significant bits (0 ..= 64). Practical `Lp` values are
    /// tiny (≤ ~2·log2 Nn ≈ 20 for the paper's largest network), so 64
    /// bits of storage is ample and keeps `Prefix` `Copy`.
    len: u8,
}

/// Longest representable prefix, in bits.
pub const MAX_PREFIX_BITS: usize = 64;

impl Prefix {
    /// The empty prefix (matches every id).
    pub const ROOT: Prefix = Prefix { bits: [0; 8], len: 0 };

    /// The first `len` bits of `id`.
    ///
    /// # Panics
    /// If `len > 64` (no realistic `Lp` comes close; see Eq. 6).
    pub fn of_id(id: &Id, len: usize) -> Prefix {
        assert!(len <= MAX_PREFIX_BITS, "prefix length {len} exceeds {MAX_PREFIX_BITS}");
        let mut bits = [0u8; 8];
        bits.copy_from_slice(&id.0[..8]);
        // Zero everything past `len` so equal prefixes compare equal.
        let mut p = Prefix { bits, len: len as u8 };
        p.mask_tail();
        p
    }

    /// Parse a `'0'`/`'1'` string, e.g. `"0010"`.
    pub fn from_bit_str(s: &str) -> Prefix {
        assert!(s.len() <= MAX_PREFIX_BITS);
        let mut p = Prefix { bits: [0; 8], len: s.len() as u8 };
        for (i, c) in s.chars().enumerate() {
            match c {
                '1' => p.bits[i / 8] |= 1 << (7 - i % 8),
                '0' => {}
                _ => panic!("invalid bit char {c:?}"),
            }
        }
        p
    }

    fn mask_tail(&mut self) {
        let len = self.len as usize;
        for i in 0..8 {
            let bit_start = i * 8;
            if bit_start >= len {
                self.bits[i] = 0;
            } else if bit_start + 8 > len {
                let keep = len - bit_start;
                self.bits[i] &= 0xFFu8 << (8 - keep);
            }
        }
    }

    /// Number of bits in this prefix (`Lp` when it is a group id).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for the empty (root) prefix.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i` (MSB-first).
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < self.len as usize);
        (self.bits[i / 8] >> (7 - i % 8)) & 1 == 1
    }

    /// Does `id` start with this prefix? This is the `filter` predicate in
    /// the Fig. 5 refresh algorithms.
    pub fn matches(&self, id: &Id) -> bool {
        (0..self.len as usize).all(|i| self.bit(i) == id.bit(i))
    }

    /// Extend by one bit: `p + '0'` or `p + '1'` — the two child roles of
    /// a Data Triangle.
    pub fn child(&self, one: bool) -> Prefix {
        assert!((self.len as usize) < MAX_PREFIX_BITS, "prefix at max length");
        let mut p = *self;
        if one {
            let i = p.len as usize;
            p.bits[i / 8] |= 1 << (7 - i % 8);
        }
        p.len += 1;
        p
    }

    /// Drop the last bit (the parent in the trie); `None` at the root.
    pub fn parent(&self) -> Option<Prefix> {
        if self.len == 0 {
            return None;
        }
        let mut p = *self;
        p.len -= 1;
        p.mask_tail();
        Some(p)
    }

    /// Truncate to the first `len` bits (used by `refresh_from_ascent`,
    /// Fig. 5: `p' ← p.sub(1, Lp − i)`).
    pub fn truncate(&self, len: usize) -> Prefix {
        assert!(len <= self.len as usize);
        let mut p = *self;
        p.len = len as u8;
        p.mask_tail();
        p
    }

    /// Is `self` an ancestor of (or equal to) `other` in the trie?
    pub fn is_prefix_of(&self, other: &Prefix) -> bool {
        self.len <= other.len && (0..self.len as usize).all(|i| self.bit(i) == other.bit(i))
    }

    /// Canonical `'0'`/`'1'` string, the paper's textual group id.
    pub fn as_bit_string(&self) -> String {
        (0..self.len as usize)
            .map(|i| if self.bit(i) { '1' } else { '0' })
            .collect()
    }

    /// The DHT key this group is indexed under: `hash(group id)`.
    ///
    /// The paper stores group `"00"` at node `hash("00")`; we hash the
    /// canonical bit string with a length tag so that e.g. `"0"` and
    /// `"00"` can never collide with each other's raw encodings.
    pub fn gateway_id(&self) -> Id {
        let mut key = String::with_capacity(self.len as usize + 8);
        key.push_str("grp:");
        key.push_str(&self.as_bit_string());
        Id::hash_str(&key)
    }

    /// Canonical 9-byte wire form: length byte followed by the 8 bit
    /// bytes (tail already masked to zero).
    pub fn wire_bytes(&self) -> [u8; 9] {
        let mut out = [0u8; 9];
        out[0] = self.len;
        out[1..].copy_from_slice(&self.bits);
        out
    }

    /// Parse the wire form; rejects over-long lengths and unmasked tail
    /// bits (which would break prefix equality).
    pub fn from_wire_bytes(raw: &[u8; 9]) -> Result<Prefix, String> {
        if raw[0] as usize > MAX_PREFIX_BITS {
            return Err(format!("prefix length {} exceeds {MAX_PREFIX_BITS}", raw[0]));
        }
        let mut bits = [0u8; 8];
        bits.copy_from_slice(&raw[1..]);
        let candidate = Prefix { bits, len: raw[0] };
        let mut masked = candidate;
        masked.mask_tail();
        if masked.bits != candidate.bits {
            return Err("prefix tail bits not zeroed".into());
        }
        Ok(candidate)
    }

    /// Enumerate all `2^len` prefixes of a given length, in numeric order.
    /// Useful for tests and for load-balance accounting (§V-C).
    pub fn enumerate(len: usize) -> impl Iterator<Item = Prefix> {
        assert!(len <= 20, "enumerating 2^{len} prefixes is unreasonable");
        (0u64..(1u64 << len)).map(move |v| {
            let mut p = Prefix { bits: [0; 8], len: len as u8 };
            for i in 0..len {
                if (v >> (len - 1 - i)) & 1 == 1 {
                    p.bits[i / 8] |= 1 << (7 - i % 8);
                }
            }
            p
        })
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix(\"{}\")", self.as_bit_string())
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_bit_string())
    }
}

/// Assert a valid prefix length at most `ID_BITS` (compile-time guard for
/// generic call sites).
pub fn check_len(len: usize) {
    assert!(len <= ID_BITS);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptiny::prelude::*;
    use detrand::{rngs::StdRng, SeedableRng};

    #[test]
    fn of_id_matches_bit_string() {
        let id = Id::hash(b"object-1");
        let p = Prefix::of_id(&id, 10);
        assert_eq!(p.as_bit_string(), id.bit_prefix_string(10));
        assert!(p.matches(&id));
    }

    #[test]
    fn root_matches_everything() {
        let id = Id::hash(b"x");
        assert!(Prefix::ROOT.matches(&id));
        assert_eq!(Prefix::ROOT.len(), 0);
    }

    #[test]
    fn from_bit_str_roundtrip() {
        for s in ["", "0", "1", "0010", "1111000010"] {
            assert_eq!(Prefix::from_bit_str(s).as_bit_string(), s);
        }
    }

    #[test]
    fn child_parent_roundtrip() {
        let p = Prefix::from_bit_str("010");
        assert_eq!(p.child(false).as_bit_string(), "0100");
        assert_eq!(p.child(true).as_bit_string(), "0101");
        assert_eq!(p.child(true).parent().unwrap(), p);
        assert_eq!(Prefix::ROOT.parent(), None);
    }

    #[test]
    fn tail_is_masked_so_equality_works() {
        let id1 = Id::hash(b"a");
        // Two ids sharing first 4 bits must yield equal 4-bit prefixes even
        // if later bits differ. Construct by truncation of longer prefixes.
        let p8 = Prefix::of_id(&id1, 8);
        let p4a = p8.truncate(4);
        let p4b = Prefix::of_id(&id1, 4);
        assert_eq!(p4a, p4b);
    }

    #[test]
    fn children_gateways_differ_from_parent() {
        let p = Prefix::from_bit_str("000");
        let g = p.gateway_id();
        assert_ne!(g, p.child(false).gateway_id());
        assert_ne!(g, p.child(true).gateway_id());
        assert_ne!(p.child(false).gateway_id(), p.child(true).gateway_id());
    }

    #[test]
    fn gateway_length_tagged() {
        // "0" followed by nothing must differ from "00".
        assert_ne!(
            Prefix::from_bit_str("0").gateway_id(),
            Prefix::from_bit_str("00").gateway_id()
        );
    }

    #[test]
    fn enumerate_covers_space() {
        let all: Vec<_> = Prefix::enumerate(4).collect();
        assert_eq!(all.len(), 16);
        let strings: std::collections::BTreeSet<_> =
            all.iter().map(|p| p.as_bit_string()).collect();
        assert_eq!(strings.len(), 16);
        assert!(strings.contains("0000") && strings.contains("1111"));
    }

    #[test]
    fn wire_roundtrip() {
        for s in ["", "1", "0101", "111100001111"] {
            let p = Prefix::from_bit_str(s);
            assert_eq!(Prefix::from_wire_bytes(&p.wire_bytes()).unwrap(), p);
        }
    }

    #[test]
    fn wire_rejects_bad_input() {
        let mut raw = Prefix::from_bit_str("01").wire_bytes();
        raw[0] = 65; // over max length
        assert!(Prefix::from_wire_bytes(&raw).is_err());
        let mut raw = Prefix::from_bit_str("01").wire_bytes();
        raw[8] = 0xFF; // unmasked tail
        assert!(Prefix::from_wire_bytes(&raw).is_err());
    }

    #[test]
    fn is_prefix_of_trie_order() {
        let a = Prefix::from_bit_str("01");
        let b = Prefix::from_bit_str("0110");
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
        assert!(Prefix::ROOT.is_prefix_of(&b));
    }

    proptiny! {
        #[test]
        fn prop_of_id_matches(seed in any::<u64>(), len in 0usize..=64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let id = Id::random(&mut rng);
            let p = Prefix::of_id(&id, len);
            prop_assert!(p.matches(&id));
            prop_assert_eq!(p.len(), len);
        }

        #[test]
        fn prop_sibling_partition(seed in any::<u64>(), len in 0usize..63) {
            // Exactly one of the two children of an id's prefix matches it.
            let mut rng = StdRng::seed_from_u64(seed);
            let id = Id::random(&mut rng);
            let p = Prefix::of_id(&id, len);
            let m0 = p.child(false).matches(&id);
            let m1 = p.child(true).matches(&id);
            prop_assert!(m0 ^ m1);
        }

        #[test]
        fn prop_truncate_is_ancestor(seed in any::<u64>(), len in 1usize..=64, cut in 0usize..=64) {
            prop_assume!(cut <= len);
            let mut rng = StdRng::seed_from_u64(seed);
            let id = Id::random(&mut rng);
            let p = Prefix::of_id(&id, len);
            let t = p.truncate(cut);
            prop_assert!(t.is_prefix_of(&p));
            prop_assert!(t.matches(&id));
        }

        #[test]
        fn prop_gateway_deterministic(s in "[01]{0,32}") {
            let p = Prefix::from_bit_str(&s);
            prop_assert_eq!(p.gateway_id(), Prefix::from_bit_str(&s).gateway_id());
        }
    }
}
