//! Identifier substrate for PeerTrack.
//!
//! The paper hashes every raw object id (an EPC code) with SHA-1 so that
//! object ids and node ids live in the same 160-bit Chord key space
//! (§III, footnote 1). Groups are formed by the `Lp`-bit *prefix* of the
//! hashed id (§IV-A), and a group's gateway node is the DHT successor of
//! `hash(prefix)`.
//!
//! This crate provides, from scratch (no external crypto dependency):
//!
//! * [`Id`] — a 160-bit ring identifier with the modular arithmetic Chord
//!   needs (clockwise intervals, `+ 2^k`, distance);
//! * [`Sha1`] — the SHA-1 function used to derive ids;
//! * [`EpcCode`] — SGTIN-96 electronic product codes for realistic raw ids;
//! * [`Prefix`] — bit-string prefixes of ids, the group keys of §IV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epc;
pub mod id;
pub mod intern;
pub mod prefix;
pub mod sha1;
pub mod sscc;

pub use epc::EpcCode;
pub use id::Id;
pub use intern::Interner;
pub use prefix::Prefix;
pub use sha1::Sha1;
pub use sscc::SsccCode;

/// Number of bits in an identifier (`L` in the paper's Fig. 3).
pub const ID_BITS: usize = 160;

/// Number of bytes in an identifier.
pub const ID_BYTES: usize = ID_BITS / 8;
