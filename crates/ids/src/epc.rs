//! SGTIN-96 Electronic Product Codes.
//!
//! The paper's objects are "goods attached with RFID tags" carrying EPC
//! identifiers (§I). Raw ids are EPCs; the system hashes them with SHA-1
//! into the ring (§III footnote 1). We implement the EPC Tag Data
//! Standard's SGTIN-96 layout so workloads carry realistic raw ids:
//!
//! ```text
//! | header 8 | filter 3 | partition 3 | company prefix 20-40 | item ref 4-24 | serial 38 |
//! ```
//!
//! (96 bits total; the company-prefix/item-reference split is governed by
//! the partition value, per TDS §14.5.1.)

use crate::id::Id;
use std::fmt;

/// SGTIN-96 header value (TDS: `0011 0000`).
pub const SGTIN96_HEADER: u8 = 0x30;

/// Company-prefix / item-reference bit widths for each partition value.
/// `(company_bits, item_bits)`; company digits = 12-partition.
const PARTITION_TABLE: [(u32, u32); 7] = [
    (40, 4), // partition 0: 12-digit company prefix
    (37, 7),
    (34, 10),
    (30, 14),
    (27, 17),
    (24, 20),
    (20, 24), // partition 6: 6-digit company prefix
];

/// A 96-bit SGTIN EPC.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EpcCode {
    /// Filter value (3 bits): 1 = point of sale item, 2 = full case, etc.
    pub filter: u8,
    /// Partition value (0..=6), selects the field widths.
    pub partition: u8,
    /// GS1 company prefix (fits the partition's width).
    pub company: u64,
    /// Item reference (fits the partition's width).
    pub item: u32,
    /// 38-bit serial number.
    pub serial: u64,
}

/// Errors from EPC construction/decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpcError {
    /// Partition must be in `0..=6`.
    BadPartition(u8),
    /// Field exceeds the width allowed by the partition.
    FieldOverflow(&'static str),
    /// Binary decoding saw the wrong header byte.
    BadHeader(u8),
}

impl fmt::Display for EpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EpcError::BadPartition(p) => write!(f, "invalid SGTIN partition {p}"),
            EpcError::FieldOverflow(which) => write!(f, "EPC field {which} overflows its width"),
            EpcError::BadHeader(h) => write!(f, "not an SGTIN-96 header: {h:#04x}"),
        }
    }
}

impl std::error::Error for EpcError {}

impl EpcCode {
    /// Construct a validated SGTIN-96.
    pub fn new(
        filter: u8,
        partition: u8,
        company: u64,
        item: u32,
        serial: u64,
    ) -> Result<EpcCode, EpcError> {
        if partition > 6 {
            return Err(EpcError::BadPartition(partition));
        }
        let (cbits, ibits) = PARTITION_TABLE[partition as usize];
        if filter > 7 {
            return Err(EpcError::FieldOverflow("filter"));
        }
        if cbits < 64 && company >= (1u64 << cbits) {
            return Err(EpcError::FieldOverflow("company"));
        }
        if item as u64 >= (1u64 << ibits) {
            return Err(EpcError::FieldOverflow("item"));
        }
        if serial >= (1u64 << 38) {
            return Err(EpcError::FieldOverflow("serial"));
        }
        Ok(EpcCode { filter, partition, company, item, serial })
    }

    /// Pack into the canonical 12-byte binary encoding.
    pub fn to_bytes(&self) -> [u8; 12] {
        let (cbits, ibits) = PARTITION_TABLE[self.partition as usize];
        let mut acc: u128 = 0;
        let mut used = 0u32;
        let mut push = |val: u128, bits: u32| {
            acc = (acc << bits) | (val & ((1u128 << bits) - 1));
            used += bits;
        };
        push(SGTIN96_HEADER as u128, 8);
        push(self.filter as u128, 3);
        push(self.partition as u128, 3);
        push(self.company as u128, cbits);
        push(self.item as u128, ibits);
        push(self.serial as u128, 38);
        debug_assert_eq!(used, 96);
        let mut out = [0u8; 12];
        for (i, b) in out.iter_mut().enumerate() {
            *b = ((acc >> (88 - 8 * i)) & 0xFF) as u8;
        }
        out
    }

    /// Decode the canonical binary encoding.
    pub fn from_bytes(bytes: &[u8; 12]) -> Result<EpcCode, EpcError> {
        let mut acc: u128 = 0;
        for &b in bytes {
            acc = (acc << 8) | b as u128;
        }
        let mut pos = 96u32;
        let mut pull = |bits: u32| -> u128 {
            pos -= bits;
            (acc >> pos) & ((1u128 << bits) - 1)
        };
        let header = pull(8) as u8;
        if header != SGTIN96_HEADER {
            return Err(EpcError::BadHeader(header));
        }
        let filter = pull(3) as u8;
        let partition = pull(3) as u8;
        if partition > 6 {
            return Err(EpcError::BadPartition(partition));
        }
        let (cbits, ibits) = PARTITION_TABLE[partition as usize];
        let company = pull(cbits) as u64;
        let item = pull(ibits) as u32;
        let serial = pull(38) as u64;
        EpcCode::new(filter, partition, company, item, serial)
    }

    /// The EPC "pure identity" URI, e.g.
    /// `urn:epc:id:sgtin:0614141.812345.6789`.
    pub fn to_uri(&self) -> String {
        format!(
            "urn:epc:id:sgtin:{:0cw$}.{:0iw$}.{}",
            self.company,
            self.item,
            self.serial,
            cw = (12 - self.partition) as usize,
            iw = (self.partition + 1) as usize,
        )
    }

    /// Hash this raw id into the 160-bit ring, as §III footnote 1
    /// prescribes ("we hash the object's raw id using the SHA-1 function").
    pub fn object_id(&self) -> Id {
        Id::hash(&self.to_bytes())
    }
}

impl fmt::Debug for EpcCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EpcCode({})", self.to_uri())
    }
}

impl fmt::Display for EpcCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_uri())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptiny::prelude::*;

    #[test]
    fn roundtrip_simple() {
        let e = EpcCode::new(1, 5, 614141, 812345, 6789).unwrap();
        let b = e.to_bytes();
        assert_eq!(EpcCode::from_bytes(&b).unwrap(), e);
        assert_eq!(b[0], SGTIN96_HEADER);
    }

    #[test]
    fn uri_format() {
        let e = EpcCode::new(1, 5, 614141, 812345, 6789).unwrap();
        assert_eq!(e.to_uri(), "urn:epc:id:sgtin:0614141.812345.6789");
    }

    #[test]
    fn rejects_bad_partition() {
        assert_eq!(
            EpcCode::new(1, 7, 1, 1, 1).unwrap_err(),
            EpcError::BadPartition(7)
        );
    }

    #[test]
    fn rejects_field_overflow() {
        // Partition 6 allows 20 company bits.
        assert_eq!(
            EpcCode::new(1, 6, 1 << 20, 1, 1).unwrap_err(),
            EpcError::FieldOverflow("company")
        );
        assert_eq!(
            EpcCode::new(1, 0, 1, 1 << 4, 1).unwrap_err(),
            EpcError::FieldOverflow("item")
        );
        assert_eq!(
            EpcCode::new(1, 0, 1, 1, 1 << 38).unwrap_err(),
            EpcError::FieldOverflow("serial")
        );
    }

    #[test]
    fn rejects_bad_header() {
        let mut b = EpcCode::new(1, 5, 1, 1, 1).unwrap().to_bytes();
        b[0] = 0x31;
        assert_eq!(EpcCode::from_bytes(&b).unwrap_err(), EpcError::BadHeader(0x31));
    }

    #[test]
    fn distinct_serials_distinct_object_ids() {
        let a = EpcCode::new(1, 5, 614141, 1, 1).unwrap().object_id();
        let b = EpcCode::new(1, 5, 614141, 1, 2).unwrap().object_id();
        assert_ne!(a, b);
    }

    proptiny! {
        #[test]
        fn prop_roundtrip(
            filter in 0u8..=7,
            partition in 0u8..=6,
            company in any::<u64>(),
            item in any::<u32>(),
            serial in 0u64..(1 << 38),
        ) {
            let (cbits, ibits) = PARTITION_TABLE[partition as usize];
            let company = if cbits >= 64 { company } else { company & ((1u64 << cbits) - 1) };
            let item = (item as u64 & ((1u64 << ibits) - 1)) as u32;
            let e = EpcCode::new(filter, partition, company, item, serial).unwrap();
            prop_assert_eq!(EpcCode::from_bytes(&e.to_bytes()).unwrap(), e);
        }
    }
}
