//! A from-scratch SHA-1 implementation (FIPS 180-1).
//!
//! The paper (§III footnote 1, §IV-A) derives both object and group ids
//! with SHA-1. Cryptographic strength is irrelevant here — what matters is
//! that ids are spread uniformly over the 160-bit ring so that Eq. 4's
//! uniformity assumption holds — but using the exact function the paper
//! names keeps the reproduction faithful.
//!
//! The implementation is the streaming variant: bytes may be fed
//! incrementally with [`Sha1::update`] and the digest extracted with
//! [`Sha1::finalize`]. A one-shot helper [`Sha1::digest`] covers the common
//! case.

/// Streaming SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes fed so far.
    len: u64,
    /// Partially filled block.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Create a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Feed `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;

        // Top up a partially filled block first.
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }

        // Whole blocks straight from the input.
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }

        // Stash the remainder.
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Consume the hasher and return the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // `update` would re-count the length bytes; write them directly.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;

        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            hex(&Sha1::digest(b"The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0usize, 1, 7, 63, 64, 65, 1000, 9999, 10_000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn boundary_lengths_are_consistent() {
        // Lengths around the 55/56/64-byte padding boundaries are the
        // classic SHA-1 implementation bug sites; check self-consistency.
        for n in 50..70 {
            let data = vec![0xAB; n];
            let one = Sha1::digest(&data);
            let mut h = Sha1::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), one, "length {n}");
        }
    }
}
