//! 160-bit ring identifiers.
//!
//! Both nodes and (hashed) objects live in the same identifier space
//! (§III footnote 1). Chord (§III, \[26\]) needs three pieces of arithmetic
//! on this space, all modulo `2^160`:
//!
//! * total order ([`Ord`]) for successor selection,
//! * clockwise interval membership ([`Id::in_interval_oc`] and friends)
//!   for routing and stabilization,
//! * `n + 2^k` ([`Id::add_pow2`]) for finger-table targets.
//!
//! Ids are stored big-endian so that byte-wise comparison equals numeric
//! comparison and the prefix of the *bit string* (used for grouping in
//! §IV-A) is the prefix of the byte array.

use crate::sha1::Sha1;
use crate::{ID_BITS, ID_BYTES};
use detrand::Rng;
use std::fmt;

/// A 160-bit identifier on the Chord ring.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Id(pub [u8; ID_BYTES]);

impl Id {
    /// The identifier with all bits zero.
    pub const ZERO: Id = Id([0u8; ID_BYTES]);

    /// The identifier with all bits one (`2^160 - 1`).
    pub const MAX: Id = Id([0xFF; ID_BYTES]);

    /// Hash arbitrary bytes into the identifier space with SHA-1,
    /// exactly as the paper derives object and group ids.
    pub fn hash(data: &[u8]) -> Id {
        Id(Sha1::digest(data))
    }

    /// Hash a string key (e.g. a node's external address or a prefix's
    /// canonical form like `"00"`).
    pub fn hash_str(key: &str) -> Id {
        Id::hash(key.as_bytes())
    }

    /// Draw a uniformly random identifier.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Id {
        let mut b = [0u8; ID_BYTES];
        rng.fill(&mut b[..]);
        Id(b)
    }

    /// Build an id from a `u64`, placed in the low-order bytes.
    /// Handy for readable tests.
    pub fn from_u64(v: u64) -> Id {
        let mut b = [0u8; ID_BYTES];
        b[ID_BYTES - 8..].copy_from_slice(&v.to_be_bytes());
        Id(b)
    }

    /// Read the low-order 64 bits.
    pub fn low_u64(&self) -> u64 {
        let mut w = [0u8; 8];
        w.copy_from_slice(&self.0[ID_BYTES - 8..]);
        u64::from_be_bytes(w)
    }

    /// Bit `i` counting from the most significant (bit 0 is the MSB).
    /// Grouping by `Lp`-bit prefixes (§IV-A) reads bits in this order.
    pub fn bit(&self, i: usize) -> bool {
        debug_assert!(i < ID_BITS);
        (self.0[i / 8] >> (7 - i % 8)) & 1 == 1
    }

    /// `(self + 2^k) mod 2^160`, `k < 160`. Finger `i` of node `n` targets
    /// `n + 2^i` (\[26\] §4.2; our fingers use `k = i`).
    pub fn add_pow2(&self, k: usize) -> Id {
        debug_assert!(k < ID_BITS);
        let mut out = self.0;
        let byte = ID_BYTES - 1 - k / 8;
        let mut carry = 1u16 << (k % 8);
        let mut i = byte as isize;
        while carry > 0 && i >= 0 {
            let sum = out[i as usize] as u16 + carry;
            out[i as usize] = (sum & 0xFF) as u8;
            carry = sum >> 8;
            i -= 1;
        }
        // Overflow past the MSB wraps around the ring (mod 2^160): drop it.
        Id(out)
    }

    /// `(self + 1) mod 2^160`.
    pub fn succ(&self) -> Id {
        let mut out = self.0;
        for b in out.iter_mut().rev() {
            let (v, ovf) = b.overflowing_add(1);
            *b = v;
            if !ovf {
                break;
            }
        }
        Id(out)
    }

    /// Clockwise distance from `self` to `to` on the ring
    /// (`(to - self) mod 2^160`).
    pub fn distance_to(&self, to: &Id) -> Id {
        let mut out = [0u8; ID_BYTES];
        let mut borrow = 0i16;
        for i in (0..ID_BYTES).rev() {
            let d = to.0[i] as i16 - self.0[i] as i16 - borrow;
            if d < 0 {
                out[i] = (d + 256) as u8;
                borrow = 1;
            } else {
                out[i] = d as u8;
                borrow = 0;
            }
        }
        Id(out)
    }

    /// Membership in the *clockwise open-closed* interval `(a, b]`.
    /// This is the interval Chord uses to decide whether a key belongs to
    /// a successor. When `a == b` the interval is the whole ring.
    pub fn in_interval_oc(&self, a: &Id, b: &Id) -> bool {
        if a == b {
            return true;
        }
        if a < b {
            a < self && self <= b
        } else {
            self > a || self <= b
        }
    }

    /// Membership in the clockwise *open-open* interval `(a, b)`.
    /// When `a == b` the interval is the whole ring minus the endpoint.
    pub fn in_interval_oo(&self, a: &Id, b: &Id) -> bool {
        if a == b {
            return self != a;
        }
        if a < b {
            a < self && self < b
        } else {
            self > a || self < b
        }
    }

    /// Lowercase hex rendering of the full 160 bits.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// The first `len` bits as a `'0'`/`'1'` string — the canonical group
    /// id of §IV-A ("objects belonging to the group \"00\"").
    pub fn bit_prefix_string(&self, len: usize) -> String {
        (0..len).map(|i| if self.bit(i) { '1' } else { '0' }).collect()
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Eight hex chars identify an id unambiguously in test logs.
        write!(f, "Id({}..)", &self.to_hex()[..8])
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptiny::prelude::*;
    use detrand::{rngs::StdRng, SeedableRng};

    #[test]
    fn from_u64_roundtrip() {
        for v in [0u64, 1, 42, u64::MAX] {
            assert_eq!(Id::from_u64(v).low_u64(), v);
        }
    }

    #[test]
    fn ordering_matches_numeric() {
        assert!(Id::from_u64(1) < Id::from_u64(2));
        assert!(Id::ZERO < Id::MAX);
        let mut hi = [0u8; ID_BYTES];
        hi[0] = 1; // 2^152
        assert!(Id(hi) > Id::from_u64(u64::MAX));
    }

    #[test]
    fn add_pow2_low_bits() {
        assert_eq!(Id::ZERO.add_pow2(0), Id::from_u64(1));
        assert_eq!(Id::ZERO.add_pow2(10), Id::from_u64(1024));
        assert_eq!(Id::from_u64(1).add_pow2(1), Id::from_u64(3));
    }

    #[test]
    fn add_pow2_carry_chain() {
        // 0xFF..FF + 1 wraps to zero.
        assert_eq!(Id::MAX.add_pow2(0), Id::ZERO);
        // 0x00FF + 1 = 0x0100 (carry across one byte).
        assert_eq!(Id::from_u64(0xFF).add_pow2(0), Id::from_u64(0x100));
    }

    #[test]
    fn add_pow2_msb_wraps() {
        // Adding 2^159 twice returns to the start (mod 2^160).
        let x = Id::from_u64(7);
        assert_eq!(x.add_pow2(159).add_pow2(159), x);
    }

    #[test]
    fn succ_wraps() {
        assert_eq!(Id::MAX.succ(), Id::ZERO);
        assert_eq!(Id::from_u64(9).succ(), Id::from_u64(10));
    }

    #[test]
    fn interval_oc_basic() {
        let (a, b) = (Id::from_u64(10), Id::from_u64(20));
        assert!(Id::from_u64(15).in_interval_oc(&a, &b));
        assert!(Id::from_u64(20).in_interval_oc(&a, &b));
        assert!(!Id::from_u64(10).in_interval_oc(&a, &b));
        assert!(!Id::from_u64(25).in_interval_oc(&a, &b));
    }

    #[test]
    fn interval_oc_wrapping() {
        // Interval (MAX-ish, 5] wraps through zero.
        let a = Id::from_u64(u64::MAX);
        let b = Id::from_u64(5);
        assert!(Id::from_u64(0).in_interval_oc(&a, &b));
        assert!(Id::from_u64(5).in_interval_oc(&a, &b));
        assert!(Id::MAX.in_interval_oc(&a, &b)); // > a numerically
        assert!(!Id::from_u64(6).in_interval_oc(&a, &b));
    }

    #[test]
    fn interval_degenerate_is_full_ring() {
        let a = Id::from_u64(42);
        assert!(Id::from_u64(999).in_interval_oc(&a, &a));
        assert!(a.in_interval_oc(&a, &a));
        assert!(!a.in_interval_oo(&a, &a));
        assert!(Id::from_u64(999).in_interval_oo(&a, &a));
    }

    #[test]
    fn bit_reads_msb_first() {
        let mut b = [0u8; ID_BYTES];
        b[0] = 0b1010_0000;
        let id = Id(b);
        assert!(id.bit(0));
        assert!(!id.bit(1));
        assert!(id.bit(2));
        assert!(!id.bit(3));
        assert_eq!(id.bit_prefix_string(4), "1010");
    }

    #[test]
    fn hash_matches_sha1() {
        assert_eq!(Id::hash(b"abc").0, Sha1::digest(b"abc"));
        assert_eq!(Id::hash_str("abc"), Id::hash(b"abc"));
    }

    #[test]
    fn distance_to_is_clockwise() {
        let a = Id::from_u64(10);
        let b = Id::from_u64(25);
        assert_eq!(a.distance_to(&b), Id::from_u64(15));
        // Wrapping: distance from 25 back around to 10.
        let d = b.distance_to(&a);
        // d = 2^160 - 15; check by adding 15 back via succ.
        let mut x = d;
        for _ in 0..15 {
            x = x.succ();
        }
        assert_eq!(x, Id::ZERO);
    }

    proptiny! {
        #[test]
        fn prop_interval_oc_complement(x in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
            // Every point is in exactly one of (a,b] and (b,a] unless it
            // equals an endpoint situation; with a != b the two half-open
            // intervals partition the ring.
            let (x, a, b) = (Id::from_u64(x), Id::from_u64(a), Id::from_u64(b));
            prop_assume!(a != b);
            let in_ab = x.in_interval_oc(&a, &b);
            let in_ba = x.in_interval_oc(&b, &a);
            prop_assert!(in_ab ^ in_ba);
        }

        #[test]
        fn prop_add_pow2_matches_u64(v in 0u64..u64::MAX / 2, k in 0usize..62) {
            prop_assume!(v.checked_add(1u64 << k).is_some());
            prop_assert_eq!(
                Id::from_u64(v).add_pow2(k),
                Id::from_u64(v + (1u64 << k))
            );
        }

        #[test]
        fn prop_distance_roundtrip(a in any::<u64>(), steps in 0usize..1000) {
            // a + distance(a, b) == b, verified via repeated succ.
            let ida = Id::from_u64(a);
            let mut idb = ida;
            for _ in 0..steps {
                idb = idb.succ();
            }
            prop_assert_eq!(ida.distance_to(&idb), Id::from_u64(steps as u64));
        }

        #[test]
        fn prop_prefix_string_len(seed in any::<u64>(), len in 0usize..160) {
            let mut rng = StdRng::seed_from_u64(seed);
            let id = Id::random(&mut rng);
            prop_assert_eq!(id.bit_prefix_string(len).len(), len);
        }
    }
}
