//! SSCC-96 — Serial Shipping Container Codes.
//!
//! Pallets, cases and totes carry SSCC tags rather than item-level
//! SGTINs; "objects often move in groups" (§III) precisely because a
//! whole SSCC-tagged pallet crosses a dock door at once. Layout (EPC
//! TDS §14.6.1):
//!
//! ```text
//! | header 8 | filter 3 | partition 3 | company prefix 20-40 | serial ref 38-18 | reserved 24 |
//! ```

use crate::id::Id;
use std::fmt;

/// SSCC-96 header value (TDS: `0011 0001`).
pub const SSCC96_HEADER: u8 = 0x31;

/// `(company_bits, serial_bits)` per partition value; company digits =
/// 12 − partition.
const PARTITION_TABLE: [(u32, u32); 7] =
    [(40, 18), (37, 21), (34, 24), (30, 28), (27, 31), (24, 34), (20, 38)];

/// A 96-bit SSCC.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SsccCode {
    /// Filter value (3 bits); 2 = "full case", typical for pallets.
    pub filter: u8,
    /// Partition value (0..=6).
    pub partition: u8,
    /// GS1 company prefix.
    pub company: u64,
    /// Serial reference for the container.
    pub serial: u64,
}

impl SsccCode {
    /// Construct a validated SSCC-96.
    pub fn new(filter: u8, partition: u8, company: u64, serial: u64) -> Result<SsccCode, crate::epc::EpcError> {
        use crate::epc::EpcError;
        if partition > 6 {
            return Err(EpcError::BadPartition(partition));
        }
        let (cbits, sbits) = PARTITION_TABLE[partition as usize];
        if filter > 7 {
            return Err(EpcError::FieldOverflow("filter"));
        }
        if cbits < 64 && company >= (1u64 << cbits) {
            return Err(EpcError::FieldOverflow("company"));
        }
        if serial >= (1u64 << sbits) {
            return Err(EpcError::FieldOverflow("serial"));
        }
        Ok(SsccCode { filter, partition, company, serial })
    }

    /// Pack into the canonical 12-byte binary encoding.
    pub fn to_bytes(&self) -> [u8; 12] {
        let (cbits, sbits) = PARTITION_TABLE[self.partition as usize];
        let mut acc: u128 = 0;
        let mut push = |val: u128, bits: u32| {
            acc = (acc << bits) | (val & ((1u128 << bits) - 1));
        };
        push(SSCC96_HEADER as u128, 8);
        push(self.filter as u128, 3);
        push(self.partition as u128, 3);
        push(self.company as u128, cbits);
        push(self.serial as u128, sbits);
        push(0, 24); // reserved
        let mut out = [0u8; 12];
        for (i, b) in out.iter_mut().enumerate() {
            *b = ((acc >> (88 - 8 * i)) & 0xFF) as u8;
        }
        out
    }

    /// Decode the canonical binary encoding.
    pub fn from_bytes(bytes: &[u8; 12]) -> Result<SsccCode, crate::epc::EpcError> {
        use crate::epc::EpcError;
        let mut acc: u128 = 0;
        for &b in bytes {
            acc = (acc << 8) | b as u128;
        }
        let mut pos = 96u32;
        let mut pull = |bits: u32| -> u128 {
            pos -= bits;
            (acc >> pos) & ((1u128 << bits) - 1)
        };
        let header = pull(8) as u8;
        if header != SSCC96_HEADER {
            return Err(EpcError::BadHeader(header));
        }
        let filter = pull(3) as u8;
        let partition = pull(3) as u8;
        if partition > 6 {
            return Err(EpcError::BadPartition(partition));
        }
        let (cbits, sbits) = PARTITION_TABLE[partition as usize];
        let company = pull(cbits) as u64;
        let serial = pull(sbits) as u64;
        SsccCode::new(filter, partition, company, serial)
    }

    /// Pure-identity URI, e.g. `urn:epc:id:sscc:0614141.1234567890`.
    pub fn to_uri(&self) -> String {
        format!(
            "urn:epc:id:sscc:{:0cw$}.{}",
            self.company,
            self.serial,
            cw = (12 - self.partition) as usize,
        )
    }

    /// Hash into the 160-bit ring, like any other raw id.
    pub fn object_id(&self) -> Id {
        Id::hash(&self.to_bytes())
    }
}

impl fmt::Debug for SsccCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SsccCode({})", self.to_uri())
    }
}

impl fmt::Display for SsccCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_uri())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epc::EpcError;
    use proptiny::prelude::*;

    #[test]
    fn roundtrip_simple() {
        let c = SsccCode::new(2, 5, 614141, 987654).unwrap();
        let b = c.to_bytes();
        assert_eq!(b[0], SSCC96_HEADER);
        assert_eq!(SsccCode::from_bytes(&b).unwrap(), c);
        assert_eq!(c.to_uri(), "urn:epc:id:sscc:0614141.987654");
    }

    #[test]
    fn rejects_invalid_fields() {
        assert_eq!(SsccCode::new(2, 7, 1, 1).unwrap_err(), EpcError::BadPartition(7));
        assert_eq!(
            SsccCode::new(2, 6, 1 << 20, 1).unwrap_err(),
            EpcError::FieldOverflow("company")
        );
        assert_eq!(
            SsccCode::new(2, 0, 1, 1 << 18).unwrap_err(),
            EpcError::FieldOverflow("serial")
        );
    }

    #[test]
    fn sscc_and_sgtin_ids_never_collide() {
        // Different headers ⇒ different bytes ⇒ (SHA-1) different ids.
        let sscc = SsccCode::new(2, 5, 614141, 42).unwrap();
        let sgtin = crate::epc::EpcCode::new(1, 5, 614141, 42, 42).unwrap();
        assert_ne!(sscc.object_id(), sgtin.object_id());
    }

    proptiny! {
        #[test]
        fn prop_roundtrip(
            filter in 0u8..=7,
            partition in 0u8..=6,
            company in any::<u64>(),
            serial in any::<u64>(),
        ) {
            let (cbits, sbits) = PARTITION_TABLE[partition as usize];
            let company = if cbits >= 64 { company } else { company & ((1u64 << cbits) - 1) };
            let serial = serial & ((1u64 << sbits) - 1);
            let c = SsccCode::new(filter, partition, company, serial).unwrap();
            prop_assert_eq!(SsccCode::from_bytes(&c.to_bytes()).unwrap(), c);
        }
    }
}
