//! Id interning: dense `u32` handles for 160-bit identifiers.
//!
//! At 10⁷ objects, keying hot per-site state by full 20-byte [`Id`]s
//! through nested hash maps dominates both memory and lookup time. The
//! [`Interner`] assigns each distinct id a dense `u32` handle — an
//! index into an append-only table — so hot-path state can live in flat
//! `Vec`s indexed by handle, and protocol messages can ship 4-byte
//! handles where the full id is already pinned by an earlier exchange.
//!
//! The reverse index is a power-of-two open-addressed probe table
//! (linear probing, ≤ 50% load), which keeps `intern` at one hash plus
//! a short scan with no per-entry allocation. Handles are assigned in
//! first-appearance order, so two runs that intern the same id sequence
//! assign identical handles — interning is deterministic, as required
//! by the simulator's byte-identity gates.

use crate::Id;

/// Sentinel for an empty probe-table slot.
const EMPTY: u32 = u32::MAX;

/// An append-only table assigning dense `u32` handles to [`Id`]s.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    /// Handle → id (handle = index; append-only).
    table: Vec<Id>,
    /// Open-addressed probe index over `table`, power-of-two sized.
    index: Vec<u32>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// An empty interner with room for `cap` ids before rehashing.
    pub fn with_capacity(cap: usize) -> Interner {
        let slots = (cap * 2).next_power_of_two().max(16);
        Interner { table: Vec::with_capacity(cap), index: vec![EMPTY; slots] }
    }

    /// Number of distinct ids interned.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The handle for `id`, assigning the next free one on first sight.
    pub fn intern(&mut self, id: &Id) -> u32 {
        if self.index.is_empty() || self.table.len() * 2 >= self.index.len() {
            self.grow();
        }
        let mask = self.index.len() - 1;
        let mut slot = Self::probe_start(id, mask);
        loop {
            match self.index[slot] {
                EMPTY => {
                    let handle =
                        u32::try_from(self.table.len()).expect("more than u32::MAX interned ids");
                    self.table.push(*id);
                    self.index[slot] = handle;
                    return handle;
                }
                h if self.table[h as usize] == *id => return h,
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    /// The handle for `id` if it has been interned, without assigning.
    pub fn get(&self, id: &Id) -> Option<u32> {
        if self.index.is_empty() {
            return None;
        }
        let mask = self.index.len() - 1;
        let mut slot = Self::probe_start(id, mask);
        loop {
            match self.index[slot] {
                EMPTY => return None,
                h if self.table[h as usize] == *id => return Some(h),
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    /// The id behind `handle` (panics on a foreign handle).
    pub fn resolve(&self, handle: u32) -> &Id {
        &self.table[handle as usize]
    }

    /// Iterate `(handle, id)` pairs in handle (= first-appearance) order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Id)> {
        self.table.iter().enumerate().map(|(h, id)| (h as u32, id))
    }

    /// Fibonacci-hash the id's low 64 bits into a probe start slot. The
    /// low bits of our ids are SHA-1 output (already uniform), but the
    /// multiply keeps pathological inputs (e.g. `Id::from_u64` in
    /// tests) spread too.
    fn probe_start(id: &Id, mask: usize) -> usize {
        (id.low_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask
    }

    /// Double the probe table and reinsert every handle.
    fn grow(&mut self) {
        let slots = (self.index.len() * 2).max(16);
        let mask = slots - 1;
        let mut index = vec![EMPTY; slots];
        for (h, id) in self.table.iter().enumerate() {
            let mut slot = Self::probe_start(id, mask);
            while index[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            index[slot] = h as u32;
        }
        self.index = index;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut it = Interner::new();
        let a = Id::hash(b"a");
        let b = Id::hash(b"b");
        assert_eq!(it.intern(&a), 0);
        assert_eq!(it.intern(&b), 1);
        assert_eq!(it.intern(&a), 0, "re-interning returns the same handle");
        assert_eq!(it.len(), 2);
        assert_eq!(it.resolve(0), &a);
        assert_eq!(it.resolve(1), &b);
    }

    #[test]
    fn get_does_not_assign() {
        let mut it = Interner::new();
        let a = Id::hash(b"a");
        assert_eq!(it.get(&a), None);
        it.intern(&a);
        assert_eq!(it.get(&a), Some(0));
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn survives_growth_with_many_ids() {
        let mut it = Interner::with_capacity(4);
        let ids: Vec<Id> = (0..10_000u64).map(Id::from_u64).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(it.intern(id), i as u32);
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(it.get(id), Some(i as u32), "id {i} lost after growth");
            assert_eq!(it.resolve(i as u32), id);
        }
        let seen: Vec<u32> = it.iter().map(|(h, _)| h).collect();
        assert_eq!(seen.len(), 10_000);
        assert!(seen.windows(2).all(|w| w[0] + 1 == w[1]));
    }

    #[test]
    fn handles_are_first_appearance_order() {
        let mut a = Interner::new();
        let mut b = Interner::new();
        for v in [7u64, 3, 7, 9, 3, 1] {
            let id = Id::from_u64(v);
            assert_eq!(a.intern(&id), b.intern(&id), "interning must be deterministic");
        }
        assert_eq!(a.len(), 4);
    }
}
