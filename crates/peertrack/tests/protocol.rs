//! End-to-end protocol tests: IOP acquisition (§III), group indexing
//! (§IV), Data Triangles, split/merge, churn, and agreement with the
//! MOODS ground-truth oracle.

use moods::{Locate, MovementLog, ObjectId, SiteId, Trace};
use peertrack::{Builder, GroupConfig, IndexingMode, PrefixScheme};
use proptiny::prelude::*;
use detrand::{rngs::StdRng, Rng, SeedableRng};
use simnet::time::{ms, secs};
use simnet::{MsgClass, SimTime};

fn obj(n: u64) -> ObjectId {
    ObjectId::from_raw(&n.to_be_bytes())
}

/// Move `o` through `sites`, one arrival every `step`, starting at
/// `start`; records ground truth in `log`.
fn move_along(
    net: &mut peertrack::TraceableNetwork,
    log: &mut MovementLog,
    o: ObjectId,
    sites: &[SiteId],
    start: SimTime,
    step: SimTime,
) {
    let mut t = start;
    for &s in sites {
        net.schedule_capture(t, s, vec![o]);
        log.record(o, s, t);
        t += step;
    }
}

fn group_mode(n_max: usize, t_max: SimTime) -> IndexingMode {
    IndexingMode::Group(GroupConfig { n_max, t_max, ..GroupConfig::default() })
}

// ---------------------------------------------------------------------
// Individual indexing (§III)
// ---------------------------------------------------------------------

#[test]
fn individual_three_messages_per_move() {
    let mut net = Builder::new().sites(16).seed(1).mode(IndexingMode::Individual).build();
    let o = obj(42);
    let path: Vec<SiteId> = vec![SiteId(0), SiteId(3), SiteId(7), SiteId(11)];
    let mut log = MovementLog::new();
    move_along(&mut net, &mut log, o, &path, secs(1), secs(60));
    net.run_until_quiescent();

    // First arrival: M1 + M3 (no previous site). Each of the 3 moves:
    // M1 + M2 + M3 — except that a message whose destination happens to
    // be its sender (gateway == capturing/previous site) is free.
    // Compute the exact expectation from ring ownership.
    let gw_site = {
        let owner = net.ring().successor_of(&o.id()).unwrap();
        SiteId(net.ring().app_index_of(&owner).unwrap() as u32)
    };
    let mut expect_m1 = 0u64; // capturing site -> gateway
    let mut expect_m2 = 0u64; // gateway -> previous site
    let mut expect_m3 = 0u64; // gateway -> capturing site
    for (i, &s) in path.iter().enumerate() {
        if s != gw_site {
            expect_m1 += 1;
            expect_m3 += 1;
        }
        if i > 0 && path[i - 1] != gw_site {
            expect_m2 += 1;
        }
    }
    let m = net.metrics();
    assert_eq!(m.messages_of(MsgClass::IndexReport), expect_m1, "one M1 per remote arrival");
    assert_eq!(
        m.messages_of(MsgClass::IopUpdate),
        expect_m2 + expect_m3,
        "M2 per move, M3 per arrival (self-sends free)"
    );
    assert_eq!(net.anomalies(), peertrack::world::Anomalies::default());
}

#[test]
fn individual_iop_links_thread_the_path() {
    let mut net = Builder::new().sites(16).seed(2).mode(IndexingMode::Individual).build();
    let o = obj(7);
    let path = vec![SiteId(1), SiteId(5), SiteId(9)];
    let mut log = MovementLog::new();
    move_along(&mut net, &mut log, o, &path, secs(1), secs(60));
    net.run_until_quiescent();

    // n1: from=None, to=n5; n5: from=n1, to=n9; n9: from=n5, to=None.
    let r1 = net.world.sites[1].iop.latest(o).unwrap();
    assert_eq!(r1.from, None);
    assert_eq!(r1.to.unwrap().site, SiteId(5));
    let r5 = net.world.sites[5].iop.latest(o).unwrap();
    assert_eq!(r5.from.unwrap().site, SiteId(1));
    assert_eq!(r5.to.unwrap().site, SiteId(9));
    let r9 = net.world.sites[9].iop.latest(o).unwrap();
    assert_eq!(r9.from.unwrap().site, SiteId(5));
    assert_eq!(r9.to, None);
}

#[test]
fn individual_locate_and_trace_match_oracle() {
    let mut net = Builder::new().sites(24).seed(3).mode(IndexingMode::Individual).build();
    let mut log = MovementLog::new();
    let o = obj(1);
    let path: Vec<SiteId> = vec![2, 4, 8, 16, 21].into_iter().map(SiteId).collect();
    move_along(&mut net, &mut log, o, &path, secs(10), secs(100));
    net.run_until_quiescent();

    for t_ms in (0..600_000).step_by(7_000) {
        let t = ms(t_ms);
        let (got, stats) = net.locate(SiteId(0), o, t);
        assert_eq!(got, log.locate(o, t), "locate at {t}");
        assert!(stats.complete);
    }
    let (p, stats) = net.trace(SiteId(13), o, SimTime::ZERO, SimTime::INFINITY);
    assert_eq!(p, log.trace(o, SimTime::ZERO, SimTime::INFINITY));
    assert!(stats.complete);
    assert!(stats.messages > 0);
}

// ---------------------------------------------------------------------
// Group indexing (§IV)
// ---------------------------------------------------------------------

#[test]
fn group_mode_batches_cut_message_count() {
    let n_objects = 2_000u64;
    let run = |mode: IndexingMode| -> u64 {
        let mut net = Builder::new().sites(64).seed(4).mode(mode).build();
        let objects: Vec<ObjectId> = (0..n_objects).map(obj).collect();
        net.schedule_capture(secs(1), SiteId(0), objects);
        net.run_until_quiescent();
        net.metrics().indexing_messages()
    };
    let individual = run(IndexingMode::Individual);
    let group = run(group_mode(4096, ms(500)));
    assert!(
        group * 3 < individual,
        "group indexing ({group}) should be far cheaper than individual ({individual})"
    );
}

#[test]
fn group_window_flushes_by_timer() {
    let mut net = Builder::new().sites(8).seed(5).mode(group_mode(10_000, ms(200))).build();
    net.capture(SiteId(2), &[obj(1), obj(2)]);
    assert_eq!(net.metrics().indexing_messages(), 0, "still buffered");
    net.run_until(ms(199));
    assert_eq!(net.metrics().indexing_messages(), 0, "Tmax not reached");
    net.run_until_quiescent();
    assert!(net.metrics().indexing_messages() > 0, "timer flushed the window");
}

#[test]
fn group_window_flushes_by_count() {
    let mut net = Builder::new().sites(8).seed(6).mode(group_mode(3, secs(3600))).build();
    net.capture(SiteId(1), &[obj(1), obj(2)]);
    assert_eq!(net.metrics().indexing_messages(), 0);
    net.capture(SiteId(1), &[obj(3)]); // Nmax=3 reached
    // Flush happens immediately (messages sent), delivery needs event
    // processing.
    assert!(net.metrics().indexing_messages() > 0, "Nmax flush is immediate");
    net.run_until_quiescent();
    // The Tmax timer was cancelled — quiescence must not wait an hour.
    assert!(net.now() < secs(60), "cancelled timer must not delay quiescence");
}

#[test]
fn group_locate_trace_match_oracle() {
    let mut net = Builder::new().sites(32).seed(7).mode(group_mode(256, ms(300))).build();
    let mut log = MovementLog::new();
    let mut rng = StdRng::seed_from_u64(99);
    // 40 objects, each moving through 4–8 random sites.
    for i in 0..40u64 {
        let o = obj(i);
        let hops = rng.gen_range(4..=8);
        let path: Vec<SiteId> = (0..hops).map(|_| SiteId(rng.gen_range(0..32))).collect();
        let start = secs(rng.gen_range(1..50));
        move_along(&mut net, &mut log, o, &path, start, secs(120));
    }
    net.run_until_quiescent();
    assert_eq!(net.anomalies(), peertrack::world::Anomalies::default());

    for i in 0..40u64 {
        let o = obj(i);
        let (p, stats) = net.trace(SiteId(0), o, SimTime::ZERO, SimTime::INFINITY);
        assert_eq!(p, log.trace(o, SimTime::ZERO, SimTime::INFINITY), "trace of {o:?}");
        assert!(stats.complete);
        for t_s in [0u64, 30, 120, 400, 900, 2000] {
            let t = secs(t_s);
            assert_eq!(net.locate(SiteId(9), o, t).0, log.locate(o, t), "locate {o:?}@{t}");
        }
    }
}

#[test]
fn locate_of_unknown_object_is_none() {
    let mut net = Builder::new().sites(8).seed(8).build();
    let (ans, stats) = net.locate(SiteId(0), obj(12345), secs(10));
    assert_eq!(ans, None);
    assert_eq!(stats.source, peertrack::query::AnswerSource::NotFound);
}

#[test]
fn locate_before_entry_is_none() {
    let mut net = Builder::new().sites(8).seed(9).mode(group_mode(8, ms(100))).build();
    let o = obj(5);
    net.schedule_capture(secs(100), SiteId(3), vec![o]);
    net.run_until_quiescent();
    let (ans, _) = net.locate(SiteId(0), o, secs(50));
    assert_eq!(ans, None, "object was nowhere before first capture");
    let (ans, _) = net.locate(SiteId(0), o, secs(150));
    assert_eq!(ans, Some(SiteId(3)));
}

#[test]
fn trait_impls_answer_without_stats() {
    let mut net = Builder::new().sites(8).seed(10).mode(group_mode(8, ms(100))).build();
    let o = obj(6);
    net.schedule_capture(secs(1), SiteId(2), vec![o]);
    net.schedule_capture(secs(2), SiteId(4), vec![o]);
    net.run_until_quiescent();
    assert_eq!(Locate::locate(&net.reader(), o, secs(10)), Some(SiteId(4)));
    let p = Trace::trace(&net.reader(), o, SimTime::ZERO, SimTime::INFINITY);
    assert_eq!(p.len(), 2);
}

// ---------------------------------------------------------------------
// Data Triangles: delegation + lookup through children
// ---------------------------------------------------------------------

#[test]
fn delegation_moves_earliest_records_to_children() {
    let cfg = GroupConfig {
        scheme: PrefixScheme::Fixed(2), // few, hot gateways
        l_min: 2,
        n_max: 10_000,
        t_max: ms(100),
        alpha: 0.5,
        delegate_threshold: Some(50),
        eager_split_merge: true,
        ..GroupConfig::default()
    };
    let mut net = Builder::new().sites(16).seed(11).mode(IndexingMode::Group(cfg)).build();
    let objects: Vec<ObjectId> = (0..400u64).map(obj).collect();
    net.schedule_capture(secs(1), SiteId(0), objects.clone());
    net.run_until_quiescent();

    assert!(
        net.metrics().messages_of(MsgClass::Delegate) > 0,
        "hot shards must delegate to triangle children"
    );
    // Every object is still locatable (through parent or children).
    for o in &objects {
        let (ans, _) = net.locate(SiteId(5), *o, secs(10));
        assert_eq!(ans, Some(SiteId(0)), "object {o:?} lost after delegation");
    }
}

#[test]
fn delegated_objects_keep_correct_iop_on_next_move() {
    let cfg = GroupConfig {
        scheme: PrefixScheme::Fixed(2),
        l_min: 2,
        n_max: 10_000,
        t_max: ms(100),
        alpha: 1.0, // delegate everything when triggered
        delegate_threshold: Some(10),
        eager_split_merge: true,
        ..GroupConfig::default()
    };
    let mut net = Builder::new().sites(16).seed(12).mode(IndexingMode::Group(cfg)).build();
    let objects: Vec<ObjectId> = (0..100u64).map(obj).collect();
    net.schedule_capture(secs(1), SiteId(0), objects.clone());
    net.run_until_quiescent();
    // Move everything to site 3: the gateway must refresh the delegated
    // entries from its children to thread the IOP correctly.
    net.schedule_capture(secs(100), SiteId(3), objects.clone());
    net.run_until_quiescent();

    for o in &objects {
        let (p, stats) = net.trace(SiteId(8), *o, SimTime::ZERO, SimTime::INFINITY);
        let sites: Vec<SiteId> = p.iter().map(|v| v.site).collect();
        assert_eq!(sites, vec![SiteId(0), SiteId(3)], "broken IOP for {o:?}");
        assert!(stats.complete);
    }
    assert_eq!(net.anomalies(), peertrack::world::Anomalies::default());
}

// ---------------------------------------------------------------------
// Lp changes: splitting / merging (§IV-A.2)
// ---------------------------------------------------------------------

#[test]
fn join_triggers_split_and_preserves_queries() {
    let cfg = GroupConfig { n_max: 512, t_max: ms(200), ..GroupConfig::default() };
    let mut net = Builder::new().sites(16).seed(13).mode(IndexingMode::Group(cfg)).build();
    let lp0 = net.current_lp();

    let mut log = MovementLog::new();
    for i in 0..60u64 {
        let o = obj(i);
        let path: Vec<SiteId> = vec![SiteId((i % 16) as u32), SiteId(((i + 5) % 16) as u32)];
        move_along(&mut net, &mut log, o, &path, secs(1 + i), secs(300));
    }
    net.run_until_quiescent();

    // Grow the network until Lp increases.
    let mut grew = 0;
    while net.current_lp() == lp0 {
        net.join_site();
        grew += 1;
        assert!(grew < 200, "Lp never changed while growing");
    }
    assert!(net.current_lp() > lp0);
    assert!(
        net.metrics().messages_of(MsgClass::SplitMerge) > 0,
        "eager split must migrate shards"
    );

    for i in 0..60u64 {
        let o = obj(i);
        let p = Trace::trace(&net.reader(), o, SimTime::ZERO, SimTime::INFINITY);
        assert_eq!(p, log.trace(o, SimTime::ZERO, SimTime::INFINITY), "trace after split");
    }
}

#[test]
fn leave_triggers_merge_and_preserves_index() {
    let cfg = GroupConfig { n_max: 512, t_max: ms(200), ..GroupConfig::default() };
    let mut net = Builder::new().sites(64).seed(14).mode(IndexingMode::Group(cfg)).build();
    let lp0 = net.current_lp();

    // Index objects at sites that will stay (0..8).
    let objects: Vec<ObjectId> = (0..50u64).map(obj).collect();
    for (i, o) in objects.iter().enumerate() {
        net.schedule_capture(secs(1 + i as u64), SiteId((i % 8) as u32), vec![*o]);
    }
    net.run_until_quiescent();

    // Shrink from the top until Lp decreases.
    let mut v = 63u32;
    while net.current_lp() == lp0 {
        net.leave_site(SiteId(v));
        v -= 1;
        assert!(v > 8, "Lp never decreased while shrinking");
    }
    assert!(net.current_lp() < lp0);

    for (i, o) in objects.iter().enumerate() {
        let (ans, _) = net.locate(SiteId(0), *o, secs(1000));
        assert_eq!(ans, Some(SiteId((i % 8) as u32)), "index lost after merge for {o:?}");
    }
}

#[test]
fn lazy_mode_repairs_via_refresh() {
    // With eager_split_merge off, old shards stay at the shorter prefix;
    // the next indexing cycle repairs via refresh_from_ascent.
    let cfg = GroupConfig {
        n_max: 512,
        t_max: ms(200),
        eager_split_merge: false,
        ..GroupConfig::default()
    };
    let mut net = Builder::new().sites(16).seed(15).mode(IndexingMode::Group(cfg)).build();
    let lp0 = net.current_lp();
    let o = obj(77);
    net.schedule_capture(secs(1), SiteId(2), vec![o]);
    net.run_until_quiescent();

    let mut grew = 0;
    while net.current_lp() == lp0 {
        net.join_site();
        grew += 1;
        assert!(grew < 200);
    }
    assert_eq!(net.metrics().messages_of(MsgClass::SplitMerge), 0, "lazy: no migration");

    // Move the object: the gateway at the *new* prefix must pull the
    // history from the ascent shard, keeping the IOP intact.
    net.schedule_capture(secs(500), SiteId(5), vec![o]);
    net.run_until_quiescent();
    assert!(net.metrics().messages_of(MsgClass::Refresh) > 0, "refresh must have fired");

    let p = Trace::trace(&net.reader(), o, SimTime::ZERO, SimTime::INFINITY);
    let sites: Vec<SiteId> = p.iter().map(|v| v.site).collect();
    assert_eq!(sites, vec![SiteId(2), SiteId(5)], "IOP must survive lazy Lp change");
}

// ---------------------------------------------------------------------
// Churn
// ---------------------------------------------------------------------

#[test]
fn leave_marks_traces_incomplete_when_repository_departs() {
    let mut net = Builder::new().sites(12).seed(16).mode(group_mode(64, ms(100))).build();
    let o = obj(3);
    let mut log = MovementLog::new();
    move_along(
        &mut net,
        &mut log,
        o,
        &[SiteId(1), SiteId(6), SiteId(9)],
        secs(1),
        secs(60),
    );
    net.run_until_quiescent();

    // The middle repository departs; its IOP records are gone.
    net.leave_site(SiteId(6));
    let (p, stats) = net.trace(SiteId(0), o, SimTime::ZERO, SimTime::INFINITY);
    assert!(!stats.complete, "trace through a departed repository must be flagged");
    // The latest segment is still reported.
    assert_eq!(p.last().map(|v| v.site), Some(SiteId(9)));
}

#[test]
fn index_survives_gateway_departure() {
    // When the *gateway* for an object leaves, its shards hand off to
    // the successor — queries must still find the object.
    let mut net = Builder::new().sites(24).seed(17).mode(group_mode(64, ms(100))).build();
    let objects: Vec<ObjectId> = (0..80u64).map(obj).collect();
    net.schedule_capture(secs(1), SiteId(0), objects.clone());
    net.run_until_quiescent();

    // Remove a third of the network (never site 0, which holds the IOP).
    for v in (12..20u32).rev() {
        net.leave_site(SiteId(v));
    }
    for o in &objects {
        let (ans, _) = net.locate(SiteId(1), *o, secs(100));
        assert_eq!(ans, Some(SiteId(0)), "index lost after gateway churn for {o:?}");
    }
}

#[test]
fn intermediate_nodes_answer_queries() {
    // With many sites on the object's path, some queries route through
    // one of them and get answered early (§IV-B Intermediate Node).
    let mut net = Builder::new().sites(64).seed(18).mode(group_mode(64, ms(100))).build();
    let mut log = MovementLog::new();
    let mut intermediate_or_local = 0;
    for i in 0..30u64 {
        let o = obj(i);
        let path: Vec<SiteId> = (0..10).map(|k| SiteId(((i * 7 + k * 3) % 64) as u32)).collect();
        move_along(&mut net, &mut log, o, &path, secs(1 + i), secs(60));
    }
    net.run_until_quiescent();
    for i in 0..30u64 {
        let o = obj(i);
        for from in 0..64u32 {
            let (ans, stats) = net.locate(SiteId(from), o, secs(100_000));
            assert_eq!(ans, log.locate(o, secs(100_000)));
            match stats.source {
                peertrack::query::AnswerSource::Intermediate(_)
                | peertrack::query::AnswerSource::Local => intermediate_or_local += 1,
                _ => {}
            }
        }
    }
    assert!(
        intermediate_or_local > 0,
        "with 10-site paths some queries must be answered before the gateway"
    );
}

// ---------------------------------------------------------------------
// The big agreement property: PeerTrack == oracle under random schedules
// ---------------------------------------------------------------------

proptiny! {
    #![proptiny_config(Config::with_cases(12))]

    #[test]
    fn prop_distributed_answers_equal_oracle(
        seed in any::<u64>(),
        n_sites in 4usize..24,
        n_objects in 1usize..20,
    ) {
        let mut net = Builder::new()
            .sites(n_sites)
            .seed(seed)
            .mode(group_mode(128, ms(250)))
            .build();
        let mut log = MovementLog::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);

        for i in 0..n_objects as u64 {
            let o = obj(i);
            let hops = rng.gen_range(1..=6);
            let path: Vec<SiteId> =
                (0..hops).map(|_| SiteId(rng.gen_range(0..n_sites as u32))).collect();
            let start = secs(rng.gen_range(1..100));
            move_along(&mut net, &mut log, o, &path, start, secs(rng.gen_range(30..300)));
        }
        net.run_until_quiescent();
        prop_assert_eq!(net.anomalies(), peertrack::world::Anomalies::default());

        for i in 0..n_objects as u64 {
            let o = obj(i);
            // Full trace agreement.
            let (p, stats) = net.trace(SiteId(0), o, SimTime::ZERO, SimTime::INFINITY);
            prop_assert_eq!(&p, &log.trace(o, SimTime::ZERO, SimTime::INFINITY));
            prop_assert!(stats.complete);
            // Windowed trace agreement.
            let (t0, t1) = (secs(rng.gen_range(0..500)), secs(rng.gen_range(500..3000)));
            let (p, _) = net.trace(SiteId(1 % n_sites as u32), o, t0, t1);
            prop_assert_eq!(&p, &log.trace(o, t0, t1));
            // Point locates.
            for _ in 0..8 {
                let t = secs(rng.gen_range(0..3000));
                let from = SiteId(rng.gen_range(0..n_sites as u32));
                prop_assert_eq!(net.locate(from, o, t).0, log.locate(o, t));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Gossip-driven Lp (§IV-A.1, ref [14])
// ---------------------------------------------------------------------

#[test]
fn gossip_size_estimation_derives_same_lp_as_exact() {
    use peertrack::config::SizeEstimation;
    let mk = |est: SizeEstimation| {
        IndexingMode::Group(GroupConfig {
            size_estimation: est,
            n_max: 64,
            t_max: ms(100),
            ..GroupConfig::default()
        })
    };
    let mut exact = Builder::new().sites(24).seed(19).mode(mk(SizeEstimation::Exact)).build();
    let mut gossip = Builder::new()
        .sites(24)
        .seed(19)
        .mode(mk(SizeEstimation::Gossip { rounds: 40 }))
        .build();
    assert_eq!(exact.current_lp(), gossip.current_lp());

    // Grow both; Lp (log-scale) tolerates the estimation noise.
    for _ in 0..12 {
        exact.join_site();
        gossip.join_site();
    }
    assert_eq!(exact.current_lp(), gossip.current_lp());
    assert!(
        gossip.metrics().messages_of(MsgClass::Gossip) > 0,
        "gossip epochs must be charged"
    );
    assert_eq!(
        exact.metrics().messages_of(MsgClass::Gossip),
        0,
        "exact mode sends no gossip"
    );
}

// ---------------------------------------------------------------------
// Gateway-address caching (§IV-A.2)
// ---------------------------------------------------------------------

#[test]
fn address_cache_cuts_hops_on_repeat_contacts() {
    let mk = |cache: bool| {
        IndexingMode::Group(GroupConfig {
            cache_gateway_addresses: cache,
            n_max: 100_000,
            t_max: ms(100),
            ..GroupConfig::default()
        })
    };
    let run = |cache: bool| -> (u64, u64) {
        let mut net = Builder::new().sites(32).seed(23).mode(mk(cache)).build();
        let objects: Vec<ObjectId> = (0..300u64).map(obj).collect();
        // Two waves hitting the same prefixes from the same site.
        net.schedule_capture(secs(1), SiteId(0), objects.clone());
        net.schedule_capture(secs(100), SiteId(1), objects.clone());
        net.schedule_capture(secs(200), SiteId(0), objects.clone());
        net.run_until_quiescent();
        let m = net.metrics();
        (m.indexing_messages(), m.indexing_hops())
    };
    let (msgs_off, hops_off) = run(false);
    let (msgs_on, hops_on) = run(true);
    assert_eq!(msgs_off, msgs_on, "caching changes hops, not message count");
    assert!(
        hops_on < hops_off,
        "cached repeat contacts must save hops: {hops_on} !< {hops_off}"
    );
}

#[test]
fn address_cache_invalidated_by_churn_keeps_correctness() {
    let mode = IndexingMode::Group(GroupConfig {
        cache_gateway_addresses: true,
        n_max: 64,
        t_max: ms(100),
        ..GroupConfig::default()
    });
    let mut net = Builder::new().sites(16).seed(24).mode(mode).build();
    let objects: Vec<ObjectId> = (0..60u64).map(obj).collect();
    net.schedule_capture(secs(1), SiteId(2), objects.clone());
    net.run_until_quiescent();

    // Churn moves gateway ownership; caches must not misroute wave 2.
    for _ in 0..8 {
        net.join_site();
    }
    net.schedule_capture(net.now() + secs(10), SiteId(5), objects.clone());
    net.run_until_quiescent();

    for o in &objects {
        let (p, stats) = net.trace(SiteId(0), *o, SimTime::ZERO, SimTime::INFINITY);
        let sites: Vec<SiteId> = p.iter().map(|v| v.site).collect();
        assert_eq!(sites, vec![SiteId(2), SiteId(5)], "IOP broken after cached churn");
        assert!(stats.complete);
    }
}
