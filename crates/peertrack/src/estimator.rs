//! Epidemic network-size estimation (§IV-A.1, reference \[14\]).
//!
//! `Lp` depends on `Nn`, but "as new nodes join and existing nodes leave,
//! `Nn` is dynamic ... there are some algorithms available to estimate
//! the value of `Nn`. Interested readers are referred to \[14\]" — Jelasity
//! & Montresor's push-pull epidemic averaging (ICDCS'04).
//!
//! The COUNT protocol: one initiator starts with value 1, everyone else
//! with 0. Each round, every node exchanges values with one uniformly
//! random peer and both adopt the average. The sum is invariant, so every
//! value converges (exponentially fast) to `1/Nn`; each node estimates
//! `Nn = 1/value`. Variance halves roughly every round (the paper's \[14\]
//! proves the convergence factor `1/(2·sqrt(e))` per round).

use detrand::seq::SliceRandom;
use detrand::Rng;

/// Outcome of an estimation epoch.
#[derive(Clone, Debug)]
pub struct Estimate {
    /// Per-node size estimates (`1/value`), indexed like the input.
    pub per_node: Vec<f64>,
    /// Gossip messages exchanged (2 per pairwise push-pull).
    pub messages: u64,
    /// Rounds executed.
    pub rounds: u32,
}

impl Estimate {
    /// The median node estimate — robust against stragglers.
    pub fn median(&self) -> f64 {
        let mut v = self.per_node.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("estimates are finite"));
        let n = v.len();
        if n == 0 {
            return 0.0;
        }
        if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        }
    }

    /// Largest relative error across nodes vs. the true size.
    pub fn max_relative_error(&self, truth: usize) -> f64 {
        let t = truth as f64;
        self.per_node
            .iter()
            .map(|e| ((e - t) / t).abs())
            .fold(0.0, f64::max)
    }
}

/// Run `rounds` of push-pull averaging over `n` nodes and return the
/// per-node estimates of `n`.
///
/// Node 0 is the initiator (value 1). The peer choice is uniform over
/// the other nodes, drawn from `rng` — deterministic per seed.
///
/// # Panics
/// If `n == 0`.
pub fn estimate_count<R: Rng + ?Sized>(n: usize, rounds: u32, rng: &mut R) -> Estimate {
    assert!(n > 0, "cannot estimate an empty network");
    let mut values = vec![0.0f64; n];
    values[0] = 1.0;
    let mut messages = 0u64;

    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..rounds {
        // Random activation order each round, as in the epidemic model.
        order.shuffle(rng);
        for &i in &order {
            if n == 1 {
                break;
            }
            // Pick a uniform peer other than i.
            let mut j = rng.gen_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let avg = (values[i] + values[j]) / 2.0;
            values[i] = avg;
            values[j] = avg;
            messages += 2; // push + pull
        }
    }

    let per_node = values
        .into_iter()
        .map(|v| if v > 0.0 { 1.0 / v } else { f64::INFINITY })
        .collect();
    Estimate { per_node, messages, rounds }
}

/// Rounds needed for every node to be within ~10 % of the truth with
/// high probability: `O(log n)` with a comfortable constant.
pub fn recommended_rounds(n: usize) -> u32 {
    let n = n.max(2) as f64;
    (3.0 * n.log2()).ceil() as u32 + 10
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::{rngs::StdRng, SeedableRng};

    #[test]
    fn single_node_knows_itself() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = estimate_count(1, 5, &mut rng);
        assert_eq!(e.per_node, vec![1.0]);
        assert_eq!(e.messages, 0);
    }

    #[test]
    fn converges_to_true_size() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [8usize, 64, 200] {
            let e = estimate_count(n, recommended_rounds(n), &mut rng);
            let med = e.median();
            let rel = ((med - n as f64) / n as f64).abs();
            assert!(rel < 0.05, "n={n}: median estimate {med} off by {rel:.3}");
            assert!(
                e.max_relative_error(n) < 0.25,
                "n={n}: worst node error {:.3}",
                e.max_relative_error(n)
            );
        }
    }

    #[test]
    fn sum_invariant_implies_estimates_bracket_truth() {
        // With value-sum conserved at 1, some nodes estimate ≥ n and some
        // ≤ n unless fully converged; the median is always finite.
        let mut rng = StdRng::seed_from_u64(7);
        let e = estimate_count(32, 3, &mut rng); // deliberately few rounds
        assert!(e.median().is_finite());
    }

    #[test]
    fn message_cost_is_rounds_times_n() {
        let mut rng = StdRng::seed_from_u64(9);
        let e = estimate_count(50, 4, &mut rng);
        assert_eq!(e.messages, 2 * 4 * 50);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = estimate_count(40, 20, &mut StdRng::seed_from_u64(5)).per_node;
        let b = estimate_count(40, 20, &mut StdRng::seed_from_u64(5)).per_node;
        assert_eq!(a, b);
    }

    #[test]
    fn lp_from_estimate_matches_lp_from_truth() {
        // The point of the estimator: Scheme 2's Lp computed from the
        // estimate equals the Lp from the true size (Lp is log-scale, so
        // small estimation error vanishes).
        use crate::prefix::PrefixScheme;
        let mut rng = StdRng::seed_from_u64(11);
        for n in [64usize, 128, 512] {
            let e = estimate_count(n, recommended_rounds(n), &mut rng);
            let lp_est = PrefixScheme::Scheme2.lp(e.median().round() as usize);
            let lp_true = PrefixScheme::Scheme2.lp(n);
            assert_eq!(lp_est, lp_true, "n={n}");
        }
    }
}
