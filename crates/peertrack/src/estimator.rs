//! Epidemic network-size estimation (§IV-A.1, reference \[14\]).
//!
//! `Lp` depends on `Nn`, but "as new nodes join and existing nodes leave,
//! `Nn` is dynamic ... there are some algorithms available to estimate
//! the value of `Nn`. Interested readers are referred to \[14\]" — Jelasity
//! & Montresor's push-pull epidemic averaging (ICDCS'04).
//!
//! The COUNT protocol: one initiator starts with value 1, everyone else
//! with 0. Each round, every node exchanges values with one uniformly
//! random peer and both adopt the average. The sum is invariant, so every
//! value converges (exponentially fast) to `1/Nn`; each node estimates
//! `Nn = 1/value`. Variance halves roughly every round (the paper's \[14\]
//! proves the convergence factor `1/(2·sqrt(e))` per round).

use detrand::seq::SliceRandom;
use detrand::Rng;

/// Outcome of an estimation epoch.
#[derive(Clone, Debug)]
pub struct Estimate {
    /// Per-node size estimates (`1/value`), indexed like the input.
    pub per_node: Vec<f64>,
    /// Gossip messages exchanged (2 per pairwise push-pull).
    pub messages: u64,
    /// Rounds executed.
    pub rounds: u32,
    /// Exchanges broken by message loss. Loss breaks the sum invariant
    /// (a one-sided update changes the total mass), so a non-zero count
    /// flags the epoch as degraded: the estimate carries extra,
    /// unbounded-in-theory bias and consumers should treat it as a hint.
    pub lost: u64,
}

impl Estimate {
    /// Did message loss corrupt the mass conservation this epoch?
    pub fn degraded(&self) -> bool {
        self.lost > 0
    }
}

impl Estimate {
    /// The median node estimate — robust against stragglers.
    pub fn median(&self) -> f64 {
        let mut v = self.per_node.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("estimates are finite"));
        let n = v.len();
        if n == 0 {
            return 0.0;
        }
        if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        }
    }

    /// Largest relative error across nodes vs. the true size.
    pub fn max_relative_error(&self, truth: usize) -> f64 {
        let t = truth as f64;
        self.per_node
            .iter()
            .map(|e| ((e - t) / t).abs())
            .fold(0.0, f64::max)
    }
}

/// Run `rounds` of push-pull averaging over `n` nodes and return the
/// per-node estimates of `n`.
///
/// Node 0 is the initiator (value 1). The peer choice is uniform over
/// the other nodes, drawn from `rng` — deterministic per seed.
///
/// # Panics
/// If `n == 0`.
pub fn estimate_count<R: Rng + ?Sized>(n: usize, rounds: u32, rng: &mut R) -> Estimate {
    estimate_count_lossy(n, rounds, 0.0, rng)
}

/// [`estimate_count`] under message loss: each leg of a push-pull
/// exchange is independently lost with probability `loss`. A lost *push*
/// wastes the message (no state change); a lost *pull* (reply) leaves
/// the initiator stale while the peer already averaged — breaking the
/// sum invariant, which is exactly how the real protocol degrades.
/// Lossless calls (`loss == 0`) take no extra RNG draws, so
/// [`estimate_count`] is byte-identical to the pre-fault implementation.
///
/// # Panics
/// If `n == 0` or `loss` is outside `[0, 1]`.
pub fn estimate_count_lossy<R: Rng + ?Sized>(
    n: usize,
    rounds: u32,
    loss: f64,
    rng: &mut R,
) -> Estimate {
    assert!(n > 0, "cannot estimate an empty network");
    assert!((0.0..=1.0).contains(&loss), "loss out of range");
    let mut values = vec![0.0f64; n];
    values[0] = 1.0;
    let mut messages = 0u64;
    let mut lost = 0u64;

    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..rounds {
        // Random activation order each round, as in the epidemic model.
        order.shuffle(rng);
        for &i in &order {
            if n == 1 {
                break;
            }
            // Pick a uniform peer other than i.
            let mut j = rng.gen_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            messages += 2; // push + pull
            if loss > 0.0 && rng.gen_bool(loss) {
                lost += 1; // push lost: no exchange at all
                continue;
            }
            let avg = (values[i] + values[j]) / 2.0;
            values[j] = avg;
            if loss > 0.0 && rng.gen_bool(loss) {
                lost += 1; // pull lost: i keeps its stale value
                continue;
            }
            values[i] = avg;
        }
    }

    let per_node = values
        .into_iter()
        .map(|v| if v > 0.0 { 1.0 / v } else { f64::INFINITY })
        .collect();
    Estimate { per_node, messages, rounds, lost }
}

/// Rounds needed for every node to be within ~10 % of the truth with
/// high probability: `O(log n)` with a comfortable constant.
pub fn recommended_rounds(n: usize) -> u32 {
    let n = n.max(2) as f64;
    (3.0 * n.log2()).ceil() as u32 + 10
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::{rngs::StdRng, SeedableRng};

    #[test]
    fn single_node_knows_itself() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = estimate_count(1, 5, &mut rng);
        assert_eq!(e.per_node, vec![1.0]);
        assert_eq!(e.messages, 0);
    }

    #[test]
    fn converges_to_true_size() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [8usize, 64, 200] {
            let e = estimate_count(n, recommended_rounds(n), &mut rng);
            let med = e.median();
            let rel = ((med - n as f64) / n as f64).abs();
            assert!(rel < 0.05, "n={n}: median estimate {med} off by {rel:.3}");
            assert!(
                e.max_relative_error(n) < 0.25,
                "n={n}: worst node error {:.3}",
                e.max_relative_error(n)
            );
        }
    }

    #[test]
    fn sum_invariant_implies_estimates_bracket_truth() {
        // With value-sum conserved at 1, some nodes estimate ≥ n and some
        // ≤ n unless fully converged; the median is always finite.
        let mut rng = StdRng::seed_from_u64(7);
        let e = estimate_count(32, 3, &mut rng); // deliberately few rounds
        assert!(e.median().is_finite());
    }

    #[test]
    fn message_cost_is_rounds_times_n() {
        let mut rng = StdRng::seed_from_u64(9);
        let e = estimate_count(50, 4, &mut rng);
        assert_eq!(e.messages, 2 * 4 * 50);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = estimate_count(40, 20, &mut StdRng::seed_from_u64(5)).per_node;
        let b = estimate_count(40, 20, &mut StdRng::seed_from_u64(5)).per_node;
        assert_eq!(a, b);
    }

    #[test]
    fn clean_runs_reach_ten_percent_in_logarithmic_rounds() {
        // The satellite contract: within 10 % of the true Nn in O(log Nn)
        // rounds on clean runs. recommended_rounds(n) = 3·log2(n) + 10 is
        // the logarithmic budget; the median must land well inside 10 %.
        let mut rng = StdRng::seed_from_u64(1234);
        for n in [16usize, 64, 256, 1024] {
            let rounds = recommended_rounds(n);
            assert!(rounds <= 3 * (n as f64).log2().ceil() as u32 + 10);
            let e = estimate_count(n, rounds, &mut rng);
            let rel = ((e.median() - n as f64) / n as f64).abs();
            assert!(rel < 0.10, "n={n}: median {:.2} off by {rel:.3}", e.median());
            assert!(!e.degraded(), "clean run must not be flagged");
            assert_eq!(e.lost, 0);
        }
    }

    #[test]
    fn ten_percent_loss_degrades_gracefully() {
        // At 10 % per-leg loss the sum invariant breaks, so the epoch
        // must be flagged; the median should still be a usable hint
        // (bounded error — within a factor of two of the truth), because
        // Lp consumes it on a log scale.
        let mut rng = StdRng::seed_from_u64(77);
        for n in [64usize, 256] {
            let e = estimate_count_lossy(n, recommended_rounds(n), 0.10, &mut rng);
            assert!(e.degraded(), "loss must flag the epoch");
            let med = e.median();
            assert!(med.is_finite());
            let ratio = med / n as f64;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "n={n}: degraded median {med:.2} outside [n/2, 2n]"
            );
        }
    }

    #[test]
    fn lossless_lossy_call_is_byte_identical_to_clean() {
        // estimate_count delegates with loss = 0.0; the gate on the loss
        // draws means identical RNG consumption, hence identical output.
        let a = estimate_count(40, 20, &mut StdRng::seed_from_u64(5));
        let b = estimate_count_lossy(40, 20, 0.0, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.per_node, b.per_node);
        assert_eq!(b.lost, 0);
    }

    #[test]
    fn lp_from_estimate_matches_lp_from_truth() {
        // The point of the estimator: Scheme 2's Lp computed from the
        // estimate equals the Lp from the true size (Lp is log-scale, so
        // small estimation error vanishes).
        use crate::prefix::PrefixScheme;
        let mut rng = StdRng::seed_from_u64(11);
        for n in [64usize, 128, 512] {
            let e = estimate_count(n, recommended_rounds(n), &mut rng);
            let lp_est = PrefixScheme::Scheme2.lp(e.median().round() as usize);
            let lp_true = PrefixScheme::Scheme2.lp(n);
            assert_eq!(lp_est, lp_true, "n={n}");
        }
    }
}
