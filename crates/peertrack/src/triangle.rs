//! Data-Triangle prefix partition model (§IV-A.2).
//!
//! A Data Triangle is a parent prefix `p` plus its two children `p0`,
//! `p1`. The splitting–merging process that absorbs `Lp` changes walks
//! these triangles: growing `Lp` *splits* a parent's records down to
//! its children; shrinking *merges* the two children back into the
//! parent. The correctness obligation — implicit in the paper, explicit
//! here — is that the set of active prefixes always stays an exact
//! partition of the id space: **complete** (every object id matches
//! some active prefix) and **disjoint** (no id matches two), otherwise
//! objects are indexed twice or not at all.
//!
//! [`TriangleCover`] models that active-prefix set as an antichain in
//! the binary trie and checks the partition invariant after every
//! operation. The property test at the bottom drives it through random
//! `Lp` grow/shrink sequences — the satellite requirement — plus
//! arbitrary single-triangle splits and merges.

use ids::prefix::{check_len, Prefix, MAX_PREFIX_BITS};
use std::collections::BTreeSet;

/// The set of active (record-holding) prefixes, maintained as an exact
/// partition of the id space.
#[derive(Clone, Debug)]
pub struct TriangleCover {
    leaves: BTreeSet<Prefix>,
}

impl TriangleCover {
    /// The uniform partition at prefix length `lp`: all `2^lp` prefixes.
    ///
    /// # Panics
    /// If `lp > 20` — the cover is materialized, so enumeration must
    /// stay small (practical `Lp` for the paper's sizes is ≤ ~20).
    pub fn uniform(lp: usize) -> TriangleCover {
        check_len(lp);
        assert!(lp <= 20, "uniform cover at Lp={lp} would materialize 2^{lp} prefixes");
        TriangleCover { leaves: Prefix::enumerate(lp).collect() }
    }

    /// The active prefixes, in sorted order.
    pub fn leaves(&self) -> impl Iterator<Item = &Prefix> {
        self.leaves.iter()
    }

    /// Number of active prefixes.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Is the cover empty? (Never true for a valid partition.)
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Split the triangle rooted at `p`: the parent's records descend
    /// to its two children. No-op (returning `false`) unless `p` is an
    /// active leaf with room to split.
    pub fn split(&mut self, p: Prefix) -> bool {
        if p.len() >= MAX_PREFIX_BITS || !self.leaves.remove(&p) {
            return false;
        }
        self.leaves.insert(p.child(false));
        self.leaves.insert(p.child(true));
        true
    }

    /// Merge the triangle rooted at `p`: both children collapse into
    /// the parent. No-op (returning `false`) unless both children are
    /// active leaves.
    pub fn merge(&mut self, p: Prefix) -> bool {
        let (c0, c1) = (p.child(false), p.child(true));
        if p.len() >= MAX_PREFIX_BITS || !self.leaves.contains(&c0) || !self.leaves.contains(&c1)
        {
            return false;
        }
        self.leaves.remove(&c0);
        self.leaves.remove(&c1);
        self.leaves.insert(p);
        true
    }

    /// Apply the §IV-A.2 splitting–merging process toward a new uniform
    /// length `lp`: leaves shorter than `lp` split repeatedly (each
    /// split is one triangle descent), leaves longer than `lp` merge
    /// with their siblings (one triangle ascent each). Returns the
    /// number of triangle operations performed.
    ///
    /// # Panics
    /// If `lp > 20` (see [`TriangleCover::uniform`]).
    pub fn retarget(&mut self, lp: usize) -> usize {
        check_len(lp);
        assert!(lp <= 20, "retarget to Lp={lp} would materialize 2^{lp} prefixes");
        let mut ops = 0;
        // Splits: repeatedly take the shortest leaf below target depth.
        while let Some(&p) = self.leaves.iter().find(|p| p.len() < lp) {
            assert!(self.split(p));
            ops += 1;
        }
        // Merges: collapse sibling pairs deeper than the target. Taking
        // the *longest* leaf first guarantees its sibling subtree is
        // already a leaf by the time we reach it from below.
        while let Some(&p) = self.leaves.iter().rev().max_by_key(|p| p.len()) {
            if p.len() <= lp {
                break;
            }
            let parent = p.parent().expect("non-root leaf has a parent");
            assert!(
                self.merge(parent),
                "sibling of {p:?} missing — cover was not a partition"
            );
            ops += 1;
        }
        ops
    }

    /// Check the partition invariant: every point of the id space is
    /// covered by exactly one leaf.
    ///
    /// Disjointness: in bit-string sorted order an overlap can only be
    /// a leaf that prefixes its successor. Completeness: once leaves
    /// are disjoint, their measures (`2^-len`) must sum to exactly 1 —
    /// checked in integer arithmetic at the deepest leaf's resolution.
    pub fn check_partition(&self) -> Result<(), String> {
        let leaves: Vec<&Prefix> = self.leaves.iter().collect();
        if leaves.is_empty() {
            return Err("cover is empty".into());
        }
        for w in leaves.windows(2) {
            if w[0].is_prefix_of(w[1]) {
                return Err(format!(
                    "overlap: {} is a prefix of {}",
                    w[0].as_bit_string(),
                    w[1].as_bit_string()
                ));
            }
        }
        let depth = leaves.iter().map(|p| p.len()).max().unwrap();
        let total: u128 = leaves.iter().map(|p| 1u128 << (depth - p.len())).sum();
        if total != 1u128 << depth {
            return Err(format!(
                "coverage gap: leaves measure {total}/{} of the space",
                1u128 << depth
            ));
        }
        Ok(())
    }

    /// The unique active leaf covering `id`'s bit path, if the
    /// partition is intact.
    pub fn leaf_for(&self, id: &ids::Id) -> Option<Prefix> {
        self.leaves.iter().find(|p| p.matches(id)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptiny::prelude::*;
    use proptiny::schedule::schedule;

    #[test]
    fn uniform_cover_is_a_partition() {
        for lp in [0usize, 1, 3, 8] {
            let c = TriangleCover::uniform(lp);
            assert_eq!(c.len(), 1 << lp);
            c.check_partition().unwrap();
        }
    }

    #[test]
    fn split_and_merge_are_inverse() {
        let mut c = TriangleCover::uniform(2);
        let p = Prefix::from_bit_str("01");
        assert!(c.split(p));
        assert_eq!(c.len(), 5);
        c.check_partition().unwrap();
        assert!(c.merge(p), "merging the split triangle restores the leaf");
        assert_eq!(c.len(), 4);
        c.check_partition().unwrap();
    }

    #[test]
    fn invalid_triangle_ops_are_rejected() {
        let mut c = TriangleCover::uniform(2);
        // Splitting a non-leaf (too short or too long) is a no-op.
        assert!(!c.split(Prefix::from_bit_str("0")));
        assert!(!c.split(Prefix::from_bit_str("010")));
        // Merging needs both children active.
        assert!(c.merge(Prefix::from_bit_str("0")), "children 00,01 are leaves");
        assert!(!c.merge(Prefix::from_bit_str("0")), "already merged");
        c.check_partition().unwrap();
    }

    #[test]
    fn retarget_reaches_uniform_depth_both_ways() {
        let mut c = TriangleCover::uniform(3);
        let ops_up = c.retarget(6);
        assert!(c.leaves().all(|p| p.len() == 6));
        assert_eq!(c.len(), 64);
        c.check_partition().unwrap();
        // 8 → 64 leaves is 56 net new leaves = 56 splits.
        assert_eq!(ops_up, 56);
        let ops_down = c.retarget(2);
        assert!(c.leaves().all(|p| p.len() == 2));
        assert_eq!(ops_down, 60, "64 → 4 leaves is 60 merges");
        c.check_partition().unwrap();
        assert_eq!(c.retarget(2), 0, "already at target");
    }

    #[test]
    fn check_partition_detects_gap_and_overlap() {
        let mut c = TriangleCover::uniform(2);
        c.leaves.remove(&Prefix::from_bit_str("10"));
        assert!(c.check_partition().unwrap_err().contains("gap"));
        c.leaves.insert(Prefix::from_bit_str("10"));
        c.leaves.insert(Prefix::from_bit_str("100"));
        assert!(c.check_partition().unwrap_err().contains("overlap"));
    }

    #[test]
    fn leaf_for_finds_exactly_one_prefix() {
        let mut c = TriangleCover::uniform(3);
        c.retarget(5);
        c.split(Prefix::from_bit_str("00000"));
        let id = ids::Id::hash(b"urn:epc:id:sgtin:0614141.1.1");
        let leaf = c.leaf_for(&id).expect("partition covers every id");
        assert!(leaf.matches(&id));
        assert_eq!(c.leaves().filter(|p| p.matches(&id)).count(), 1);
    }

    /// The schedule op for the satellite property: random `Lp`
    /// grow/shrink interleaved with arbitrary single-triangle splits
    /// and merges (selectors resolved modulo the live leaf set).
    #[derive(Clone, Debug)]
    enum Op {
        Retarget(usize),
        Split(usize),
        Merge(usize),
    }

    #[test]
    fn random_lp_walks_preserve_the_partition() {
        // The satellite requirement: a random sequence of Lp grow/shrink
        // (plus triangle-local churn) always leaves the cover complete
        // and non-overlapping, with retarget landing at uniform depth.
        let strategy = schedule(1..25)
            .with_op(4, |rng| Op::Retarget(detrand::Rng::gen_range(rng, 0..=9)))
            .with_op(2, |rng| Op::Split(detrand::Rng::gen_range(rng, 0..4096)))
            .with_op(2, |rng| Op::Merge(detrand::Rng::gen_range(rng, 0..4096)))
            .with_op_shrink(|op| match op {
                Op::Retarget(l) => (0..*l).map(Op::Retarget).collect(),
                Op::Split(s) => (0..*s.min(&8)).map(Op::Split).collect(),
                Op::Merge(s) => (0..*s.min(&8)).map(Op::Merge).collect(),
            });
        proptiny::run(
            "random_lp_walks_preserve_the_partition",
            &proptiny::Config::with_cases(96),
            &(strategy,),
            |(ops,): (Vec<Op>,)| {
                let mut c = TriangleCover::uniform(3);
                let mut target = 3usize;
                for op in &ops {
                    match op {
                        Op::Retarget(lp) => {
                            target = *lp;
                            c.retarget(*lp);
                            prop_assert!(c.leaves().all(|p| p.len() == *lp));
                        }
                        Op::Split(sel) => {
                            let i = sel % c.len();
                            let p = *c.leaves().nth(i).unwrap();
                            c.split(p);
                        }
                        Op::Merge(sel) => {
                            let i = sel % c.len();
                            let p = *c.leaves().nth(i).unwrap();
                            if let Some(parent) = p.parent() {
                                c.merge(parent);
                            }
                        }
                    }
                    prop_assert!(
                        c.check_partition().is_ok(),
                        "after {op:?}: {}",
                        c.check_partition().unwrap_err()
                    );
                }
                // A final retarget from any churned state restores the
                // uniform cover.
                c.retarget(target);
                prop_assert_eq!(c.len(), 1usize << target);
                prop_assert!(c.check_partition().is_ok());
                proptiny::CaseResult::Pass
            },
        );
    }
}
