//! The protocol engine: per-site state plus every message handler.
//!
//! [`NetWorld`] owns all distributed state — the Chord ring, each site's
//! window buffer, IOP repository and gateway shards — and implements
//! [`simnet::World`] so the discrete-event engine can drive it. The
//! structure mirrors §III/§IV exactly:
//!
//! * a capture appends an open IOP record locally, then either reports
//!   the arrival individually (**M1**) or buffers it in the adaptive
//!   window (§IV-A.1);
//! * a gateway receiving an arrival/group batch updates its index and
//!   threads the IOP links with **M2**/**M3** (batched per source site
//!   in group mode);
//! * unknown objects trigger the Fig. 5 `refresh_from_ascent` /
//!   `refresh_from_descent` fetches (charged as `Refresh` traffic;
//!   executed as zero-latency RPCs — the figures measure message
//!   volume, not indexing latency, see DESIGN.md);
//! * overfull shards delegate their earliest `α·count` records to the
//!   two Data-Triangle children (Fig. 5 `update_index`);
//! * changes of `Lp` run the splitting–merging process (§IV-A.2) when
//!   `eager_split_merge` is set.

use crate::bytebuf::{ByteBuf, Bytes};
use crate::codec;
use crate::config::{Config, GroupConfig, IndexingMode, SizeEstimation};
use crate::grouping::group_batch;
use crate::messages::{Msg, Wire, ENTRY_BYTES, HEADER_BYTES, OBJECT_ID_BYTES, PREFIX_BYTES};
use crate::spans;
use crate::store::{GatewayStore, IndexEntry, IopRecord, IopStore, Link, PrefixIndex};
use crate::window::{WindowBatch, WindowBuffer, WindowEvent};
use chord::Ring;
use ids::{Id, Prefix};
use moods::{ObjectId, SiteId};
use qcache::{CacheStats, EpochTable, LocateCache};
use simnet::{MsgClass, NodeIndex, Sim, SimTime, TimerId, World};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Timer-kind tags (high byte of the `u64` timer kind).
const TAG_SHIFT: u32 = 56;
/// Window `Tmax` expiry; value = site index.
pub(crate) const TAG_WINDOW: u64 = 1;
/// Scheduled capture; value = pending-capture id.
pub(crate) const TAG_CAPTURE: u64 = 2;
/// Ack timeout for a sequenced delivery; value = sequence number.
pub(crate) const TAG_RETRY: u64 = 3;
/// One-shot anti-entropy digest exchange; value = site index. Armed by
/// a replicated write, never periodic — a quiescent network stays
/// quiescent.
pub(crate) const TAG_ANTIENTROPY: u64 = 4;

fn timer_kind(tag: u64, value: u64) -> u64 {
    debug_assert!(value < (1 << TAG_SHIFT));
    (tag << TAG_SHIFT) | value
}

/// One organization's full state.
pub struct SiteState {
    /// Application-level identity.
    pub site: SiteId,
    /// Ring identity (SHA-1 of the site's external address).
    pub chord_id: Id,
    /// False once the site has left the network.
    pub alive: bool,
    /// Group-mode capture window.
    pub window: WindowBuffer,
    /// Pending `Tmax` timer for the open window, if any.
    window_timer: Option<TimerId>,
    /// Local repository (IOP records).
    pub iop: IopStore,
    /// Index shards this site hosts as a gateway.
    pub gateway: GatewayStore,
    /// Cached gateway locations per prefix (§IV-A.2 address caching):
    /// owner site index at the time of first contact.
    gateway_cache: HashMap<Prefix, usize>,
    /// Sequence numbers already processed (retry mode): retransmissions
    /// and fault-plane duplicates are acked again but not re-applied —
    /// IOP upserts are not idempotent, so at-least-once delivery plus
    /// this filter gives exactly-once processing.
    seen_seqs: HashSet<u64>,
    /// Replica copies of other primaries' IOP repositories, keyed by
    /// the primary's site id. Held only when `Config.replication` puts
    /// this site in the primary's successor set; kept separate from the
    /// primary stores so index-placement invariants keep holding on the
    /// primary copies alone.
    pub replica_iop: HashMap<SiteId, IopStore>,
    /// Replica copies of other primaries' gateway stores, same keying.
    pub replica_gateway: HashMap<SiteId, GatewayStore>,
    /// Pending one-shot anti-entropy timer, if a write armed one.
    antientropy_timer: Option<TimerId>,
    /// Locate-answer cache (DESIGN.md §15), allocated only when
    /// `Config.locate_cache` is set. Derived state: never replicated,
    /// never persisted, cleared wholesale on membership change.
    pub(crate) locate_cache: Option<LocateCache<Link>>,
    /// Locates this node answered (cache hits, local/intermediate
    /// answers, gateway lookups) — the hot-shard load metric. Pure
    /// bookkeeping: counting never touches RNG, metrics or dispatch,
    /// so it is always on.
    pub(crate) query_load: u64,
}

/// Counters for conditions that should not occur in well-formed runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Anomalies {
    /// Gateway saw an arrival older than the indexed latest state
    /// (message reordering faster than the movement cadence).
    pub out_of_order_arrivals: u64,
    /// IOP update targeting a record the site does not hold (e.g. the
    /// site re-joined after data loss).
    pub dangling_iop_updates: u64,
    /// Messages dropped because the destination site had left.
    pub dropped_to_dead: u64,
    /// Deliveries that exhausted every retry attempt without an ack.
    pub retries_exhausted: u64,
    /// Duplicate deliveries (retransmission or fault-plane duplication)
    /// suppressed by the receiver's sequence filter.
    pub duplicates_suppressed: u64,
    /// Refresh RPCs abandoned because every attempt was lost (the
    /// entries stay at the remote shard; the index is stale until the
    /// next refresh).
    pub refresh_failures: u64,
}

/// The distributed system: ring + every site's state.
pub struct NetWorld {
    /// Static configuration.
    pub config: Config,
    /// The Chord overlay.
    pub ring: Ring,
    /// All sites ever created; index = `SiteId.0` = simnet `NodeIndex`.
    pub sites: Vec<SiteState>,
    /// Current global prefix length `Lp` (group mode).
    pub current_lp: usize,
    /// Prefixes that hold index data somewhere in the network. Nodes
    /// learn populated prefix *lengths* from the `Lp` reconfiguration
    /// broadcasts; we keep the exact set for determinism.
    hosted: HashSet<Prefix>,
    /// Deferred captures keyed by pending id.
    pending_captures: HashMap<u64, (SiteId, Vec<ObjectId>)>,
    next_pending: u64,
    /// Anomaly counters (see [`Anomalies`]).
    pub anomalies: Anomalies,
    /// Next wire sequence number (0 is reserved for unsequenced traffic).
    next_seq: u64,
    /// Unacked sequenced sends awaiting their retry timer.
    pending_retries: HashMap<u64, PendingSend>,
    /// Open end-to-end message spans keyed by wire sequence number
    /// (only populated while a trace sink is installed). Keying by seq
    /// makes the span cover retransmissions: it closes when the first
    /// copy is processed, whichever attempt delivered it.
    pending_spans: HashMap<u64, simnet::SpanId>,
    /// Per-object movement epochs guarding cached locate answers
    /// (DESIGN.md §15). Only maintained while `Config.locate_cache` is
    /// set — the off path never touches it.
    pub(crate) epochs: EpochTable,
    /// WAN topology, when the network was built with `Builder::geo`.
    /// The query path charges its deterministic wire costs from it
    /// (base matrix only, never jitter — queries stay RNG-free);
    /// `None`, or a zero topology, adds nothing.
    pub geo: Option<geo::Topology>,
}

/// A sequenced send the retry layer may have to retransmit.
struct PendingSend {
    from: usize,
    to: usize,
    hops: u32,
    msg: Msg,
    /// Delivery attempts made so far (first send included).
    attempts: u32,
    timer: TimerId,
}

impl NetWorld {
    /// Empty world with the given configuration. Sites are added by the
    /// builder / churn API in [`crate::net`].
    pub fn new(config: Config) -> NetWorld {
        let lp = match config.mode {
            IndexingMode::Group(g) => g.l_min,
            IndexingMode::Individual => 0,
        };
        NetWorld {
            config,
            ring: Ring::new(),
            sites: Vec::new(),
            current_lp: lp,
            hosted: HashSet::new(),
            pending_captures: HashMap::new(),
            next_pending: 0,
            anomalies: Anomalies::default(),
            next_seq: 1,
            pending_retries: HashMap::new(),
            pending_spans: HashMap::new(),
            epochs: EpochTable::new(),
            geo: None,
        }
    }

    /// Group configuration, if running in group mode.
    pub fn group_config(&self) -> Option<GroupConfig> {
        match self.config.mode {
            IndexingMode::Group(g) => Some(g),
            IndexingMode::Individual => None,
        }
    }

    /// Is this prefix known to hold data anywhere?
    pub fn is_hosted(&self, p: &Prefix) -> bool {
        self.hosted.contains(p)
    }

    /// Number of live sites.
    pub fn live_sites(&self) -> usize {
        self.sites.iter().filter(|s| s.alive).count()
    }

    // ------------------------------------------------------------------
    // Site plumbing
    // ------------------------------------------------------------------

    /// Register a new site's state (ring membership handled by caller).
    pub(crate) fn push_site(&mut self, chord_id: Id, n_max: usize) -> SiteId {
        let site = SiteId(self.sites.len() as u32);
        self.sites.push(SiteState {
            site,
            chord_id,
            alive: true,
            window: WindowBuffer::new(site, n_max),
            window_timer: None,
            iop: IopStore::new(),
            gateway: GatewayStore::new(),
            gateway_cache: HashMap::new(),
            seen_seqs: HashSet::new(),
            replica_iop: HashMap::new(),
            replica_gateway: HashMap::new(),
            antientropy_timer: None,
            locate_cache: self.config.locate_cache.map(LocateCache::new),
            query_load: 0,
        });
        site
    }

    fn site_idx(&self, site: SiteId) -> usize {
        site.0 as usize
    }

    /// Route from a site towards a DHT key: returns `(owner site index,
    /// hops)`. Panics on routing failure — the runtime stabilizes after
    /// churn, so lookups always converge.
    pub(crate) fn route(&self, from: SiteId, key: Id) -> (usize, u32) {
        let from_chord = self.sites[self.site_idx(from)].chord_id;
        let r = self.ring.lookup(from_chord, key).expect("overlay lookup failed");
        let owner = self.ring.app_index_of(&r.owner).expect("owner is a member");
        (owner, r.hops)
    }

    /// [`NetWorld::route`], additionally emitting one `LookupHop` trace
    /// event per node visited when a sink is installed. Behaviour and
    /// result are identical to `route` — tracing never changes routing.
    pub(crate) fn route_traced(
        &self,
        sim: &mut Sim<Wire>,
        from: SiteId,
        key: Id,
    ) -> (usize, u32) {
        let from_chord = self.sites[self.site_idx(from)].chord_id;
        let r = self.ring.lookup(from_chord, key).expect("overlay lookup failed");
        let owner = self.ring.app_index_of(&r.owner).expect("owner is a member");
        if sim.tracing() && r.path.len() > 1 {
            let path = self.ring.app_path(&r.path[1..]);
            sim.trace_lookup_path(self.site_idx(from), &path);
        }
        (owner, r.hops)
    }

    /// The gateway key for an object under the current mode.
    pub fn gateway_key(&self, object: ObjectId) -> Id {
        match self.config.mode {
            IndexingMode::Individual => object.id(),
            IndexingMode::Group(_) => {
                Prefix::of_id(&object.id(), self.current_lp).gateway_id()
            }
        }
    }

    // ------------------------------------------------------------------
    // Capture path
    // ------------------------------------------------------------------

    /// A receptor at `site` captured `objects` at the current instant.
    pub fn capture_now(&mut self, sim: &mut Sim<Wire>, site: SiteId, objects: &[ObjectId]) {
        let idx = self.site_idx(site);
        assert!(self.sites[idx].alive, "capture at a departed site {site}");
        let now = sim.now();
        for &o in objects {
            self.sites[idx].iop.capture(o, now);
        }
        let capture_keys: Vec<(ObjectId, SimTime)> =
            objects.iter().map(|&o| (o, now)).collect();
        self.replicate_iop(sim, idx, &capture_keys);
        let tracing = sim.tracing();
        match self.config.mode {
            IndexingMode::Individual => {
                for &o in objects {
                    if tracing {
                        sim.set_trace_ctx(spans::object_tag(o));
                    }
                    let (owner, hops) = self.route_traced(sim, site, o.id());
                    let msg = Msg::Arrival { object: o, site, time: now };
                    self.dispatch(sim, idx, owner, hops, msg);
                }
            }
            IndexingMode::Group(g) => {
                for &o in objects {
                    // Tag the window push with the object so the
                    // armed `Tmax` timer (and a count-triggered flush)
                    // are causally attributable to a capture.
                    if tracing {
                        sim.set_trace_ctx(spans::object_tag(o));
                    }
                    let ev = self.sites[idx].window.push(o, now);
                    match ev {
                        WindowEvent::ArmTimer => {
                            let t = sim.set_timer(idx, g.t_max, timer_kind(TAG_WINDOW, idx as u64));
                            self.sites[idx].window_timer = Some(t);
                        }
                        WindowEvent::Buffered => {}
                        WindowEvent::FlushByCount(batch) => {
                            if let Some(t) = self.sites[idx].window_timer.take() {
                                sim.cancel_timer(t);
                            }
                            self.index_batch(sim, batch);
                        }
                    }
                }
            }
        }
        if tracing {
            sim.clear_trace_ctx();
        }
    }

    /// Queue a capture for time `at` (workload injection).
    pub fn schedule_capture(
        &mut self,
        sim: &mut Sim<Wire>,
        at: SimTime,
        site: SiteId,
        objects: Vec<ObjectId>,
    ) {
        let id = self.next_pending;
        self.next_pending += 1;
        // Tag the injection with the object (single-object captures,
        // the auditor's shape) so the whole downstream chain of this
        // capture/movement is anchored to it.
        let tagged = sim.tracing() && objects.len() == 1;
        if tagged {
            sim.set_trace_ctx(spans::object_tag(objects[0]));
        }
        self.pending_captures.insert(id, (site, objects));
        sim.schedule(at, self.site_idx(site), timer_kind(TAG_CAPTURE, id));
        if tagged {
            sim.clear_trace_ctx();
        }
    }

    /// Flush every open window immediately (orderly shutdown; also used
    /// by tests to avoid waiting out `Tmax`).
    pub fn flush_all_windows(&mut self, sim: &mut Sim<Wire>) {
        for idx in 0..self.sites.len() {
            if self.sites[idx].alive {
                self.flush_site_window(sim, idx);
            }
        }
    }

    /// Flush one site's open window immediately.
    pub(crate) fn flush_site_window(&mut self, sim: &mut Sim<Wire>, idx: usize) {
        if let Some(t) = self.sites[idx].window_timer.take() {
            sim.cancel_timer(t);
        }
        if let Some(batch) = self.sites[idx].window.flush(sim.now()) {
            self.index_batch(sim, batch);
        }
    }

    // ------------------------------------------------------------------
    // Group indexing (§IV)
    // ------------------------------------------------------------------

    /// Send one `GroupIndex` message per group in the batch (§IV-A.2).
    /// With address caching on, a prefix gateway already contacted is
    /// reached directly (1 hop) instead of via a fresh DHT lookup.
    fn index_batch(&mut self, sim: &mut Sim<Wire>, batch: WindowBatch) {
        let site = batch.site;
        let idx = self.site_idx(site);
        let caching = self.config_caches_addresses();
        for group in group_batch(&batch.observations, self.current_lp) {
            let (owner, hops) = match self.sites[idx].gateway_cache.get(&group.prefix) {
                Some(&owner) if caching => (owner, 1),
                _ => {
                    let key = group.prefix.gateway_id();
                    let r = self.route_traced(sim, site, key);
                    if caching {
                        self.sites[idx].gateway_cache.insert(group.prefix, r.0);
                    }
                    r
                }
            };
            let msg = Msg::GroupIndex { prefix: group.prefix, site, members: group.members };
            self.dispatch(sim, idx, owner, hops, msg);
        }
    }

    fn config_caches_addresses(&self) -> bool {
        self.group_config().map(|g| g.cache_gateway_addresses).unwrap_or(false)
    }

    /// Drop every site's gateway-address cache (membership or `Lp`
    /// changed; stale addresses would misroute index updates). Locate
    /// caches drop too: a membership change can move index ownership
    /// wholesale, and conservative correctness beats retained warmth —
    /// re-indexing that lands *after* this clear re-enters the caches
    /// through the epoch-bumped write path.
    pub(crate) fn invalidate_gateway_caches(&mut self) {
        for s in &mut self.sites {
            s.gateway_cache.clear();
            if let Some(c) = s.locate_cache.as_mut() {
                c.clear();
            }
        }
    }

    /// Advance `o`'s movement epoch, killing every cached locate answer
    /// for it. Called exactly where a stored latest gateway link
    /// *changes content* (a fresh visit is indexed); moves of unchanged
    /// entries (delegation, refresh fetches, shard migration) leave the
    /// answer intact and do not bump. No-op while caching is off — the
    /// epoch table belongs to the opt-in subsystem.
    fn bump_epoch(&mut self, o: ObjectId) {
        if self.config.locate_cache.is_some() {
            self.epochs.bump(o);
        }
    }

    /// Deliver a message, short-circuiting self-sends (a node does not
    /// pay network cost to talk to itself). Networked sends are
    /// sequenced; with the retry layer enabled they are also tracked
    /// for retransmission until acked.
    fn dispatch(&mut self, sim: &mut Sim<Wire>, from: usize, to: usize, hops: u32, msg: Msg) {
        if from == to {
            self.handle(sim, to, from, Wire::unsequenced(msg));
            return;
        }
        // An IOP update aimed at a permanently failed site is repaired
        // onto the holders of its replica repository instead of being
        // dropped on the floor (replication mode only).
        if self.replication_on()
            && !self.sites[to].alive
            && matches!(msg, Msg::SetTo { .. } | Msg::SetFrom { .. })
        {
            self.redirect_to_replicas(sim, from, to, msg);
            return;
        }
        let class = msg.class();
        let bytes = msg.wire_size();
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut tagged = false;
        if sim.tracing() {
            // Tag single-object payloads so the trace can be filtered
            // per object; batched payloads stay linked via the causal
            // chain instead.
            if let Some(o) = msg.single_object() {
                sim.set_trace_ctx(spans::object_tag(o));
                tagged = true;
            }
            if let Some(kind) = spans::for_class(class) {
                let span = sim.span_open(kind, from);
                self.pending_spans.insert(seq, span);
            }
        }
        if self.config.retry.enabled {
            let timer =
                sim.set_timer(from, self.config.retry.timeout, timer_kind(TAG_RETRY, seq));
            self.pending_retries.insert(
                seq,
                PendingSend { from, to, hops, msg: msg.clone(), attempts: 1, timer },
            );
        }
        sim.send(from, to, class, bytes, hops, Wire { seq, msg });
        if tagged {
            sim.clear_trace_ctx();
        }
    }

    /// Send the ack for an accepted sequenced delivery (retry mode).
    /// Acks are themselves unsequenced: a lost ack is repaired by the
    /// retransmission it fails to suppress.
    fn send_ack(&mut self, sim: &mut Sim<Wire>, from: usize, to: usize, seq: u64) {
        let ack = Msg::Ack { acked: seq };
        let bytes = ack.wire_size();
        sim.send(from, to, MsgClass::Ack, bytes, 1, Wire::unsequenced(ack));
    }

    fn handle(&mut self, sim: &mut Sim<Wire>, to: usize, from: usize, wire: Wire) {
        let Wire { seq, msg } = wire;
        if let Msg::Ack { acked } = msg {
            // Acks complete the sender's pending entry even if the
            // sender has since left — there is nothing to retransmit.
            if let Some(p) = self.pending_retries.remove(&acked) {
                sim.cancel_timer(p.timer);
            }
            return;
        }
        if !self.sites[to].alive {
            self.anomalies.dropped_to_dead += 1;
            return;
        }
        if seq != 0 {
            if self.config.retry.enabled {
                self.send_ack(sim, to, from, seq);
            }
            if !self.sites[to].seen_seqs.insert(seq) {
                self.anomalies.duplicates_suppressed += 1;
                return;
            }
            // First processed copy of this sequence number: the
            // end-to-end message span (opened at dispatch) ends here.
            if !self.pending_spans.is_empty() {
                if let Some(span) = self.pending_spans.remove(&seq) {
                    sim.span_close(span);
                }
            }
        }
        match msg {
            Msg::Arrival { object, site, time } => {
                self.handle_arrival(sim, to, object, site, time);
            }
            Msg::GroupIndex { prefix, site, members } => {
                self.handle_group_index(sim, to, prefix, site, members);
            }
            Msg::SetTo { updates } => {
                let mut touched = Vec::with_capacity(updates.len());
                for (o, arrived, link) in updates {
                    if self.sites[to].iop.set_to(o, arrived, link) {
                        touched.push((o, arrived));
                    } else {
                        self.anomalies.dangling_iop_updates += 1;
                    }
                }
                self.replicate_iop(sim, to, &touched);
            }
            Msg::SetFrom { updates } => {
                let mut touched = Vec::with_capacity(updates.len());
                for (o, arrived, link) in updates {
                    if self.sites[to].iop.set_from(o, arrived, link) {
                        touched.push((o, arrived));
                    } else {
                        self.anomalies.dangling_iop_updates += 1;
                    }
                }
                self.replicate_iop(sim, to, &touched);
            }
            Msg::Delegate { prefix, entries } => {
                for (o, e) in entries {
                    self.merge_entry(sim, to, prefix, o, e);
                }
                self.replicate_shard(sim, to, Some(prefix));
            }
            Msg::Migrate { prefix, entries } => match prefix {
                Some(p) => {
                    for (o, e) in entries {
                        self.merge_entry(sim, to, p, o, e);
                    }
                    self.replicate_shard(sim, to, Some(p));
                }
                None => {
                    for (o, e) in entries {
                        match self.sites[to].gateway.objects.get(&o).copied() {
                            Some(ex) if ex.time > e.time => {} // racing update won
                            Some(ex) if ex.time == e.time && e.prev.is_none() => {}
                            _ => {
                                self.sites[to].gateway.objects.insert(o, e);
                            }
                        }
                    }
                    self.replicate_shard(sim, to, None);
                }
            },
            Msg::Ack { .. } => unreachable!("acks handled before dispatch"),
            Msg::ReplIop { primary, updates } => {
                let store = self.sites[to].replica_iop.entry(primary).or_default();
                for (o, rec) in updates {
                    store.upsert_record(o, rec);
                }
            }
            Msg::ReplShard { primary, prefix, entries, delegated } => {
                let gw = self.sites[to].replica_gateway.entry(primary).or_default();
                match prefix {
                    Some(p) => {
                        if entries.is_empty() && !delegated {
                            gw.prefixes.remove(&p);
                        } else {
                            let shard = gw.shard_mut(p);
                            *shard = PrefixIndex::new();
                            shard.delegated = delegated;
                            for (o, e) in entries {
                                shard.upsert(o, e);
                            }
                        }
                    }
                    None => {
                        gw.objects = entries.into_iter().collect();
                    }
                }
            }
            Msg::ReplDigest { primary, digest } => {
                let mine = Id::hash(&self.replica_state_bytes(to, primary));
                if mine != digest {
                    self.dispatch(sim, to, from, 1, Msg::ReplSyncReq { primary });
                }
            }
            Msg::ReplSyncReq { primary } => {
                debug_assert_eq!(self.sites[to].site, primary, "sync request misrouted");
                let state = self.store_state_bytes(to);
                self.dispatch(sim, to, from, 1, Msg::ReplState { primary, state });
            }
            Msg::ReplState { primary, state } => {
                let mut bytes = Bytes::from(state);
                let iop = codec::get_state_iop(&mut bytes).expect("well-formed replica state");
                let gw =
                    codec::get_state_gateway(&mut bytes).expect("well-formed replica state");
                self.sites[to].replica_iop.insert(primary, iop);
                self.sites[to].replica_gateway.insert(primary, gw);
            }
            Msg::ReplIopPatch { primary, set_to, set_from } => {
                let store = self.sites[to].replica_iop.entry(primary).or_default();
                for (o, arrived, link) in set_to {
                    let mut rec = store
                        .record_at(o, arrived)
                        .copied()
                        .unwrap_or(IopRecord { arrived, from: None, to: None });
                    rec.to = Some(link);
                    store.upsert_record(o, rec);
                }
                for (o, arrived, from_link) in set_from {
                    let mut rec = store
                        .record_at(o, arrived)
                        .copied()
                        .unwrap_or(IopRecord { arrived, from: None, to: None });
                    rec.from = from_link;
                    store.upsert_record(o, rec);
                }
            }
        }
        let _ = from;
    }

    /// A retry timer fired: retransmit if the delivery is still unacked
    /// and attempts remain, else record exhaustion.
    fn handle_retry_timeout(&mut self, sim: &mut Sim<Wire>, seq: u64) {
        let Some(mut p) = self.pending_retries.remove(&seq) else {
            return; // acked in the meantime
        };
        if !self.sites[p.from].alive {
            return; // sender left; nothing to repair
        }
        if p.attempts >= self.config.retry.max_attempts {
            self.anomalies.retries_exhausted += 1;
            return;
        }
        p.attempts += 1;
        let delay = self.config.retry.delay_after(p.attempts);
        p.timer = sim.set_timer(p.from, delay, timer_kind(TAG_RETRY, seq));
        sim.send(
            p.from,
            p.to,
            MsgClass::Retrans,
            p.msg.wire_size(),
            p.hops,
            Wire { seq, msg: p.msg.clone() },
        );
        self.pending_retries.insert(seq, p);
    }

    /// Individual-mode gateway logic (§III, Fig. 2): update the index,
    /// send M2 to the source and M3 to the destination of the move.
    fn handle_arrival(
        &mut self,
        sim: &mut Sim<Wire>,
        gw: usize,
        object: ObjectId,
        site: SiteId,
        time: SimTime,
    ) {
        let prev = self.sites[gw].gateway.objects.get(&object).copied();
        if let Some(p) = prev {
            if p.time > time {
                self.anomalies.out_of_order_arrivals += 1;
                return;
            }
        }
        let entry = IndexEntry { site, time, prev: prev.map(|p| p.link()) };
        self.sites[gw].gateway.objects.insert(object, entry);
        self.bump_epoch(object);
        self.replicate_shard(sim, gw, None);

        let new_link = Link { site, time };
        if let Some(p) = prev {
            // M2 — direct (the index stores the source's address).
            let m2 = Msg::SetTo { updates: vec![(object, p.time, new_link)] };
            self.dispatch(sim, gw, self.site_idx(p.site), 1, m2);
        }
        // M3 — direct to the capturing node.
        let m3 = Msg::SetFrom { updates: vec![(object, time, prev.map(|p| p.link()))] };
        self.dispatch(sim, gw, self.site_idx(site), 1, m3);
    }

    /// Group-mode gateway logic — the Fig. 5 `index` algorithm.
    fn handle_group_index(
        &mut self,
        sim: &mut Sim<Wire>,
        gw: usize,
        prefix: Prefix,
        site: SiteId,
        members: Vec<(ObjectId, SimTime)>,
    ) {
        // objects' ← members not indexed locally (Fig. 5 line 2; the
        // paper's set expression has the operands transposed — the
        // accompanying comment "objects which are not stored locally"
        // fixes the intent).
        let unknown: Vec<ObjectId> = {
            let shard = self.sites[gw].gateway.shard_mut(prefix);
            members
                .iter()
                .map(|&(o, _)| o)
                .filter(|o| shard.get(o).is_none())
                .collect()
        };

        if !unknown.is_empty() {
            let mut missing: HashSet<ObjectId> = unknown.into_iter().collect();
            self.refresh_from_ascent(sim, gw, prefix, &mut missing);
            if !missing.is_empty() {
                self.refresh_from_descent(sim, gw, prefix, &mut missing);
            }
        }

        // update_index: thread IOP links, batching M2 per source site
        // and M3 to the capturing site ("one message for each group of
        // objects which are from the same node").
        let mut m2: BTreeMap<SiteId, Vec<(ObjectId, SimTime, Link)>> = BTreeMap::new();
        let mut m3: Vec<(ObjectId, SimTime, Option<Link>)> = Vec::with_capacity(members.len());
        {
            let shard = self.sites[gw].gateway.shard_mut(prefix);
            for &(o, t) in &members {
                let prev = shard.get(&o).copied();
                if let Some(p) = prev {
                    if p.time > t {
                        self.anomalies.out_of_order_arrivals += 1;
                        continue;
                    }
                }
                shard.upsert(o, IndexEntry { site, time: t, prev: prev.map(|p| p.link()) });
                let new_link = Link { site, time: t };
                if let Some(p) = prev {
                    m2.entry(p.site).or_default().push((o, p.time, new_link));
                }
                m3.push((o, t, prev.map(|p| p.link())));
            }
        }
        self.hosted.insert(prefix);
        // `m3` holds exactly the accepted upserts: each changed the
        // stored latest link for its object.
        if self.config.locate_cache.is_some() {
            for &(o, _, _) in &m3 {
                self.epochs.bump(o);
            }
        }

        for (dest, updates) in m2 {
            let msg = Msg::SetTo { updates };
            self.dispatch(sim, gw, self.site_idx(dest), 1, msg);
        }
        if !m3.is_empty() {
            let msg = Msg::SetFrom { updates: m3 };
            self.dispatch(sim, gw, self.site_idx(site), 1, msg);
        }

        self.maybe_delegate(sim, gw, prefix);
        // One shard replication covers both the index upserts above and
        // any shrink `maybe_delegate` just performed (the delegation
        // receivers replicate their own shards on receipt).
        self.replicate_shard(sim, gw, Some(prefix));
    }

    /// Install one handed-off index entry (shard migration or triangle
    /// delegation), merging with any entry a concurrent index update
    /// created at this gateway while the handoff was in flight — a
    /// handoff can be arbitrarily delayed by loss and retransmission.
    /// The two racing visits are re-threaded into one IOP chain where
    /// possible (late M2/M3 repairs); a conflict that cannot be
    /// reconciled locally is counted as an out-of-order arrival so
    /// exactness-sensitive consumers can back off.
    fn merge_entry(
        &mut self,
        sim: &mut Sim<Wire>,
        gw: usize,
        p: Prefix,
        o: ObjectId,
        e: IndexEntry,
    ) {
        let Some(ex) = self.sites[gw].gateway.shard_mut(p).get(&o).copied() else {
            self.sites[gw].gateway.shard_mut(p).upsert(o, e);
            return;
        };
        if ex.time == e.time {
            // The same visit arrived twice (e.g. a duplicated handoff);
            // keep the richer threading.
            if ex.prev.is_none() && e.prev.is_some() {
                self.sites[gw].gateway.shard_mut(p).upsert(o, e);
            }
            return;
        }
        let handoff_is_newer = ex.time < e.time;
        let (older, newer) = if handoff_is_newer { (ex, e) } else { (e, ex) };
        // When the handoff carries the newer visit, the stored latest
        // link changes content below — cached answers die with it. (The
        // reverse direction only enriches threading; the answer stands.)
        if handoff_is_newer {
            self.bump_epoch(o);
        }
        if newer.prev == Some(older.link()) {
            // Already threaded past the older visit — nothing to repair.
            if handoff_is_newer {
                self.sites[gw].gateway.shard_mut(p).upsert(o, newer);
            }
        } else if newer.prev.is_none() {
            // Thread the older visit in as the newer one's predecessor
            // and repair the repositories' links (late M2/M3).
            let merged = IndexEntry { prev: Some(older.link()), ..newer };
            self.sites[gw].gateway.shard_mut(p).upsert(o, merged);
            let m2 = Msg::SetTo { updates: vec![(o, older.time, newer.link())] };
            self.dispatch(sim, gw, self.site_idx(older.site), 1, m2);
            let m3 = Msg::SetFrom { updates: vec![(o, newer.time, Some(older.link()))] };
            self.dispatch(sim, gw, self.site_idx(newer.site), 1, m3);
        } else {
            // The newer visit already has a different predecessor: the
            // older one belongs somewhere mid-chain. Keep the newer
            // entry and record the reordering.
            if handoff_is_newer {
                self.sites[gw].gateway.shard_mut(p).upsert(o, newer);
            }
            self.anomalies.out_of_order_arrivals += 1;
        }
    }

    /// Fig. 5 `refresh_from_ascent`: walk shorter prefixes (nearest
    /// ancestor first, down to `Lmin`), fetching — *moving* — any index
    /// entries for the missing objects into the local shard.
    fn refresh_from_ascent(
        &mut self,
        sim: &mut Sim<Wire>,
        gw: usize,
        prefix: Prefix,
        missing: &mut HashSet<ObjectId>,
    ) {
        let Some(g) = self.group_config() else { return };
        let mut l = prefix.len();
        while l > g.l_min && !missing.is_empty() {
            l -= 1;
            let p = prefix.truncate(l);
            self.fetch_remote(sim, gw, p, prefix, missing);
        }
    }

    /// Fig. 5 `refresh_from_descent`: recurse into hosted child prefixes
    /// fetching entries for the missing objects.
    fn refresh_from_descent(
        &mut self,
        sim: &mut Sim<Wire>,
        gw: usize,
        prefix: Prefix,
        missing: &mut HashSet<ObjectId>,
    ) {
        self.descend(sim, gw, prefix, prefix, missing);
    }

    fn descend(
        &mut self,
        sim: &mut Sim<Wire>,
        gw: usize,
        node: Prefix,
        dest: Prefix,
        missing: &mut HashSet<ObjectId>,
    ) {
        if missing.is_empty() || node.len() >= ids::prefix::MAX_PREFIX_BITS {
            return;
        }
        for one in [false, true] {
            let child = node.child(one);
            // filter(objects, p+bit): only objects under this child.
            if !missing.iter().any(|o| child.matches(&o.id())) {
                continue;
            }
            let was_hosted = self.is_hosted(&child);
            self.fetch_remote(sim, gw, child, dest, missing);
            if was_hosted {
                self.descend(sim, gw, child, dest, missing);
            }
        }
    }

    /// One refresh fetch: take matching entries from the shard at
    /// `p`'s gateway into `gw`'s shard for the original prefix, charging
    /// a request/reply pair of `Refresh` messages.
    fn fetch_remote(
        &mut self,
        sim: &mut Sim<Wire>,
        gw: usize,
        p: Prefix,
        dest: Prefix,
        missing: &mut HashSet<ObjectId>,
    ) {
        if !self.is_hosted(&p) {
            if self.config.count_existence_checks {
                let (_, hops) = self.route_traced(sim, self.sites[gw].site, p.gateway_id());
                sim.metrics_mut().record(MsgClass::Lookup, HEADER_BYTES + PREFIX_BYTES, hops);
            }
            return;
        }
        let (owner, hops) = self.route_traced(sim, self.sites[gw].site, p.gateway_id());
        let want: Vec<ObjectId> = missing
            .iter()
            .filter(|o| p.matches(&o.id()))
            .copied()
            .collect();
        if want.is_empty() {
            return;
        }

        // Fault plane: the fetch is a synchronous request/reply RPC, so
        // loss is sampled directly (it never crosses the event queue).
        // Either leg can be lost; with retries enabled the exchange is
        // re-attempted within the configured budget (extra requests are
        // charged as `Retrans`), otherwise a single loss abandons the
        // fetch — the entries stay at the remote shard and the local
        // index goes stale, a genuine fault the auditor can observe.
        if owner != gw && sim.has_faults() {
            let req_bytes = HEADER_BYTES + PREFIX_BYTES + want.len() * OBJECT_ID_BYTES;
            let max_attempts =
                if self.config.retry.enabled { self.config.retry.max_attempts } else { 1 };
            let mut attempt = 1u32;
            let ok = loop {
                let plane = sim.faults_mut().expect("has_faults");
                let lost = plane.sample_loss(gw, owner) || plane.sample_loss(owner, gw);
                if !lost {
                    break true;
                }
                if attempt >= max_attempts {
                    break false;
                }
                attempt += 1;
                sim.metrics_mut().record(MsgClass::Retrans, req_bytes, hops);
            };
            if !ok {
                // The initial request was still transmitted and charged.
                sim.metrics_mut().record(MsgClass::Refresh, req_bytes, hops);
                self.anomalies.refresh_failures += 1;
                return;
            }
        }

        // Take matching entries from the remote shard.
        let mut fetched: Vec<(ObjectId, IndexEntry)> = Vec::new();
        if let Some(shard) = self.sites[owner].gateway.prefixes.get_mut(&p) {
            for o in &want {
                if let Some(e) = shard.take(o) {
                    fetched.push((*o, e));
                }
            }
        }
        if self.sites[owner].gateway.prune_if_empty(&p) {
            self.hosted.remove(&p);
        }

        // Charge request + reply (even when the reply is empty: the
        // gateway could not know without asking).
        if owner != gw {
            let req_bytes = HEADER_BYTES + PREFIX_BYTES + want.len() * OBJECT_ID_BYTES;
            let rep_bytes =
                HEADER_BYTES + fetched.len() * (OBJECT_ID_BYTES + ENTRY_BYTES);
            let m = sim.metrics_mut();
            m.record(MsgClass::Refresh, req_bytes, hops);
            m.record(MsgClass::Refresh, rep_bytes, 1);
        }

        if !fetched.is_empty() {
            // History lands in the shard that requested the refresh.
            self.hosted.insert(dest);
            let shard = self.sites[gw].gateway.shard_mut(dest);
            for (o, e) in &fetched {
                shard.upsert(*o, *e);
                missing.remove(o);
            }
            // The source shard shrank (possibly to nothing); ship the
            // new content to its replica set. The destination shard is
            // replicated once by `handle_group_index` after all
            // refresh fetches land.
            self.replicate_shard(sim, owner, Some(p));
        }
    }

    /// Fig. 5 `update_index` lines 2–4: delegate the earliest `α·count`
    /// records to the two triangle children when the shard exceeds the
    /// configured threshold.
    fn maybe_delegate(&mut self, sim: &mut Sim<Wire>, gw: usize, prefix: Prefix) {
        let Some(g) = self.group_config() else { return };
        let Some(threshold) = g.delegate_threshold else { return };
        if prefix.len() >= ids::prefix::MAX_PREFIX_BITS {
            return;
        }
        let len = self.sites[gw].gateway.shard_mut(prefix).len();
        if len <= threshold {
            return;
        }
        let k = ((g.alpha * len as f64).ceil() as usize).min(len);
        let victims = self.sites[gw].gateway.shard_mut(prefix).take_earliest(k);
        self.sites[gw].gateway.shard_mut(prefix).delegated = true;

        let bit = prefix.len();
        let mut split: [Vec<(ObjectId, IndexEntry)>; 2] = [Vec::new(), Vec::new()];
        for (o, e) in victims {
            split[o.id().bit(bit) as usize].push((o, e));
        }
        for (oneness, entries) in split.into_iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            let child = prefix.child(oneness == 1);
            self.hosted.insert(child);
            let (owner, hops) = self.route_traced(sim, self.sites[gw].site, child.gateway_id());
            let msg = Msg::Delegate { prefix: child, entries };
            self.dispatch(sim, gw, owner, hops, msg);
        }
    }

    // ------------------------------------------------------------------
    // Lp maintenance: the splitting–merging process (§IV-A.2)
    // ------------------------------------------------------------------

    /// Recompute `Lp` from the (estimated) ring size; on change, run the
    /// eager splitting/merging migration if configured. Returns the new
    /// `Lp`.
    pub fn refresh_lp(&mut self, sim: &mut Sim<Wire>) -> usize {
        let Some(g) = self.group_config() else { return self.current_lp };
        let nn = self.estimated_size(sim, g);
        let target = g.scheme.lp_clamped(nn, g.l_min);
        if !g.eager_split_merge {
            self.current_lp = target;
            return target;
        }
        while self.current_lp < target {
            let l = self.current_lp;
            self.split_level(sim, l);
            self.current_lp += 1;
        }
        while self.current_lp > target {
            let l = self.current_lp;
            // Children of the old triangles sit one level below the old
            // parents; they migrate up into the (new child) level first.
            self.merge_level(sim, l + 1);
            self.current_lp -= 1;
        }
        target
    }

    /// The network size used to derive `Lp`, per the configured policy.
    /// The gossip policy simulates a full push-pull epoch over the live
    /// membership and charges its traffic (one message pair per node per
    /// round, header-sized payloads).
    fn estimated_size(&mut self, sim: &mut Sim<Wire>, g: GroupConfig) -> usize {
        match g.size_estimation {
            SizeEstimation::Exact => self.ring.len(),
            SizeEstimation::Gossip { rounds } => {
                let n = self.ring.len();
                // Under a fault plane, gossip suffers the same default
                // loss rate as the rest of the traffic (loss = 0 when no
                // plane: identical RNG draws, byte-identical runs).
                let loss = match sim.faults_mut() {
                    Some(p) => p.default_drop(),
                    None => 0.0,
                };
                let est =
                    crate::estimator::estimate_count_lossy(n, rounds, loss, sim.rng_mut());
                let m = sim.metrics_mut();
                m.record_bulk(
                    MsgClass::Gossip,
                    est.messages,
                    est.messages * 24, // one f64 value + header per exchange
                    est.messages,
                );
                est.median().round().max(1.0) as usize
            }
        }
    }

    /// Push every shard of length `l` down into its two children
    /// ("the data stored in the old parent will all be delegated into
    /// the two new parent nodes which are its child nodes").
    fn split_level(&mut self, sim: &mut Sim<Wire>, l: usize) {
        // Sorted: the shard map iterates in hash order, and dispatch
        // order feeds the latency/fault RNGs — runs must not depend on
        // the process's hasher seed.
        let mut shards: Vec<(usize, Prefix)> = self
            .sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .flat_map(|(i, s)| {
                s.gateway
                    .prefixes
                    .keys()
                    .filter(|p| p.len() == l)
                    .map(move |p| (i, *p))
                    .collect::<Vec<_>>()
            })
            .collect();
        shards.sort();
        for (idx, p) in shards {
            let entries = match self.sites[idx].gateway.prefixes.get_mut(&p) {
                Some(s) => s.drain_all(),
                None => continue,
            };
            self.sites[idx].gateway.prefixes.remove(&p);
            self.hosted.remove(&p);
            self.replicate_shard(sim, idx, Some(p)); // now empty: replicas drop it
            if entries.is_empty() {
                continue;
            }
            let mut split: [Vec<(ObjectId, IndexEntry)>; 2] = [Vec::new(), Vec::new()];
            for (o, e) in entries {
                split[o.id().bit(l) as usize].push((o, e));
            }
            for (oneness, part) in split.into_iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                let child = p.child(oneness == 1);
                self.hosted.insert(child);
                let (owner, hops) =
                    self.route_traced(sim, self.sites[idx].site, child.gateway_id());
                let msg = Msg::Migrate { prefix: Some(child), entries: part };
                self.dispatch(sim, idx, owner, hops, msg);
            }
        }
    }

    /// Merge every shard of length `l` up into its parent ("the parent
    /// node's two child nodes migrate the data they are indexing to the
    /// parent node").
    fn merge_level(&mut self, sim: &mut Sim<Wire>, l: usize) {
        if l == 0 {
            return;
        }
        // Sorted for hasher-independent dispatch order, as in
        // `split_level`.
        let mut shards: Vec<(usize, Prefix)> = self
            .sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .flat_map(|(i, s)| {
                s.gateway
                    .prefixes
                    .keys()
                    .filter(|p| p.len() == l)
                    .map(move |p| (i, *p))
                    .collect::<Vec<_>>()
            })
            .collect();
        shards.sort();
        for (idx, p) in shards {
            let entries = match self.sites[idx].gateway.prefixes.get_mut(&p) {
                Some(s) => s.drain_all(),
                None => continue,
            };
            self.sites[idx].gateway.prefixes.remove(&p);
            self.hosted.remove(&p);
            self.replicate_shard(sim, idx, Some(p)); // now empty: replicas drop it
            if entries.is_empty() {
                continue;
            }
            let parent = p.parent().expect("l > 0");
            self.hosted.insert(parent);
            let (owner, hops) =
                self.route_traced(sim, self.sites[idx].site, parent.gateway_id());
            let msg = Msg::Migrate { prefix: Some(parent), entries };
            self.dispatch(sim, idx, owner, hops, msg);
        }
    }

    // ------------------------------------------------------------------
    // Churn support (data plane; ring membership handled by `net`)
    // ------------------------------------------------------------------

    /// After a ring change, move every gateway entry/shard whose key the
    /// migration covers from `from_site` to `to_site`, charging
    /// `SplitMerge` traffic (Chord's key handoff).
    pub(crate) fn apply_migration(
        &mut self,
        sim: &mut Sim<Wire>,
        migration: &chord::Migration,
        from_idx: usize,
        to_idx: usize,
    ) {
        // Individual-mode entries move by object id. Sorted so message
        // contents and dispatch order are hasher-independent.
        let mut moved_objects: Vec<ObjectId> = self.sites[from_idx]
            .gateway
            .objects
            .keys()
            .filter(|o| migration.covers(&o.id()))
            .copied()
            .collect();
        moved_objects.sort();
        let mut entries = Vec::with_capacity(moved_objects.len());
        for o in moved_objects {
            let e = self.sites[from_idx].gateway.objects.remove(&o).expect("listed above");
            entries.push((o, e));
        }
        if !entries.is_empty() {
            let msg = Msg::Migrate { prefix: None, entries };
            self.dispatch(sim, from_idx, to_idx, 1, msg);
            self.replicate_shard(sim, from_idx, None);
        }

        // Group-mode shards move whole, by their gateway key; sorted
        // for the same reason as above.
        let mut moved_prefixes: Vec<Prefix> = self.sites[from_idx]
            .gateway
            .prefixes
            .keys()
            .filter(|p| migration.covers(&p.gateway_id()))
            .copied()
            .collect();
        moved_prefixes.sort();
        for p in moved_prefixes {
            let mut shard = self.sites[from_idx]
                .gateway
                .prefixes
                .remove(&p)
                .expect("listed above");
            let entries = shard.drain_all();
            self.replicate_shard(sim, from_idx, Some(p)); // now gone at the source
            if entries.is_empty() {
                continue;
            }
            let msg = Msg::Migrate { prefix: Some(p), entries };
            self.dispatch(sim, from_idx, to_idx, 1, msg);
        }
    }

    /// Recompute the hosted-prefix set from the shards that actually
    /// exist at live sites. Used after a crash: prefixes whose only copy
    /// lived on the dead node must stop attracting refresh fetches.
    pub(crate) fn rebuild_hosted(&mut self) {
        self.hosted = self
            .sites
            .iter()
            .filter(|s| s.alive)
            .flat_map(|s| s.gateway.prefixes.keys().copied())
            .collect();
    }

    /// Total index load per site (objects indexed as gateway) — Fig. 8a.
    pub fn load_distribution(&self) -> Vec<u64> {
        self.sites
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.gateway.load() as u64)
            .collect()
    }

    /// Locates served per live site (cache hits and local answers at
    /// the origin, intermediate/gateway answers at the answering node) —
    /// the query-load hot-shard metric (DESIGN.md §15). Always counted,
    /// caching on or off.
    pub fn query_load(&self) -> Vec<u64> {
        self.sites
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.query_load)
            .collect()
    }

    /// Aggregated locate-cache counters over every site (all zero when
    /// caching is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.sites {
            if let Some(c) = &s.locate_cache {
                let st = c.stats();
                total.hits += st.hits;
                total.misses += st.misses;
                total.stale += st.stale;
                total.insertions += st.insertions;
                total.evictions += st.evictions;
            }
        }
        total
    }

    /// Borrow a shard for inspection (tests, queries).
    pub fn shard(&self, site: SiteId, p: &Prefix) -> Option<&PrefixIndex> {
        self.sites[self.site_idx(site)].gateway.prefixes.get(p)
    }

    // ------------------------------------------------------------------
    // K-successor replication
    // ------------------------------------------------------------------
    //
    // With `Config.replication.replicas = K > 1`, every site's stores
    // (IOP repository + gateway shards) are mirrored onto its K−1 ring
    // successors. Writes fan out eagerly (`replicate_iop` /
    // `replicate_shard`), a one-shot anti-entropy timer follows each
    // write burst with a digest exchange over the canonical state
    // encoding, reads fall back to replica copies when the primary is
    // gone, and a permanent failure promotes the first successor. Every
    // entry point below no-ops when `replicas <= 1`, so the default
    // path sends no messages, arms no timers and draws no RNG values —
    // committed figure CSVs stay byte-identical.

    fn replication_on(&self) -> bool {
        self.config.replication.enabled()
    }

    /// Live site indices of `idx`'s replica set (its K−1 ring
    /// successors), in ring order. Empty when replication is off.
    fn replica_peer_idxs(&self, idx: usize) -> Vec<usize> {
        let k = self.config.replication.replicas;
        if k <= 1 {
            return Vec::new();
        }
        // `successors_of` of a member id starts with the member itself.
        self.ring
            .successors_of(&self.sites[idx].chord_id, k)
            .into_iter()
            .skip(1)
            .filter_map(|id| self.ring.app_index_of(&id))
            .filter(|&h| h != idx)
            .collect()
    }

    /// Canonical byte encoding of a site's primary stores (IOP then
    /// gateway) — the unit both digests and full-state sync hash and
    /// ship. Same sorted-key encoders the daemon's snapshots use, so
    /// semantically equal stores encode byte-identically.
    fn store_state_bytes(&self, idx: usize) -> Vec<u8> {
        let mut buf = ByteBuf::new();
        codec::put_state_iop(&mut buf, &self.sites[idx].iop);
        codec::put_state_gateway(&mut buf, &self.sites[idx].gateway);
        buf.freeze().as_slice().to_vec()
    }

    /// Canonical encoding of `holder`'s replica copy of `primary`'s
    /// stores (empty stores when the holder has no copy yet).
    fn replica_state_bytes(&self, holder: usize, primary: SiteId) -> Vec<u8> {
        let empty_iop = IopStore::new();
        let empty_gw = GatewayStore::new();
        let iop = self.sites[holder].replica_iop.get(&primary).unwrap_or(&empty_iop);
        let gw = self.sites[holder].replica_gateway.get(&primary).unwrap_or(&empty_gw);
        let mut buf = ByteBuf::new();
        codec::put_state_iop(&mut buf, iop);
        codec::put_state_gateway(&mut buf, gw);
        buf.freeze().as_slice().to_vec()
    }

    /// Arm the one-shot anti-entropy timer for `idx` unless one is
    /// already pending. Called from every replicated write.
    fn arm_antientropy(&mut self, sim: &mut Sim<Wire>, idx: usize) {
        if self.sites[idx].antientropy_timer.is_some() {
            return;
        }
        let period = self.config.replication.anti_entropy_period;
        let t = sim.set_timer(idx, period, timer_kind(TAG_ANTIENTROPY, idx as u64));
        self.sites[idx].antientropy_timer = Some(t);
    }

    /// Fan one or more IOP record updates out to `idx`'s replica set.
    /// `keys` are `(object, arrival time)` record keys; the full
    /// records are read back from the primary store so replicas always
    /// receive the post-update state.
    fn replicate_iop(&mut self, sim: &mut Sim<Wire>, idx: usize, keys: &[(ObjectId, SimTime)]) {
        if !self.replication_on() || keys.is_empty() {
            return;
        }
        let updates: Vec<(ObjectId, IopRecord)> = keys
            .iter()
            .filter_map(|&(o, t)| self.sites[idx].iop.record_at(o, t).map(|r| (o, *r)))
            .collect();
        if updates.is_empty() {
            return;
        }
        let primary = self.sites[idx].site;
        for h in self.replica_peer_idxs(idx) {
            let msg = Msg::ReplIop { primary, updates: updates.clone() };
            self.dispatch(sim, idx, h, 1, msg);
        }
        self.arm_antientropy(sim, idx);
    }

    /// Ship the full current content of one of `idx`'s gateway shards
    /// (`None` = the individual-mode object map) to its replica set.
    /// Full-shard replace semantics let removals propagate without
    /// tombstones: an empty shard drops the replica copy.
    fn replicate_shard(&mut self, sim: &mut Sim<Wire>, idx: usize, prefix: Option<Prefix>) {
        if !self.replication_on() {
            return;
        }
        let (mut entries, delegated): (Vec<(ObjectId, IndexEntry)>, bool) = match prefix {
            Some(p) => match self.sites[idx].gateway.prefixes.get(&p) {
                Some(shard) => (
                    shard.entries.iter().map(|(o, e)| (*o, *e)).collect(),
                    shard.delegated,
                ),
                None => (Vec::new(), false),
            },
            None => (
                self.sites[idx].gateway.objects.iter().map(|(o, e)| (*o, *e)).collect(),
                false,
            ),
        };
        // Sorted: message contents feed the canonical encoding at the
        // replica and must be hasher-independent.
        entries.sort_by_key(|(o, _)| *o);
        let primary = self.sites[idx].site;
        for h in self.replica_peer_idxs(idx) {
            let msg = Msg::ReplShard { primary, prefix, entries: entries.clone(), delegated };
            self.dispatch(sim, idx, h, 1, msg);
        }
        self.arm_antientropy(sim, idx);
    }

    /// Redirect an M2/M3 IOP update whose destination is permanently
    /// dead to the live holders of that site's replica repository, as a
    /// [`Msg::ReplIopPatch`]. Without replication (or with no surviving
    /// holder) the update is lost and counted, as before.
    fn redirect_to_replicas(&mut self, sim: &mut Sim<Wire>, from: usize, to: usize, msg: Msg) {
        let primary = self.sites[to].site;
        let holders: Vec<usize> = (0..self.sites.len())
            .filter(|&h| h != to && self.sites[h].alive)
            .filter(|&h| self.sites[h].replica_iop.contains_key(&primary))
            .collect();
        if holders.is_empty() {
            self.anomalies.dropped_to_dead += 1;
            return;
        }
        let (set_to, set_from) = match msg {
            Msg::SetTo { updates } => (updates, Vec::new()),
            Msg::SetFrom { updates } => (Vec::new(), updates),
            other => unreachable!("only IOP updates are redirected, got {other:?}"),
        };
        for h in holders {
            let patch = Msg::ReplIopPatch {
                primary,
                set_to: set_to.clone(),
                set_from: set_from.clone(),
            };
            self.dispatch(sim, from, h, 1, patch);
        }
    }

    /// Read a visit record, falling back to replica copies when the
    /// primary site is gone. With `replicas = 1` this is exactly the
    /// primary-only read the seed performed.
    pub fn iop_record(
        &self,
        site: SiteId,
        object: ObjectId,
        arrived: SimTime,
    ) -> Option<IopRecord> {
        let s = &self.sites[self.site_idx(site)];
        if s.alive {
            return s.iop.record_at(object, arrived).copied();
        }
        if !self.replication_on() {
            return None;
        }
        self.sites
            .iter()
            .filter(|h| h.alive)
            .filter_map(|h| h.replica_iop.get(&site))
            .find_map(|st| st.record_at(object, arrived))
            .copied()
    }

    /// The live sites currently holding replica copies for `site`,
    /// in site-index order — the observable holder set the replication
    /// property checks against the ring's ground truth.
    pub fn replica_holders(&self, site: SiteId) -> Vec<SiteId> {
        self.sites
            .iter()
            .filter(|h| h.alive && h.site != site)
            .filter(|h| {
                h.replica_iop.contains_key(&site) || h.replica_gateway.contains_key(&site)
            })
            .map(|h| h.site)
            .collect()
    }

    /// Anti-entropy reconvergence check (the schedule auditor's
    /// post-quiescence invariant): every live primary's current replica
    /// holders hold a byte-identical copy of the primary's canonical
    /// store state. Empty when replication is off or everything
    /// matches. Meaningful only after quiescence on a loss-free plane —
    /// in-flight or dropped `ReplState` deliveries legitimately leave
    /// copies behind until the next write re-arms the digest exchange.
    pub fn replica_divergence(&self) -> Vec<String> {
        if !self.replication_on() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for idx in 0..self.sites.len() {
            if !self.sites[idx].alive {
                continue;
            }
            let want = self.store_state_bytes(idx);
            let primary = self.sites[idx].site;
            for h in self.replica_peer_idxs(idx) {
                if !self.sites[h].alive {
                    continue;
                }
                if self.replica_state_bytes(h, primary) != want {
                    out.push(format!(
                        "replica: holder {} diverges from primary {primary} after quiescence",
                        self.sites[h].site
                    ));
                }
            }
        }
        out
    }

    /// Re-establish the replica placement invariant after a membership
    /// change: every live primary's state is held by exactly its K−1
    /// current ring successors. Stale copies at ex-holders are dropped
    /// locally (each node knows the new membership from stabilization);
    /// current holders receive a full-state sync. Copies keyed by
    /// *dead* primaries are left in place — they are the read-fallback
    /// data that keeps locate/trace oracle-exact after a permanent
    /// loss.
    pub(crate) fn replica_maintenance(&mut self, sim: &mut Sim<Wire>) {
        if !self.replication_on() {
            return;
        }
        for idx in 0..self.sites.len() {
            if !self.sites[idx].alive {
                continue;
            }
            let holder_idxs = self.replica_peer_idxs(idx);
            let primary = self.sites[idx].site;
            for h in 0..self.sites.len() {
                if h == idx || holder_idxs.contains(&h) {
                    continue;
                }
                self.sites[h].replica_iop.remove(&primary);
                self.sites[h].replica_gateway.remove(&primary);
            }
            let state = self.store_state_bytes(idx);
            for &h in &holder_idxs {
                let msg = Msg::ReplState { primary, state: state.clone() };
                self.dispatch(sim, idx, h, 1, msg);
            }
        }
    }

    /// Failover: the first live successor of a permanently failed
    /// primary merges its replica copy of the dead site's *gateway*
    /// stores into its own primary stores — the ring now routes the
    /// dead site's key ranges to it, so the index data must be served
    /// as primary data. The dead site's IOP replica copies stay where
    /// they are (repository records are keyed by the site that observed
    /// them; reads reach them via [`NetWorld::iop_record`] fallback).
    /// Call after `ring.fail` + stabilization.
    pub(crate) fn promote_dead_primary(&mut self, dead_idx: usize) {
        if !self.replication_on() {
            return;
        }
        let dead = self.sites[dead_idx].site;
        let dead_chord = self.sites[dead_idx].chord_id;
        let Some(heir_id) = self.ring.successor_of(&dead_chord) else {
            return;
        };
        let Some(heir) = self.ring.app_index_of(&heir_id) else {
            return;
        };
        if let Some(gw) = self.sites[heir].replica_gateway.remove(&dead) {
            let mut objs: Vec<(ObjectId, IndexEntry)> = gw.objects.into_iter().collect();
            objs.sort_by_key(|(o, _)| *o);
            for (o, e) in objs {
                match self.sites[heir].gateway.objects.get(&o) {
                    // A racing index update at the heir already holds a
                    // newer visit — keep it.
                    Some(ex) if ex.time >= e.time => {}
                    _ => {
                        self.sites[heir].gateway.objects.insert(o, e);
                    }
                }
            }
            let mut prefixes: Vec<(Prefix, PrefixIndex)> = gw.prefixes.into_iter().collect();
            prefixes.sort_by_key(|(p, _)| *p);
            for (p, shard) in prefixes {
                let mut es: Vec<(ObjectId, IndexEntry)> =
                    shard.entries.iter().map(|(o, e)| (*o, *e)).collect();
                es.sort_by_key(|(o, _)| *o);
                let dst = self.sites[heir].gateway.shard_mut(p);
                dst.delegated |= shard.delegated;
                for (o, e) in es {
                    match dst.get(&o) {
                        Some(ex) if ex.time >= e.time => {}
                        _ => dst.upsert(o, e),
                    }
                }
                self.hosted.insert(p);
            }
        }
        // The heir owns the ranges now; other holders' copies of the
        // dead gateway are stale bootstrap data, not serving state.
        for s in &mut self.sites {
            s.replica_gateway.remove(&dead);
        }
    }
}

impl World<Wire> for NetWorld {
    fn on_message(&mut self, sim: &mut Sim<Wire>, to: NodeIndex, from: NodeIndex, wire: Wire) {
        self.handle(sim, to, from, wire);
    }

    fn on_timer(&mut self, sim: &mut Sim<Wire>, node: NodeIndex, kind: u64) {
        let tag = kind >> TAG_SHIFT;
        let value = kind & ((1 << TAG_SHIFT) - 1);
        match tag {
            TAG_WINDOW => {
                let idx = value as usize;
                debug_assert_eq!(idx, node);
                if !self.sites[idx].alive {
                    return;
                }
                self.sites[idx].window_timer = None;
                if let Some(batch) = self.sites[idx].window.flush(sim.now()) {
                    self.index_batch(sim, batch);
                }
            }
            TAG_CAPTURE => {
                if let Some((site, objects)) = self.pending_captures.remove(&value) {
                    if self.sites[site.0 as usize].alive {
                        self.capture_now(sim, site, &objects);
                    }
                }
            }
            TAG_RETRY => {
                self.handle_retry_timeout(sim, value);
            }
            TAG_ANTIENTROPY => {
                let idx = value as usize;
                debug_assert_eq!(idx, node);
                self.sites[idx].antientropy_timer = None;
                if !self.sites[idx].alive || !self.replication_on() {
                    return;
                }
                let digest = Id::hash(&self.store_state_bytes(idx));
                let primary = self.sites[idx].site;
                for h in self.replica_peer_idxs(idx) {
                    self.dispatch(sim, idx, h, 1, Msg::ReplDigest { primary, digest });
                }
            }
            other => panic!("unknown timer tag {other}"),
        }
    }
}
