//! Per-node storage: IOP repositories and gateway index shards.
//!
//! Each organization (site) holds two kinds of state:
//!
//! * its **local repository** of IOP records ([`IopStore`]) — the
//!   segments of object paths observed in its own territory, plus the
//!   `from`/`to` links the gateway threads through them (§II-C, §III);
//! * the **index shards** the DHT assigns it ([`GatewayStore`]) — either
//!   per-object entries (individual mode) or per-prefix group indexes
//!   ([`PrefixIndex`], group mode, §IV), including Data-Triangle
//!   bookkeeping.

use ids::{Interner, Prefix};
use moods::{ObjectId, SiteId};
use simnet::SimTime;
use std::collections::{BTreeSet, HashMap};

/// One hop of the distributed doubly-linked list: a site together with
/// the arrival timestamp that identifies the visit record there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Link {
    /// The linked site.
    pub site: SiteId,
    /// Arrival time of the object at that site (record key).
    pub time: SimTime,
}

/// A gateway's knowledge of one object: its latest location and the link
/// to the previous one (enough to thread M2/M3 on the next move).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// Site of the latest capture.
    pub site: SiteId,
    /// Time of the latest capture.
    pub time: SimTime,
    /// Where the object was before that (None for its first appearance).
    pub prev: Option<Link>,
}

impl IndexEntry {
    /// The link form of this entry (site + time).
    pub fn link(&self) -> Link {
        Link { site: self.site, time: self.time }
    }
}

/// One visit record in a site's local repository. `from`/`to` are filled
/// in by gateway messages M3/M2 respectively (§III, Fig. 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IopRecord {
    /// When the object arrived here (set at capture).
    pub arrived: SimTime,
    /// Previous stop (`o.from` in the paper), set by message M3.
    pub from: Option<Link>,
    /// Next stop (`o.to`), set by message M2 when the object moves on.
    pub to: Option<Link>,
}

/// A site's local repository: every visit it has observed, per object,
/// in arrival order.
///
/// Storage is flat: object ids are interned to dense `u32` handles
/// ([`ids::Interner`]) and each handle indexes a slab of per-object
/// visit histories — no nested hash maps on the simulation path. Every
/// history is kept **sorted by arrival time**, so the keyed lookups
/// (`record_at`, `latest_at_or_before`, the M2/M3 write paths) are
/// `partition_point` binary searches instead of linear backward walks —
/// hot at 10⁷ objects.
#[derive(Clone, Default, Debug)]
pub struct IopStore {
    /// Object id → dense handle, assigned in first-appearance order.
    interner: Interner,
    /// Handle → visit history, sorted ascending by `arrived`.
    histories: Vec<Vec<IopRecord>>,
}

impl IopStore {
    /// Empty repository.
    pub fn new() -> IopStore {
        IopStore::default()
    }

    fn history(&self, object: ObjectId) -> Option<&Vec<IopRecord>> {
        let h = self.interner.get(&object.0)?;
        Some(&self.histories[h as usize])
    }

    /// The history slot for `object`, interning it on first sight.
    fn history_mut(&mut self, object: ObjectId) -> &mut Vec<IopRecord> {
        let h = self.interner.intern(&object.0) as usize;
        if h == self.histories.len() {
            self.histories.push(Vec::new());
        }
        &mut self.histories[h]
    }

    /// Index of the **last** record with `arrived == t`, if any (same-
    /// time repeat visits resolve to the latest, matching the original
    /// backward walk).
    fn position_at(v: &[IopRecord], t: SimTime) -> Option<usize> {
        let i = v.partition_point(|r| r.arrived <= t);
        (i > 0 && v[i - 1].arrived == t).then(|| i - 1)
    }

    /// Record a capture (creates an open visit). Arrival times per object
    /// must be non-decreasing at one site.
    pub fn capture(&mut self, object: ObjectId, arrived: SimTime) {
        let v = self.history_mut(object);
        if let Some(last) = v.last() {
            debug_assert!(arrived >= last.arrived, "out-of-order capture at one site");
        }
        v.push(IopRecord { arrived, from: None, to: None });
    }

    /// Apply message **M2**: the object captured here at `arrived` has
    /// moved on to `to`. Returns false if no such record exists (e.g. the
    /// site joined after the visit).
    pub fn set_to(&mut self, object: ObjectId, arrived: SimTime, to: Link) -> bool {
        self.record_mut(object, arrived)
            .map(|r| r.to = Some(to))
            .is_some()
    }

    /// Apply message **M3**: the object captured here at `arrived` came
    /// from `from` (None = first appearance in the system).
    pub fn set_from(&mut self, object: ObjectId, arrived: SimTime, from: Option<Link>) -> bool {
        self.record_mut(object, arrived)
            .map(|r| r.from = from)
            .is_some()
    }

    fn record_mut(&mut self, object: ObjectId, arrived: SimTime) -> Option<&mut IopRecord> {
        let h = self.interner.get(&object.0)?;
        let v = &mut self.histories[h as usize];
        let i = Self::position_at(v, arrived)?;
        Some(&mut v[i])
    }

    /// The visit record keyed by arrival time.
    pub fn record_at(&self, object: ObjectId, arrived: SimTime) -> Option<&IopRecord> {
        let v = self.history(object)?;
        Self::position_at(v, arrived).map(|i| &v[i])
    }

    /// The site's latest visit record for the object.
    pub fn latest(&self, object: ObjectId) -> Option<&IopRecord> {
        self.history(object)?.last()
    }

    /// Latest visit record with `arrived ≤ t` (for intermediate-node
    /// query answering). Binary search — histories are sorted.
    pub fn latest_at_or_before(&self, object: ObjectId, t: SimTime) -> Option<&IopRecord> {
        let v = self.history(object)?;
        let i = v.partition_point(|r| r.arrived <= t);
        (i > 0).then(|| &v[i - 1])
    }

    /// Does this repository know the object at all?
    pub fn knows(&self, object: ObjectId) -> bool {
        self.interner.get(&object.0).is_some()
    }

    /// All visit records for the object, in arrival order.
    pub fn all(&self, object: ObjectId) -> &[IopRecord] {
        self.history(object).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of (object, visit) records stored.
    pub fn len(&self) -> usize {
        self.histories.iter().map(Vec::len).sum()
    }

    /// Iterate every `(object, visit history)` pair, in handle (=
    /// first-appearance) order — callers needing a canonical order
    /// (state snapshots) sort the keys themselves.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &[IopRecord])> {
        self.interner.iter().map(|(h, id)| (ObjectId(*id), self.histories[h as usize].as_slice()))
    }

    /// Install a full visit history for one object (state recovery —
    /// the inverse of [`IopStore::iter`]). Records must be in arrival
    /// order; replaces any existing history for the object.
    pub fn insert_history(&mut self, object: ObjectId, records: Vec<IopRecord>) {
        debug_assert!(
            records.windows(2).all(|w| w[0].arrived <= w[1].arrived),
            "history must be in arrival order"
        );
        *self.history_mut(object) = records;
    }

    /// Install or replace one visit record, keyed by `(object,
    /// arrived)` — the replication write path. Unlike [`capture`] this
    /// tolerates out-of-order arrival of replica updates: a record with
    /// the same arrival time is replaced in place (link fields may have
    /// been filled in since), otherwise the record is inserted at its
    /// sorted position (binary search — histories are sorted).
    ///
    /// [`capture`]: IopStore::capture
    pub fn upsert_record(&mut self, object: ObjectId, rec: IopRecord) {
        let v = self.history_mut(object);
        let i = v.partition_point(|r| r.arrived < rec.arrived);
        if i < v.len() && v[i].arrived == rec.arrived {
            v[i] = rec;
        } else {
            v.insert(i, rec);
        }
    }

    /// Is the repository empty?
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }
}

/// A group-index shard: the records a gateway keeps for one prefix.
///
/// The insertion-ordered `order` set supports the FIFO-like delegation
/// policy ("select the earliest α·objects.count objects indexed at this
/// gateway", Fig. 5 `update_index` — "based on the observation that the
/// latest records are more likely to be read and updated in the near
/// future").
#[derive(Clone, Debug, Default)]
pub struct PrefixIndex {
    /// Per-object latest state.
    pub entries: HashMap<ObjectId, IndexEntry>,
    /// `(last-update time, object)` — ordered oldest first.
    order: BTreeSet<(SimTime, ObjectId)>,
    /// Set once this shard has delegated records to its triangle
    /// children; lookups then also consult `p+'0'`/`p+'1'`.
    pub delegated: bool,
}

impl PrefixIndex {
    /// Empty shard.
    pub fn new() -> PrefixIndex {
        PrefixIndex::default()
    }

    /// Number of objects indexed here.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the shard empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Read an object's entry.
    pub fn get(&self, object: &ObjectId) -> Option<&IndexEntry> {
        self.entries.get(object)
    }

    /// Insert or update an object's entry, maintaining recency order.
    pub fn upsert(&mut self, object: ObjectId, entry: IndexEntry) {
        if let Some(old) = self.entries.insert(object, entry) {
            self.order.remove(&(old.time, object));
        }
        self.order.insert((entry.time, object));
    }

    /// Remove an object's entry (refresh-fetch takes records with it).
    pub fn take(&mut self, object: &ObjectId) -> Option<IndexEntry> {
        let e = self.entries.remove(object)?;
        self.order.remove(&(e.time, *object));
        Some(e)
    }

    /// Remove and return the `k` earliest records (delegation batch).
    pub fn take_earliest(&mut self, k: usize) -> Vec<(ObjectId, IndexEntry)> {
        let victims: Vec<(SimTime, ObjectId)> = self.order.iter().take(k).copied().collect();
        let mut out = Vec::with_capacity(victims.len());
        for (t, o) in victims {
            self.order.remove(&(t, o));
            let e = self.entries.remove(&o).expect("order/entries in sync");
            out.push((o, e));
        }
        out
    }

    /// Drain everything (split/merge migration).
    pub fn drain_all(&mut self) -> Vec<(ObjectId, IndexEntry)> {
        self.order.clear();
        self.entries.drain().collect()
    }
}

/// Everything a site stores *as a gateway*: per-object entries
/// (individual mode) and per-prefix shards (group mode).
#[derive(Clone, Debug, Default)]
pub struct GatewayStore {
    /// Individual-mode index: object id → latest state.
    pub objects: HashMap<ObjectId, IndexEntry>,
    /// Group-mode shards, keyed by prefix.
    pub prefixes: HashMap<Prefix, PrefixIndex>,
}

impl GatewayStore {
    /// Empty store.
    pub fn new() -> GatewayStore {
        GatewayStore::default()
    }

    /// Total number of object entries held (both modes) — the *load* a
    /// node carries for Fig. 8a.
    pub fn load(&self) -> usize {
        self.objects.len() + self.prefixes.values().map(PrefixIndex::len).sum::<usize>()
    }

    /// Shard for `prefix`, creating it if absent.
    pub fn shard_mut(&mut self, prefix: Prefix) -> &mut PrefixIndex {
        self.prefixes.entry(prefix).or_default()
    }

    /// Remove a shard if it is empty; returns true if removed.
    pub fn prune_if_empty(&mut self, prefix: &Prefix) -> bool {
        if self.prefixes.get(prefix).is_some_and(PrefixIndex::is_empty) {
            self.prefixes.remove(prefix);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids::Id;
    use simnet::time::ms;

    fn obj(n: u64) -> ObjectId {
        ObjectId(Id::hash(&n.to_be_bytes()))
    }

    #[test]
    fn capture_then_link() {
        let mut iop = IopStore::new();
        iop.capture(obj(1), ms(10));
        assert!(iop.knows(obj(1)));
        assert!(iop.set_from(obj(1), ms(10), None));
        assert!(iop.set_to(obj(1), ms(10), Link { site: SiteId(2), time: ms(30) }));
        let r = iop.record_at(obj(1), ms(10)).unwrap();
        assert_eq!(r.from, None);
        assert_eq!(r.to, Some(Link { site: SiteId(2), time: ms(30) }));
    }

    #[test]
    fn set_on_missing_record_reports_failure() {
        let mut iop = IopStore::new();
        assert!(!iop.set_to(obj(1), ms(10), Link { site: SiteId(0), time: ms(1) }));
        iop.capture(obj(1), ms(10));
        assert!(!iop.set_from(obj(1), ms(99), None));
    }

    #[test]
    fn repeated_visits_tracked_separately() {
        let mut iop = IopStore::new();
        iop.capture(obj(1), ms(10));
        iop.capture(obj(1), ms(50));
        assert_eq!(iop.all(obj(1)).len(), 2);
        assert_eq!(iop.latest(obj(1)).unwrap().arrived, ms(50));
        assert_eq!(iop.latest_at_or_before(obj(1), ms(40)).unwrap().arrived, ms(10));
        assert_eq!(iop.latest_at_or_before(obj(1), ms(5)), None);
        assert_eq!(iop.len(), 2);
    }

    #[test]
    fn same_time_repeat_visits_resolve_to_latest() {
        // Two captures at the same instant: the binary-search paths
        // must resolve `(object, arrived)` to the *last* matching
        // record, exactly like the original backward linear walk.
        let mut iop = IopStore::new();
        iop.capture(obj(1), ms(10));
        iop.capture(obj(1), ms(10));
        assert_eq!(iop.all(obj(1)).len(), 2);
        assert!(iop.set_to(obj(1), ms(10), Link { site: SiteId(3), time: ms(20) }));
        let v = iop.all(obj(1));
        assert_eq!(v[1].to.map(|l| l.site), Some(SiteId(3)));
        assert_eq!(v[0].to, None, "earlier same-time record untouched");
        assert_eq!(iop.record_at(obj(1), ms(10)).unwrap().to.map(|l| l.site), Some(SiteId(3)));
    }

    #[test]
    fn iter_is_first_appearance_order_and_roundtrips() {
        let mut iop = IopStore::new();
        iop.capture(obj(9), ms(1));
        iop.capture(obj(2), ms(2));
        iop.capture(obj(9), ms(3));
        let pairs: Vec<(ObjectId, usize)> = iop.iter().map(|(o, v)| (o, v.len())).collect();
        assert_eq!(pairs, vec![(obj(9), 2), (obj(2), 1)]);
        assert_eq!(iop.len(), 3);
    }

    #[test]
    fn upsert_record_replaces_or_inserts_sorted() {
        let mut iop = IopStore::new();
        iop.upsert_record(obj(1), IopRecord { arrived: ms(50), from: None, to: None });
        // Out-of-order replica update lands at its sorted position.
        iop.upsert_record(obj(1), IopRecord { arrived: ms(10), from: None, to: None });
        assert_eq!(iop.all(obj(1)).iter().map(|r| r.arrived).collect::<Vec<_>>(), [ms(10), ms(50)]);
        // Same-key upsert replaces in place (link fields updated).
        let link = Link { site: SiteId(7), time: ms(60) };
        iop.upsert_record(obj(1), IopRecord { arrived: ms(10), from: None, to: Some(link) });
        assert_eq!(iop.all(obj(1)).len(), 2);
        assert_eq!(iop.record_at(obj(1), ms(10)).unwrap().to, Some(link));
    }

    #[test]
    fn prefix_index_upsert_updates_order() {
        let mut pi = PrefixIndex::new();
        pi.upsert(obj(1), IndexEntry { site: SiteId(0), time: ms(10), prev: None });
        pi.upsert(obj(2), IndexEntry { site: SiteId(1), time: ms(20), prev: None });
        // Re-index object 1 later — it should no longer be the earliest.
        pi.upsert(obj(1), IndexEntry { site: SiteId(2), time: ms(30), prev: None });
        let earliest = pi.take_earliest(1);
        assert_eq!(earliest[0].0, obj(2));
        assert_eq!(pi.len(), 1);
        assert!(pi.get(&obj(1)).is_some());
    }

    #[test]
    fn take_earliest_more_than_len() {
        let mut pi = PrefixIndex::new();
        pi.upsert(obj(1), IndexEntry { site: SiteId(0), time: ms(1), prev: None });
        let batch = pi.take_earliest(10);
        assert_eq!(batch.len(), 1);
        assert!(pi.is_empty());
    }

    #[test]
    fn take_removes_entry_and_order() {
        let mut pi = PrefixIndex::new();
        pi.upsert(obj(1), IndexEntry { site: SiteId(0), time: ms(1), prev: None });
        let e = pi.take(&obj(1)).unwrap();
        assert_eq!(e.site, SiteId(0));
        assert!(pi.take(&obj(1)).is_none());
        assert!(pi.take_earliest(1).is_empty());
    }

    #[test]
    fn gateway_load_counts_both_kinds() {
        let mut g = GatewayStore::new();
        g.objects.insert(obj(1), IndexEntry { site: SiteId(0), time: ms(1), prev: None });
        let p = Prefix::from_bit_str("01");
        g.shard_mut(p).upsert(obj(2), IndexEntry { site: SiteId(1), time: ms(2), prev: None });
        assert_eq!(g.load(), 2);
        g.shard_mut(p).take(&obj(2));
        assert!(g.prune_if_empty(&p));
        assert_eq!(g.load(), 1);
    }
}
