//! Prefix-length (`Lp`) schemes and the load-coverage probability δ.
//!
//! §IV-A.1 derives the optimal prefix length. With `m = 2^Lp` groups
//! spread uniformly over `Nn` nodes, the probability that a given node
//! indexes at least one group is
//!
//! ```text
//! δ = 1 − ((Nn − 1)/Nn)^m                                   (Eq. 4)
//! ```
//!
//! Choosing `m = Nn·log₂Nn` drives δ → 1 as the network grows (Eq. 5),
//! giving the paper's choice
//!
//! ```text
//! Lp = ⌈log₂ Nn + log₂ log₂ Nn⌉                             (Eq. 6)
//! ```
//!
//! §V-C evaluates three schemes; [`PrefixScheme`] implements all of them
//! plus a fixed override for ablations.


/// A rule deriving `Lp` from the (estimated) network size `Nn`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefixScheme {
    /// Scheme 1: `Lp = ⌈log₂ Nn⌉` — cheapest indexing, poor balance.
    Scheme1,
    /// Scheme 2: `Lp = ⌈log₂ Nn + log₂ log₂ Nn⌉` — the paper's choice
    /// (Eq. 6): near-perfect balance at modest cost.
    Scheme2,
    /// Scheme 3: `Lp = ⌈2·log₂ Nn⌉` — best balance, quadratic group
    /// count (`2^Lp = Nn²`), highest indexing cost.
    Scheme3,
    /// A fixed prefix length, independent of `Nn` (ablations/tests).
    Fixed(usize),
}

impl PrefixScheme {
    /// Derive `Lp` for a network of `nn` nodes (before `Lmin` clamping).
    ///
    /// `nn < 2` yields 0: a singleton network needs no grouping bits.
    pub fn lp(&self, nn: usize) -> usize {
        let n = nn.max(1) as f64;
        let log2n = n.log2();
        let raw = match self {
            PrefixScheme::Scheme1 => log2n,
            PrefixScheme::Scheme2 => {
                if log2n <= 0.0 {
                    0.0
                } else {
                    // log2(Nn·log2 Nn); guard log2 of values ≤ 1.
                    log2n + log2n.max(1.0).log2()
                }
            }
            PrefixScheme::Scheme3 => 2.0 * log2n,
            PrefixScheme::Fixed(l) => return *l,
        };
        raw.ceil().max(0.0) as usize
    }

    /// `Lp` clamped to `[l_min, MAX_PREFIX_BITS]` — what the runtime uses.
    pub fn lp_clamped(&self, nn: usize, l_min: usize) -> usize {
        self.lp(nn).max(l_min).min(ids::prefix::MAX_PREFIX_BITS)
    }

    /// Human-readable name used in figure legends.
    pub fn label(&self) -> String {
        match self {
            PrefixScheme::Scheme1 => "Scheme 1 (log2 Nn)".into(),
            PrefixScheme::Scheme2 => "Scheme 2 (log2 Nn + log2 log2 Nn)".into(),
            PrefixScheme::Scheme3 => "Scheme 3 (2 log2 Nn)".into(),
            PrefixScheme::Fixed(l) => format!("Fixed Lp={l}"),
        }
    }
}

/// Eq. 4: probability that a node indexes at least one of `m = 2^lp`
/// groups in a network of `nn` nodes.
pub fn delta(nn: usize, lp: usize) -> f64 {
    if nn == 0 {
        return 0.0;
    }
    if nn == 1 {
        return 1.0;
    }
    let m = 2f64.powi(lp as i32);
    let miss = (nn as f64 - 1.0) / nn as f64;
    1.0 - miss.powf(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq6_values_for_paper_sizes() {
        // Nn = 64: log2=6, log2 log2=~2.58 → ceil(8.58) = 9.
        assert_eq!(PrefixScheme::Scheme2.lp(64), 9);
        // Nn = 512: log2=9, log2 9 ≈ 3.17 → ceil(12.17) = 13.
        assert_eq!(PrefixScheme::Scheme2.lp(512), 13);
        assert_eq!(PrefixScheme::Scheme1.lp(512), 9);
        assert_eq!(PrefixScheme::Scheme3.lp(512), 18);
    }

    #[test]
    fn schemes_are_ordered() {
        for nn in [4usize, 16, 64, 100, 512, 4096] {
            let l1 = PrefixScheme::Scheme1.lp(nn);
            let l2 = PrefixScheme::Scheme2.lp(nn);
            let l3 = PrefixScheme::Scheme3.lp(nn);
            assert!(l1 <= l2, "S1 {l1} > S2 {l2} at Nn={nn}");
            assert!(l2 <= l3, "S2 {l2} > S3 {l3} at Nn={nn}");
        }
    }

    #[test]
    fn fixed_scheme_ignores_network_size() {
        assert_eq!(PrefixScheme::Fixed(7).lp(4), 7);
        assert_eq!(PrefixScheme::Fixed(7).lp(100_000), 7);
    }

    #[test]
    fn degenerate_sizes() {
        for s in [PrefixScheme::Scheme1, PrefixScheme::Scheme2, PrefixScheme::Scheme3] {
            assert_eq!(s.lp(0), 0);
            assert_eq!(s.lp(1), 0);
        }
        assert_eq!(PrefixScheme::Scheme2.lp_clamped(1, 4), 4);
    }

    #[test]
    fn clamping_respects_max() {
        assert_eq!(
            PrefixScheme::Fixed(99).lp_clamped(10, 0),
            ids::prefix::MAX_PREFIX_BITS
        );
    }

    #[test]
    fn delta_scheme2_approaches_one() {
        // Eq. 5: with m = Nn·log2 Nn, δ → 1. At Nn=512, Scheme 2 gives
        // m = 2^13 = 8192 = 16·Nn, so δ = 1 - (511/512)^8192 ≈ 1.
        let d2 = delta(512, PrefixScheme::Scheme2.lp(512));
        assert!(d2 > 0.999_99, "δ(scheme2) = {d2}");
        // Scheme 1 gives m = Nn: δ = 1 - 1/e ≈ 0.632 in the limit.
        let d1 = delta(512, PrefixScheme::Scheme1.lp(512));
        assert!((d1 - (1.0 - (-1.0f64).exp())).abs() < 0.01, "δ(scheme1) = {d1}");
        // Scheme 3: even closer to 1 than scheme 2.
        let d3 = delta(512, PrefixScheme::Scheme3.lp(512));
        assert!(d3 > d2);
    }

    #[test]
    fn delta_edge_cases() {
        assert_eq!(delta(0, 5), 0.0);
        assert_eq!(delta(1, 0), 1.0);
        assert!(delta(2, 0) > 0.0 && delta(2, 0) < 1.0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<String> = [
            PrefixScheme::Scheme1,
            PrefixScheme::Scheme2,
            PrefixScheme::Scheme3,
            PrefixScheme::Fixed(3),
        ]
        .iter()
        .map(|s| s.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }
}
