//! [`TraceableNetwork`] — the public façade.
//!
//! Bundles the discrete-event engine and the protocol world, and exposes
//! the application-level API: build a network, feed receptor captures,
//! drain the indexing traffic, run MOODS queries with latency/message
//! accounting, and churn nodes in and out.

use crate::config::{Config, IndexingMode, Placement, ReplicationConfig, RetryConfig};
use crate::messages::Wire;
use crate::query::{self, QueryStats};
use crate::spans;
use crate::world::{Anomalies, NetWorld};
use chord::Ring;
use geo::{RegionId, Topology};
use ids::Id;
use moods::{Locate, ObjectId, Path, SiteId, Trace};
use simnet::trace::TraceSink;
use simnet::{
    FaultConfig, FaultStats, GeoConfig, LatencyModel, Metrics, MsgClass, Sim, SimConfig, SimTime,
};

/// Builder for a [`TraceableNetwork`].
pub struct Builder {
    sites: usize,
    config: Config,
    latency: Option<Box<dyn LatencyModel>>,
    faults: Option<FaultConfig>,
    geo: Option<GeoConfig>,
    trace: Option<Box<dyn TraceSink>>,
}

impl Builder {
    /// Start building; configure and finish with [`Builder::build`].
    pub fn new() -> Builder {
        Builder {
            sites: 0,
            config: Config::default(),
            latency: None,
            faults: None,
            geo: None,
            trace: None,
        }
    }

    /// Number of initial sites (`Nn`). Must be at least 1.
    pub fn sites(mut self, n: usize) -> Builder {
        self.sites = n;
        self
    }

    /// RNG seed (node identities, latency jitter, estimator draws).
    pub fn seed(mut self, seed: u64) -> Builder {
        self.config.seed = seed;
        self
    }

    /// Indexing algorithm (§III individual vs §IV group).
    pub fn mode(mut self, mode: IndexingMode) -> Builder {
        self.config.mode = mode;
        self
    }

    /// Replace the latency model (default: the paper's 5 ms/hop).
    pub fn latency(mut self, latency: Box<dyn LatencyModel>) -> Builder {
        self.latency = Some(latency);
        self
    }

    /// Charge explicit existence-check lookups during refresh (see
    /// [`Config::count_existence_checks`]).
    pub fn count_existence_checks(mut self, on: bool) -> Builder {
        self.config.count_existence_checks = on;
        self
    }

    /// Inject link faults (drop/duplicate/jitter) and enable crash
    /// support. The plane has its own seed (see [`FaultConfig`]), so
    /// runs with faults disabled are byte-identical to builds without a
    /// fault plane at all.
    pub fn faults(mut self, faults: FaultConfig) -> Builder {
        self.faults = Some(faults);
        self
    }

    /// Configure the at-least-once delivery layer (acked, sequenced
    /// sends with timeout/retry/backoff). Off by default.
    pub fn retry(mut self, retry: RetryConfig) -> Builder {
        self.config.retry = retry;
        self
    }

    /// Install a WAN topology (DESIGN.md §17): the simulator charges
    /// the topology's per-region-pair wire costs — plus seeded jitter
    /// from the plane's own `detrand` RNG — on every protocol
    /// delivery, and the synchronous query path charges the
    /// deterministic base matrix (never jitter: queries stay RNG-free).
    /// Also enables [`TraceableNetwork::region_cut`]. A zero topology
    /// (e.g. `geo::Topology::single_region`) is a provable no-op: runs
    /// stay byte-identical to builds without a geo plane at all.
    pub fn geo(mut self, geo: GeoConfig) -> Builder {
        self.geo = Some(geo);
        self
    }

    /// Gateway placement policy: `Flat` (default, uniform SHA-1 ring)
    /// or `Proximity` (region-clustered identifier arcs; requires
    /// [`Builder::geo`]). See [`Placement`].
    pub fn placement(mut self, placement: Placement) -> Builder {
        self.config.placement = placement;
        self
    }

    /// Replicate every site's repository and index shards onto its
    /// K−1 Chord successors (`k` = K). `1` — the default — disables
    /// replication entirely: such runs are byte-identical to builds
    /// without a replication layer at all. With `k ≥ 2` the network
    /// supports [`TraceableNetwork::kill_forever`], and locate/trace
    /// answers survive up to `k − 1` permanent losses per key range.
    pub fn replicas(mut self, k: usize) -> Builder {
        self.config.replication = ReplicationConfig::with_replicas(k);
        self
    }

    /// Give every site a locate-answer cache bounded at `capacity`
    /// entries (DESIGN.md §15). Off by default — and the off state is a
    /// provable no-op: no caches are allocated, no epochs tracked, and
    /// every query dispatches exactly as in builds without a caching
    /// layer at all, so committed figure CSVs stay byte-identical.
    /// Cached answers are guarded by per-object movement epochs (any
    /// newer indexed visit kills the entry) and dropped wholesale on
    /// membership change, so enabling the cache never changes a locate
    /// answer — only its cost.
    pub fn locate_cache(mut self, capacity: usize) -> Builder {
        self.config.locate_cache = Some(capacity);
        self
    }

    /// Install a trace sink (e.g. `obs::SharedRecorder`) from the very
    /// first event — construction/warm-up traffic included. For traces
    /// that start clean at time zero, build without one and call
    /// [`TraceableNetwork::set_trace_sink`] instead. Tracing never
    /// changes behaviour: a traced run is byte-identical to an
    /// untraced run with the same seed.
    pub fn trace_sink(mut self, sink: Box<dyn TraceSink>) -> Builder {
        self.trace = Some(sink);
        self
    }

    /// Construct the network: all sites join the Chord ring, the overlay
    /// is stabilized, `Lp` is set from the scheme, and the metrics are
    /// zeroed so measurements start from a warm, converged system (the
    /// paper's OverSim warm-up).
    ///
    /// # Panics
    /// On invalid configuration (zero sites, bad group parameters).
    pub fn build(self) -> TraceableNetwork {
        assert!(self.sites > 0, "a traceable network needs at least one site");
        if let IndexingMode::Group(g) = self.config.mode {
            if let Err(e) = g.validate() {
                panic!("invalid group configuration: {e}");
            }
        }
        if let Err(e) = self.config.retry.validate() {
            panic!("invalid retry configuration: {e}");
        }
        if let Err(e) = self.config.replication.validate() {
            panic!("invalid replication configuration: {e}");
        }
        if self.config.locate_cache == Some(0) {
            panic!("locate cache capacity must be at least 1");
        }
        let n_max = match self.config.mode {
            IndexingMode::Group(g) => g.n_max,
            IndexingMode::Individual => 1024,
        };

        if self.config.placement == Placement::Proximity {
            assert!(
                self.geo.is_some(),
                "Placement::Proximity requires a topology (Builder::geo)"
            );
        }

        let mut sim_cfg = SimConfig::default().with_seed(self.config.seed);
        if let Some(l) = self.latency {
            sim_cfg = sim_cfg.with_latency(l);
        }
        if let Some(f) = self.faults {
            sim_cfg = sim_cfg.with_faults(f);
        }
        let topology = self.geo.as_ref().map(|g| g.topology.clone());
        if let Some(g) = self.geo {
            sim_cfg = sim_cfg.with_geo(g);
        }
        if let Some(t) = self.trace {
            sim_cfg = sim_cfg.with_trace(t);
        }
        let mut sim: Sim<Wire> = sim_cfg.build();
        let mut world = NetWorld::new(self.config);
        world.geo = topology;

        let seed = world.config.seed;
        let mut bootstrap: Option<Id> = None;
        for i in 0..self.sites {
            let chord_id = site_chord_id(seed, i, world.config.placement, world.geo.as_ref());
            match bootstrap {
                None => {
                    world.ring.bootstrap(chord_id, i);
                    bootstrap = Some(chord_id);
                }
                Some(b) => {
                    world
                        .ring
                        .join(b, chord_id, i)
                        .expect("join during bootstrap cannot fail");
                }
            }
            world.push_site(chord_id, n_max);
        }
        world.ring.stabilize_all();
        world.refresh_lp(&mut sim);
        if world.config.replication.enabled() {
            // Establish the initial K-successor placement (the states
            // are empty, but the holder sets must exist from the
            // start so every later write finds its replica set).
            world.replica_maintenance(&mut sim);
            sim.run_until_quiescent(&mut world);
        }
        // Construction traffic is warm-up; measurements start clean.
        sim.metrics_mut().reset();

        TraceableNetwork { sim, world }
    }
}

impl Default for Builder {
    fn default() -> Self {
        Builder::new()
    }
}

/// The one chord-identifier derivation, shared by [`Builder::build`]
/// and [`TraceableNetwork::join_site`] (the daemon mirrors it): the
/// seed's uniform SHA-1 id, optionally forced into the site's region
/// arc under proximity placement. `Flat` — or no topology — reproduces
/// the seed's ids bit for bit.
fn site_chord_id(seed: u64, idx: usize, placement: Placement, topo: Option<&Topology>) -> Id {
    let raw = Id::hash_str(&format!("site-{seed}-{idx}"));
    match (placement, topo) {
        (Placement::Proximity, Some(t)) => geo::clustered_id(raw, t.region_of(idx), t.regions()),
        _ => raw,
    }
}

/// A running traceable network (engine + protocol state).
pub struct TraceableNetwork {
    sim: Sim<Wire>,
    /// The protocol world. Public for inspection by experiments/tests;
    /// mutate only through the façade methods.
    pub world: NetWorld,
}

impl TraceableNetwork {
    /// Start a builder.
    pub fn builder() -> Builder {
        Builder::new()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Accumulated network metrics.
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// Zero the metrics (e.g. after a warm-up phase).
    pub fn reset_metrics(&mut self) {
        self.sim.metrics_mut().reset();
    }

    /// Anomaly counters (should stay zero in well-formed runs).
    pub fn anomalies(&self) -> Anomalies {
        self.world.anomalies
    }

    /// Number of live sites (`Nn`).
    pub fn live_sites(&self) -> usize {
        self.world.live_sites()
    }

    /// Current global prefix length `Lp`.
    pub fn current_lp(&self) -> usize {
        self.world.current_lp
    }

    /// The underlying Chord ring (read-only).
    pub fn ring(&self) -> &Ring {
        &self.world.ring
    }

    /// Per-live-site gateway load (indexed objects) — Fig. 8a's metric.
    pub fn load_distribution(&self) -> Vec<u64> {
        self.world.load_distribution()
    }

    /// Locates served per live site — the query-load hot-shard metric
    /// (DESIGN.md §15). Cache hits count at the querying node; uncached
    /// answers count at the node that answered discovery.
    pub fn query_load(&self) -> Vec<u64> {
        self.world.query_load()
    }

    /// Aggregated locate-cache counters (all zero when the network was
    /// built without [`Builder::locate_cache`]).
    pub fn cache_stats(&self) -> qcache::CacheStats {
        self.world.cache_stats()
    }

    /// Fault-plane statistics, if a plane was configured.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.sim.fault_stats()
    }

    /// Per-region-pair traffic the geo plane charged so far (protocol
    /// plane only; query-path WAN costs are reported per query in
    /// [`QueryStats`]). `None` without [`Builder::geo`].
    pub fn geo_stats(&self) -> Option<&geo::GeoStats> {
        self.sim.geo_stats()
    }

    /// The WAN topology, if one was installed.
    pub fn topology(&self) -> Option<&Topology> {
        self.world.geo.as_ref()
    }

    /// Sever the (symmetric) WAN link between two regions: protocol
    /// deliveries that straddle the cut are parked — not dropped — and
    /// released in order by [`TraceableNetwork::region_heal`]. Messages
    /// already in flight still deliver. The synchronous query path is
    /// *not* blocked (a query issued mid-cut still resolves against the
    /// global snapshot); partition-correctness invariants are asserted
    /// after heal + quiesce, where the distinction vanishes. Requires
    /// [`Builder::geo`].
    pub fn region_cut(&mut self, a: RegionId, b: RegionId) {
        self.sim.sever_regions(a, b);
    }

    /// Heal a severed region pair and release its parked traffic.
    pub fn region_heal(&mut self, a: RegionId, b: RegionId) {
        self.sim.heal_regions(a, b);
    }

    /// Heal every severed region pair.
    pub fn region_heal_all(&mut self) {
        self.sim.heal_all_regions();
    }

    /// Protocol deliveries currently parked behind region cuts.
    pub fn parked_deliveries(&self) -> usize {
        self.sim.parked_deliveries()
    }

    /// Install a trace sink now (e.g. `obs::SharedRecorder`), after
    /// construction/warm-up — the trace starts at the current instant.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sim.set_trace_sink(sink);
    }

    /// Detach and return the installed trace sink, if any.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sim.take_trace_sink()
    }

    /// Is a trace sink installed?
    pub fn tracing(&self) -> bool {
        self.sim.tracing()
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Receptors at `site` captured `objects` now.
    pub fn capture(&mut self, site: SiteId, objects: &[ObjectId]) {
        self.world.capture_now(&mut self.sim, site, objects);
    }

    /// Inject a capture at a future instant (workload replay).
    pub fn schedule_capture(&mut self, at: SimTime, site: SiteId, objects: Vec<ObjectId>) {
        self.world.schedule_capture(&mut self.sim, at, site, objects);
    }

    /// Process events until nothing is in flight (all windows flushed by
    /// their timers, all IOP links threaded).
    pub fn run_until_quiescent(&mut self) {
        // Split borrows: Sim drives, world handles.
        let world = &mut self.world;
        self.sim.run_until_quiescent(world);
    }

    /// Process events up to `deadline` (inclusive).
    pub fn run_until(&mut self, deadline: SimTime) {
        let world = &mut self.world;
        self.sim.run_until(world, deadline);
    }

    /// Force-flush every open capture window immediately.
    pub fn flush_windows(&mut self) {
        self.world.flush_all_windows(&mut self.sim);
    }

    // ------------------------------------------------------------------
    // Queries (§IV-B)
    // ------------------------------------------------------------------

    /// `L(o, t)` issued from `from`: where was `object` at `t`?
    /// Returns the answer plus full cost/latency statistics; the traffic
    /// is recorded in the metrics under [`MsgClass::Query`]. When the
    /// network was built with [`Builder::locate_cache`], a live cached
    /// answer short-circuits discovery (the answer itself is always the
    /// one discovery would produce); per-node served-locate counts are
    /// maintained either way — see [`TraceableNetwork::query_load`].
    pub fn locate(
        &mut self,
        from: SiteId,
        object: ObjectId,
        t: SimTime,
    ) -> (Option<SiteId>, QueryStats) {
        let (ans, cost, source, complete) = query::locate(&mut self.world, from, object, t);
        let stats = self.account(spans::QUERY_LOCATE, from, cost, source, complete);
        (ans, stats)
    }

    /// `TR(o, t0, t1)` issued from `from`: the object's path during the
    /// window, with statistics.
    pub fn trace(
        &mut self,
        from: SiteId,
        object: ObjectId,
        t0: SimTime,
        t1: SimTime,
    ) -> (Path, QueryStats) {
        let (path, cost, source, complete) = query::trace_raw(&self.world, from, object, t0, t1);
        let stats = self.account(spans::QUERY_TRACE, from, cost, source, complete);
        (path, stats)
    }

    fn account(
        &mut self,
        span_kind: u32,
        from: SiteId,
        cost: query::QueryCost,
        source: query::AnswerSource,
        complete: bool,
    ) -> QueryStats {
        // Hop latency from the model, plus the deterministic WAN wire
        // time the query accumulated (zero without a topology).
        let time =
            self.sim.latency_for(cost.hops as u32) + SimTime::from_micros(cost.wan_us);
        if self.sim.tracing() {
            // Queries resolve against a consistent snapshot rather than
            // by exchanging sim messages, so the span *is* the record:
            // it opens now and closes at now + modelled latency.
            let span = self.sim.span_open(span_kind, from.0 as usize);
            let close_at = self.sim.now() + time;
            self.sim.span_close_at(span, close_at);
        }
        self.sim
            .metrics_mut()
            .record_bulk(MsgClass::Query, cost.messages, cost.bytes, cost.hops);
        QueryStats {
            time,
            messages: cost.messages,
            hops: cost.hops,
            bytes: cost.bytes,
            wan: SimTime::from_micros(cost.wan_us),
            cross_msgs: cost.cross_msgs,
            source,
            complete,
        }
    }

    // ------------------------------------------------------------------
    // Churn
    // ------------------------------------------------------------------

    /// A new organization joins: Chord join, key-range handoff, `Lp`
    /// refresh (with eager split/merge when configured). Returns the new
    /// site's id.
    ///
    /// Drains the event queue before returning so the handoff is
    /// complete — any *scheduled future captures* are processed too, so
    /// interleave joins with workload by alternating `schedule_capture`
    /// / `run_until` / `join_site` phases rather than pre-scheduling
    /// everything.
    pub fn join_site(&mut self) -> SiteId {
        let seed = self.world.config.seed;
        let idx = self.world.sites.len();
        let join_span = self.sim.span_open(spans::OP_JOIN, idx);
        let chord_id =
            site_chord_id(seed, idx, self.world.config.placement, self.world.geo.as_ref());
        let bootstrap = self
            .world
            .sites
            .iter()
            .find(|s| s.alive)
            .map(|s| s.chord_id)
            .expect("cannot join an empty network");

        let n_max = match self.world.config.mode {
            IndexingMode::Group(g) => g.n_max,
            IndexingMode::Individual => 1024,
        };
        let outcome = self
            .world
            .ring
            .join(bootstrap, chord_id, idx)
            .expect("join routing failed");
        self.sim.metrics_mut().record_bulk(
            MsgClass::Overlay,
            outcome.messages,
            outcome.messages * 32,
            outcome.messages,
        );
        let site = self.world.push_site(chord_id, n_max);

        if let Some(m) = outcome.migration {
            let from_idx = self
                .world
                .ring
                .app_index_of(&m.from)
                .expect("migration source is a member");
            self.world.apply_migration(&mut self.sim, &m, from_idx, idx);
        }
        self.world.ring.stabilize_all();
        // Settle the key handoff before recomputing Lp: the migrated
        // shards travel as in-flight messages, and an eager split that
        // runs while they are airborne cannot re-level them — they
        // would land at the old Lp after the rest of the index moved,
        // splitting the object's identity across two triangle levels.
        self.run_until_quiescent();
        let lp_span = self.sim.span_open(spans::OP_LP_REFRESH, idx);
        self.world.refresh_lp(&mut self.sim);
        self.world.invalidate_gateway_caches();
        // The eager split/merge migration also completes before control
        // returns; the traffic it cost stays in the metrics.
        self.run_until_quiescent();
        self.sim.span_close(lp_span);
        self.sim.span_close(join_span);
        self.replica_settle();
        site
    }

    /// An organization leaves gracefully: its open window flushes, its
    /// gateway shards hand off to the successor, its local repository
    /// departs with it (traces through it become incomplete — that is
    /// the price of sovereignty, and tests assert the degradation is
    /// detected via `QueryStats::complete`).
    pub fn leave_site(&mut self, site: SiteId) {
        let idx = site.0 as usize;
        assert!(self.world.sites[idx].alive, "site {site} already left");
        assert!(self.world.live_sites() > 1, "last site cannot leave");
        let leave_span = self.sim.span_open(spans::OP_LEAVE, idx);

        // Flush pending captures so in-flight inventory is indexed
        // (the node is still a ring member right now), then drain all
        // in-flight traffic so nothing targets a dead node mid-delivery.
        self.world.flush_site_window(&mut self.sim, idx);
        self.run_until_quiescent();

        let chord_id = self.world.sites[idx].chord_id;
        let outcome = self.world.ring.leave(chord_id);
        self.sim.metrics_mut().record_bulk(
            MsgClass::Overlay,
            outcome.messages,
            outcome.messages * 32,
            outcome.messages,
        );
        let succ_idx = self
            .world
            .ring
            .app_index_of(&outcome.migration.to)
            .expect("successor is a member");
        // Hand off all hosted index data — everything the node hosts
        // lies in its key range `(pred, id]`, which is exactly the
        // migration Chord reports.
        self.world.apply_migration(&mut self.sim, &outcome.migration, idx, succ_idx);
        // Drain the handoff while the leaver still counts as alive: a
        // graceful departure waits for its migration to be acked, so
        // under link faults the retry layer may retransmit it. Marking
        // the site dead first would silence those retransmissions and
        // lose the shard.
        self.run_until_quiescent();
        self.world.sites[idx].alive = false;
        self.world.ring.stabilize_all();
        let lp_span = self.sim.span_open(spans::OP_LP_REFRESH, idx);
        self.world.refresh_lp(&mut self.sim);
        self.world.invalidate_gateway_caches();
        // Handoff (and any eager merge) completes before control returns.
        self.run_until_quiescent();
        self.sim.span_close(lp_span);
        self.sim.span_close(leave_span);
        self.replica_settle();
    }

    /// An organization crashes mid-protocol: no flush, no handoff.
    /// Messages already in flight to it are discarded by the fault
    /// plane, its window contents and local repository are lost, and
    /// every index entry it hosted as a gateway vanishes — queries for
    /// those objects degrade (and must be *detectably* degraded; the
    /// invariant auditor checks exactly that). The overlay repairs
    /// itself through crash-aware incremental stabilization, whose
    /// convergence is asserted.
    ///
    /// Requires the network to have been built with [`Builder::faults`]
    /// (a no-fault plane via `FaultConfig::none` suffices).
    pub fn crash_site(&mut self, site: SiteId) {
        let idx = site.0 as usize;
        assert!(self.world.sites[idx].alive, "site {site} already gone");
        assert!(self.world.live_sites() > 1, "last site cannot crash");
        assert!(self.sim.has_faults(), "crash_site requires Builder::faults");

        let chord_id = self.world.sites[idx].chord_id;
        self.world.sites[idx].alive = false;
        self.sim.crash_node(idx);
        self.world.ring.fail(chord_id);

        // Crash-aware repair: incremental rounds, convergence asserted
        // within one finger-cursor rotation (see chord::Ring docs).
        let messages = self
            .world
            .ring
            .stabilize_until_converged(ids::ID_BITS + 1)
            .expect("post-crash stabilization must converge");
        self.sim.metrics_mut().record_bulk(
            MsgClass::Overlay,
            messages,
            messages * 32,
            messages,
        );
        self.world.refresh_lp(&mut self.sim);
        self.world.invalidate_gateway_caches();
        // Drain survivors' in-flight traffic (deliveries to the crashed
        // node are discarded by the plane as they surface), then forget
        // hosted prefixes whose only copy died with the node.
        self.run_until_quiescent();
        self.world.rebuild_hosted();
        self.replica_settle();
    }

    /// An organization fails **permanently** — the kill-forever fault
    /// model. Requires the network to have been built with
    /// [`Builder::replicas`] ≥ 2 (and [`Builder::faults`], like
    /// [`crash_site`](TraceableNetwork::crash_site)): the dead site's
    /// repository records stay readable through its successors'
    /// replica copies, and its index ranges fail over to the next
    /// successor. As long as at most K−1 members of any key's replica
    /// set are lost forever, every locate/trace answer remains exactly
    /// what the movement oracle predicts — the schedule auditor's
    /// kill-forever op asserts precisely that.
    ///
    /// The victim's open capture window is flushed and in-flight
    /// traffic drained *before* the kill: a permanent loss erases a
    /// node, not the observations it already published. Compare
    /// [`crash_site`](TraceableNetwork::crash_site), which models the
    /// unreplicated mid-protocol crash and loses both.
    pub fn kill_forever(&mut self, site: SiteId) {
        let idx = site.0 as usize;
        assert!(
            self.world.config.replication.enabled(),
            "kill_forever requires Builder::replicas >= 2"
        );
        assert!(self.sim.has_faults(), "kill_forever requires Builder::faults");
        assert!(self.world.sites[idx].alive, "site {site} already gone");
        assert!(self.world.live_sites() > 1, "last site cannot be killed");

        // Publish what the victim observed: replication protects
        // indexed data, not a window that never flushed.
        self.world.flush_site_window(&mut self.sim, idx);
        self.run_until_quiescent();

        let chord_id = self.world.sites[idx].chord_id;
        self.world.sites[idx].alive = false;
        self.sim.crash_node(idx);
        self.world.ring.fail(chord_id);
        let messages = self
            .world
            .ring
            .stabilize_until_converged(ids::ID_BITS + 1)
            .expect("post-kill stabilization must converge");
        self.sim.metrics_mut().record_bulk(
            MsgClass::Overlay,
            messages,
            messages * 32,
            messages,
        );
        // Failover before the Lp refresh: the heir must serve the dead
        // site's ranges as primary data when split/merge re-levels.
        self.world.promote_dead_primary(idx);
        self.world.refresh_lp(&mut self.sim);
        self.world.invalidate_gateway_caches();
        self.run_until_quiescent();
        self.world.rebuild_hosted();
        // Close the replication hole: every live primary's state back
        // onto exactly its K−1 current successors.
        self.replica_settle();
    }

    /// Re-establish the K-successor placement invariant after a
    /// membership change and drain the sync traffic. No-op when
    /// replication is disabled.
    fn replica_settle(&mut self) {
        if !self.world.config.replication.enabled() {
            return;
        }
        self.world.replica_maintenance(&mut self.sim);
        self.run_until_quiescent();
    }
}

impl TraceableNetwork {
    /// A read-only view implementing the MOODS [`Locate`]/[`Trace`]
    /// traits (queries issued from the first live site, no statistics —
    /// use [`TraceableNetwork::locate`]/[`trace`](TraceableNetwork::trace)
    /// for accounted queries).
    ///
    /// A separate view type keeps the trait's `&self` methods from
    /// shadowing the inherent `&mut self` query methods during method
    /// resolution.
    pub fn reader(&self) -> NetReader<'_> {
        NetReader { world: &self.world }
    }
}

/// Read-only MOODS view of a [`TraceableNetwork`].
pub struct NetReader<'a> {
    world: &'a NetWorld,
}

impl NetReader<'_> {
    fn origin(&self) -> SiteId {
        self.world
            .sites
            .iter()
            .find(|s| s.alive)
            .map(|s| s.site)
            .expect("network has live sites")
    }
}

impl Locate for NetReader<'_> {
    fn locate(&self, object: ObjectId, t: SimTime) -> Option<SiteId> {
        query::locate_raw(self.world, self.origin(), object, t).0
    }
}

impl Trace for NetReader<'_> {
    fn trace(&self, object: ObjectId, t0: SimTime, t1: SimTime) -> Path {
        query::trace_raw(self.world, self.origin(), object, t0, t1).0
    }
}
