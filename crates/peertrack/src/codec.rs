//! Binary wire codec for [`Msg`].
//!
//! The simulator never needs real serialization — state moves through
//! the event queue as Rust values — but the volume metric (§V-A, "total
//! volume of messages transferred over the network") must reflect real
//! message sizes. This codec grounds that definition: [`encode`]
//! produces the canonical on-wire form, and tests pin the exact
//! relationship `encode(msg).len() == msg.wire_size() + 4·(vector
//! fields)` (the accounting model carries vector lengths in the header's
//! reserved bytes; the standalone codec spends an explicit `u32`), so
//! the byte counts behind the figures can never silently drift from a
//! sendable encoding.
//!
//! Layout: a 16-byte header (tag, version, 6 reserved bytes, 8-byte
//! sequence number) followed by fixed-width fields; vectors are
//! length-prefixed with `u32`. `Option<Link>` is fixed-width (presence
//! byte + 12 bytes, zeroed when absent) so record sizes are predictable.

use crate::messages::{Msg, ENTRY_BYTES, LINK_BYTES, OBJECT_ID_BYTES, TIME_BYTES};
use crate::store::{GatewayStore, IndexEntry, IopRecord, IopStore, Link};
use crate::bytebuf::{ByteBuf, Bytes};
use ids::Prefix;
use moods::{ObjectId, SiteId};
use simnet::SimTime;

/// Codec protocol version.
pub const VERSION: u8 = 1;

/// Maximum element count a decoded vector may claim. A hostile length
/// prefix (up to 4 GiB expressible in the `u32`) must be rejected by
/// *arithmetic*, before any allocation is sized from it. The bound is
/// far above anything the protocol produces (`n_max` windows are ≤ a
/// few thousand observations) yet small enough that even a
/// maximum-length claim times the largest element never overflows or
/// reserves pathological memory.
pub const MAX_VECTOR_LEN: usize = 1 << 20;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than its structure requires.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Malformed prefix field.
    BadPrefix(String),
    /// A vector length prefix exceeds [`MAX_VECTOR_LEN`].
    TooLong(u32),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported codec version {v}"),
            DecodeError::BadPrefix(e) => write!(f, "bad prefix: {e}"),
            DecodeError::TooLong(n) => {
                write!(f, "vector length {n} exceeds limit {MAX_VECTOR_LEN}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

const TAG_ARRIVAL: u8 = 1;
const TAG_GROUP_INDEX: u8 = 2;
const TAG_SET_TO: u8 = 3;
const TAG_SET_FROM: u8 = 4;
const TAG_DELEGATE: u8 = 5;
const TAG_MIGRATE: u8 = 6;
const TAG_ACK: u8 = 7;
const TAG_REPL_IOP: u8 = 8;
const TAG_REPL_SHARD: u8 = 9;
const TAG_REPL_DIGEST: u8 = 10;
const TAG_REPL_SYNC_REQ: u8 = 11;
const TAG_REPL_STATE: u8 = 12;
const TAG_REPL_IOP_PATCH: u8 = 13;

fn put_header(buf: &mut ByteBuf, tag: u8, seq: u64) {
    buf.put_u8(tag);
    buf.put_u8(VERSION);
    buf.put_bytes(0, 6); // reserved
    buf.put_u64(seq);
}

fn put_object(buf: &mut ByteBuf, o: &ObjectId) {
    buf.put_slice(&o.0 .0);
}

fn put_time(buf: &mut ByteBuf, t: SimTime) {
    buf.put_u64(t.as_micros());
}

fn put_site(buf: &mut ByteBuf, s: SiteId) {
    buf.put_u32(s.0);
}

fn put_link(buf: &mut ByteBuf, l: &Link) {
    put_site(buf, l.site);
    put_time(buf, l.time);
}

fn put_opt_link(buf: &mut ByteBuf, l: &Option<Link>) {
    match l {
        Some(l) => {
            buf.put_u8(1);
            put_link(buf, l);
        }
        None => {
            buf.put_u8(0);
            buf.put_bytes(0, 12);
        }
    }
}

fn put_entry(buf: &mut ByteBuf, e: &IndexEntry) {
    put_site(buf, e.site);
    put_time(buf, e.time);
    put_opt_link(buf, &e.prev);
}

fn put_prefix(buf: &mut ByteBuf, p: &Prefix) {
    buf.put_slice(&p.wire_bytes());
}

fn put_opt_prefix(buf: &mut ByteBuf, p: &Option<Prefix>) {
    // Absence encoded as an over-long sentinel length (0xFF).
    match p {
        Some(p) => put_prefix(buf, p),
        None => {
            buf.put_u8(0xFF);
            buf.put_bytes(0, 8);
        }
    }
}

/// Encode a message with the given header sequence number.
pub fn encode(msg: &Msg, seq: u64) -> Bytes {
    let mut buf = ByteBuf::with_capacity(msg.wire_size() + 8);
    match msg {
        Msg::Arrival { object, site, time } => {
            put_header(&mut buf, TAG_ARRIVAL, seq);
            put_object(&mut buf, object);
            put_site(&mut buf, *site);
            put_time(&mut buf, *time);
        }
        Msg::GroupIndex { prefix, site, members } => {
            put_header(&mut buf, TAG_GROUP_INDEX, seq);
            put_prefix(&mut buf, prefix);
            put_site(&mut buf, *site);
            buf.put_u32(members.len() as u32);
            for (o, t) in members {
                put_object(&mut buf, o);
                put_time(&mut buf, *t);
            }
        }
        Msg::SetTo { updates } => {
            put_header(&mut buf, TAG_SET_TO, seq);
            buf.put_u32(updates.len() as u32);
            for (o, arrived, link) in updates {
                put_object(&mut buf, o);
                put_time(&mut buf, *arrived);
                put_link(&mut buf, link);
            }
        }
        Msg::SetFrom { updates } => {
            put_header(&mut buf, TAG_SET_FROM, seq);
            buf.put_u32(updates.len() as u32);
            for (o, arrived, from) in updates {
                put_object(&mut buf, o);
                put_time(&mut buf, *arrived);
                put_opt_link(&mut buf, from);
            }
        }
        Msg::Delegate { prefix, entries } => {
            put_header(&mut buf, TAG_DELEGATE, seq);
            put_prefix(&mut buf, prefix);
            buf.put_u32(entries.len() as u32);
            for (o, e) in entries {
                put_object(&mut buf, o);
                put_entry(&mut buf, e);
            }
        }
        Msg::Migrate { prefix, entries } => {
            put_header(&mut buf, TAG_MIGRATE, seq);
            put_opt_prefix(&mut buf, prefix);
            buf.put_u32(entries.len() as u32);
            for (o, e) in entries {
                put_object(&mut buf, o);
                put_entry(&mut buf, e);
            }
        }
        Msg::Ack { acked } => {
            put_header(&mut buf, TAG_ACK, seq);
            buf.put_u64(*acked);
        }
        Msg::ReplIop { primary, updates } => {
            put_header(&mut buf, TAG_REPL_IOP, seq);
            put_site(&mut buf, *primary);
            buf.put_u32(updates.len() as u32);
            for (o, r) in updates {
                put_object(&mut buf, o);
                put_time(&mut buf, r.arrived);
                put_opt_link(&mut buf, &r.from);
                put_opt_link(&mut buf, &r.to);
            }
        }
        Msg::ReplShard { primary, prefix, entries, delegated } => {
            put_header(&mut buf, TAG_REPL_SHARD, seq);
            put_site(&mut buf, *primary);
            put_opt_prefix(&mut buf, prefix);
            buf.put_u8(u8::from(*delegated));
            buf.put_u32(entries.len() as u32);
            for (o, e) in entries {
                put_object(&mut buf, o);
                put_entry(&mut buf, e);
            }
        }
        Msg::ReplDigest { primary, digest } => {
            put_header(&mut buf, TAG_REPL_DIGEST, seq);
            put_site(&mut buf, *primary);
            buf.put_slice(&digest.0);
        }
        Msg::ReplSyncReq { primary } => {
            put_header(&mut buf, TAG_REPL_SYNC_REQ, seq);
            put_site(&mut buf, *primary);
        }
        Msg::ReplState { primary, state } => {
            put_header(&mut buf, TAG_REPL_STATE, seq);
            put_site(&mut buf, *primary);
            buf.put_u32(state.len() as u32);
            buf.put_slice(state);
        }
        Msg::ReplIopPatch { primary, set_to, set_from } => {
            put_header(&mut buf, TAG_REPL_IOP_PATCH, seq);
            put_site(&mut buf, *primary);
            buf.put_u32(set_to.len() as u32);
            for (o, arrived, link) in set_to {
                put_object(&mut buf, o);
                put_time(&mut buf, *arrived);
                put_link(&mut buf, link);
            }
            buf.put_u32(set_from.len() as u32);
            for (o, arrived, from) in set_from {
                put_object(&mut buf, o);
                put_time(&mut buf, *arrived);
                put_opt_link(&mut buf, from);
            }
        }
    }
    buf.freeze()
}

fn need(buf: &Bytes, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

fn get_object(buf: &mut Bytes) -> Result<ObjectId, DecodeError> {
    need(buf, 20)?;
    let mut raw = [0u8; 20];
    buf.copy_to_slice(&mut raw);
    Ok(ObjectId(ids::Id(raw)))
}

fn get_time(buf: &mut Bytes) -> Result<SimTime, DecodeError> {
    need(buf, 8)?;
    Ok(SimTime::from_micros(buf.get_u64()))
}

fn get_site(buf: &mut Bytes) -> Result<SiteId, DecodeError> {
    need(buf, 4)?;
    Ok(SiteId(buf.get_u32()))
}

fn get_link(buf: &mut Bytes) -> Result<Link, DecodeError> {
    Ok(Link { site: get_site(buf)?, time: get_time(buf)? })
}

fn get_opt_link(buf: &mut Bytes) -> Result<Option<Link>, DecodeError> {
    need(buf, 13)?;
    let present = buf.get_u8() == 1;
    let link = get_link(buf)?;
    Ok(present.then_some(link))
}

fn get_entry(buf: &mut Bytes) -> Result<IndexEntry, DecodeError> {
    Ok(IndexEntry { site: get_site(buf)?, time: get_time(buf)?, prev: get_opt_link(buf)? })
}

fn get_prefix(buf: &mut Bytes) -> Result<Prefix, DecodeError> {
    need(buf, 9)?;
    let mut raw = [0u8; 9];
    buf.copy_to_slice(&mut raw);
    Prefix::from_wire_bytes(&raw).map_err(DecodeError::BadPrefix)
}

fn get_opt_prefix(buf: &mut Bytes) -> Result<Option<Prefix>, DecodeError> {
    need(buf, 9)?;
    let mut raw = [0u8; 9];
    buf.copy_to_slice(&mut raw);
    if raw[0] == 0xFF {
        return Ok(None);
    }
    Prefix::from_wire_bytes(&raw).map(Some).map_err(DecodeError::BadPrefix)
}

/// Read a vector length prefix and validate it against both the hard
/// [`MAX_VECTOR_LEN`] cap and the bytes actually remaining (each element
/// occupies at least `elem_bytes`), so the subsequent `Vec::with_capacity`
/// is sized from *verified* input. The order matters: an absurd claim is
/// `TooLong` even when the buffer is also short.
fn get_len(buf: &mut Bytes, elem_bytes: usize) -> Result<usize, DecodeError> {
    need(buf, 4)?;
    let n = buf.get_u32();
    if n as usize > MAX_VECTOR_LEN {
        return Err(DecodeError::TooLong(n));
    }
    // MAX_VECTOR_LEN · max element size stays far below usize::MAX, so
    // this product cannot overflow.
    if (n as usize) * elem_bytes > buf.remaining() {
        return Err(DecodeError::Truncated);
    }
    Ok(n as usize)
}

/// Decode a message; returns the message and the header sequence number.
pub fn decode(mut raw: Bytes) -> Result<(Msg, u64), DecodeError> {
    need(&raw, 16)?;
    let tag = raw.get_u8();
    let version = raw.get_u8();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    raw.advance(6);
    let seq = raw.get_u64();

    let msg = match tag {
        TAG_ARRIVAL => Msg::Arrival {
            object: get_object(&mut raw)?,
            site: get_site(&mut raw)?,
            time: get_time(&mut raw)?,
        },
        TAG_GROUP_INDEX => {
            let prefix = get_prefix(&mut raw)?;
            let site = get_site(&mut raw)?;
            let n = get_len(&mut raw, OBJECT_ID_BYTES + TIME_BYTES)?;
            let mut members = Vec::with_capacity(n);
            for _ in 0..n {
                members.push((get_object(&mut raw)?, get_time(&mut raw)?));
            }
            Msg::GroupIndex { prefix, site, members }
        }
        TAG_SET_TO => {
            let n = get_len(&mut raw, OBJECT_ID_BYTES + TIME_BYTES + LINK_BYTES)?;
            let mut updates = Vec::with_capacity(n);
            for _ in 0..n {
                updates.push((get_object(&mut raw)?, get_time(&mut raw)?, get_link(&mut raw)?));
            }
            Msg::SetTo { updates }
        }
        TAG_SET_FROM => {
            let n = get_len(&mut raw, OBJECT_ID_BYTES + TIME_BYTES + 1 + LINK_BYTES)?;
            let mut updates = Vec::with_capacity(n);
            for _ in 0..n {
                updates.push((
                    get_object(&mut raw)?,
                    get_time(&mut raw)?,
                    get_opt_link(&mut raw)?,
                ));
            }
            Msg::SetFrom { updates }
        }
        TAG_DELEGATE => {
            let prefix = get_prefix(&mut raw)?;
            let n = get_len(&mut raw, OBJECT_ID_BYTES + ENTRY_BYTES)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push((get_object(&mut raw)?, get_entry(&mut raw)?));
            }
            Msg::Delegate { prefix, entries }
        }
        TAG_MIGRATE => {
            let prefix = get_opt_prefix(&mut raw)?;
            let n = get_len(&mut raw, OBJECT_ID_BYTES + ENTRY_BYTES)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push((get_object(&mut raw)?, get_entry(&mut raw)?));
            }
            Msg::Migrate { prefix, entries }
        }
        TAG_ACK => {
            need(&raw, 8)?;
            Msg::Ack { acked: raw.get_u64() }
        }
        TAG_REPL_IOP => {
            let primary = get_site(&mut raw)?;
            let n = get_len(&mut raw, OBJECT_ID_BYTES + TIME_BYTES + 2 * (1 + LINK_BYTES))?;
            let mut updates = Vec::with_capacity(n);
            for _ in 0..n {
                let o = get_object(&mut raw)?;
                let rec = IopRecord {
                    arrived: get_time(&mut raw)?,
                    from: get_opt_link(&mut raw)?,
                    to: get_opt_link(&mut raw)?,
                };
                updates.push((o, rec));
            }
            Msg::ReplIop { primary, updates }
        }
        TAG_REPL_SHARD => {
            let primary = get_site(&mut raw)?;
            let prefix = get_opt_prefix(&mut raw)?;
            need(&raw, 1)?;
            let delegated = raw.get_u8() == 1;
            let n = get_len(&mut raw, OBJECT_ID_BYTES + ENTRY_BYTES)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push((get_object(&mut raw)?, get_entry(&mut raw)?));
            }
            Msg::ReplShard { primary, prefix, entries, delegated }
        }
        TAG_REPL_DIGEST => {
            let primary = get_site(&mut raw)?;
            need(&raw, 20)?;
            let mut digest = [0u8; 20];
            raw.copy_to_slice(&mut digest);
            Msg::ReplDigest { primary, digest: ids::Id(digest) }
        }
        TAG_REPL_SYNC_REQ => Msg::ReplSyncReq { primary: get_site(&mut raw)? },
        TAG_REPL_STATE => {
            let primary = get_site(&mut raw)?;
            let n = get_len(&mut raw, 1)?;
            let mut state = vec![0u8; n];
            raw.copy_to_slice(&mut state);
            Msg::ReplState { primary, state }
        }
        TAG_REPL_IOP_PATCH => {
            let primary = get_site(&mut raw)?;
            let n = get_len(&mut raw, OBJECT_ID_BYTES + TIME_BYTES + LINK_BYTES)?;
            let mut set_to = Vec::with_capacity(n);
            for _ in 0..n {
                set_to.push((get_object(&mut raw)?, get_time(&mut raw)?, get_link(&mut raw)?));
            }
            let m = get_len(&mut raw, OBJECT_ID_BYTES + TIME_BYTES + 1 + LINK_BYTES)?;
            let mut set_from = Vec::with_capacity(m);
            for _ in 0..m {
                set_from.push((
                    get_object(&mut raw)?,
                    get_time(&mut raw)?,
                    get_opt_link(&mut raw)?,
                ));
            }
            Msg::ReplIopPatch { primary, set_to, set_from }
        }
        other => return Err(DecodeError::BadTag(other)),
    };
    Ok((msg, seq))
}

// ----------------------------------------------------------------------
// State records (durable snapshots)
// ----------------------------------------------------------------------
//
// The daemon's crash-recovery layer snapshots a node's in-memory state
// with the same wire vocabulary as the protocol messages. Encodings are
// **canonical**: hash-map contents are emitted in sorted key order, so
// two semantically equal stores produce byte-identical encodings — which
// is what lets `tests/tests/crash_recovery.rs` compare a recovered node
// against its pre-crash self with `assert_eq!` on bytes.

/// Append a canonical encoding of an IOP repository.
pub fn put_state_iop(buf: &mut ByteBuf, iop: &IopStore) {
    let mut objects: Vec<ObjectId> = iop.iter().map(|(o, _)| o).collect();
    objects.sort();
    buf.put_u32(objects.len() as u32);
    for o in objects {
        put_object(buf, &o);
        let records = iop.all(o);
        buf.put_u32(records.len() as u32);
        for r in records {
            put_time(buf, r.arrived);
            put_opt_link(buf, &r.from);
            put_opt_link(buf, &r.to);
        }
    }
}

/// Decode an IOP repository (inverse of [`put_state_iop`]).
pub fn get_state_iop(buf: &mut Bytes) -> Result<IopStore, DecodeError> {
    let mut iop = IopStore::new();
    let n = get_len(buf, OBJECT_ID_BYTES + 4)?;
    for _ in 0..n {
        let object = get_object(buf)?;
        let m = get_len(buf, TIME_BYTES + 2 * (1 + LINK_BYTES))?;
        let mut records = Vec::with_capacity(m);
        for _ in 0..m {
            records.push(IopRecord {
                arrived: get_time(buf)?,
                from: get_opt_link(buf)?,
                to: get_opt_link(buf)?,
            });
        }
        iop.insert_history(object, records);
    }
    Ok(iop)
}

fn put_entry_map(buf: &mut ByteBuf, entries: &std::collections::HashMap<ObjectId, IndexEntry>) {
    let mut objects: Vec<&ObjectId> = entries.keys().collect();
    objects.sort();
    buf.put_u32(objects.len() as u32);
    for o in objects {
        put_object(buf, o);
        put_entry(buf, &entries[o]);
    }
}

fn get_entry_map(
    buf: &mut Bytes,
) -> Result<std::collections::HashMap<ObjectId, IndexEntry>, DecodeError> {
    let n = get_len(buf, OBJECT_ID_BYTES + ENTRY_BYTES)?;
    let mut map = std::collections::HashMap::with_capacity(n);
    for _ in 0..n {
        map.insert(get_object(buf)?, get_entry(buf)?);
    }
    Ok(map)
}

/// Append a canonical encoding of a gateway store (individual-mode
/// entries plus every group-mode prefix shard).
pub fn put_state_gateway(buf: &mut ByteBuf, g: &GatewayStore) {
    put_entry_map(buf, &g.objects);
    let mut prefixes: Vec<&Prefix> = g.prefixes.keys().collect();
    prefixes.sort();
    buf.put_u32(prefixes.len() as u32);
    for p in prefixes {
        put_prefix(buf, p);
        let shard = &g.prefixes[p];
        buf.put_u8(u8::from(shard.delegated));
        put_entry_map(buf, &shard.entries);
    }
}

/// Decode a gateway store (inverse of [`put_state_gateway`]). Shard
/// recency order is rebuilt from the entries' update times.
pub fn get_state_gateway(buf: &mut Bytes) -> Result<GatewayStore, DecodeError> {
    let mut g = GatewayStore::new();
    g.objects = get_entry_map(buf)?;
    let n = get_len(buf, 9 + 1 + 4)?;
    for _ in 0..n {
        let prefix = get_prefix(buf)?;
        let delegated = {
            need(buf, 1)?;
            buf.get_u8() == 1
        };
        let entries = get_entry_map(buf)?;
        let shard = g.shard_mut(prefix);
        shard.delegated = delegated;
        for (o, e) in entries {
            shard.upsert(o, e);
        }
    }
    Ok(g)
}

/// Append an open capture window's contents (observations are already
/// an ordered sequence — no sorting involved).
pub fn put_state_window(buf: &mut ByteBuf, w: &crate::window::WindowBuffer) {
    put_time(buf, w.opened());
    let obs = w.observations();
    buf.put_u32(obs.len() as u32);
    for (o, t) in obs {
        put_object(buf, o);
        put_time(buf, *t);
    }
}

/// Decode a capture window for `site` flushing at `n_max` (inverse of
/// [`put_state_window`]).
pub fn get_state_window(
    buf: &mut Bytes,
    site: SiteId,
    n_max: usize,
) -> Result<crate::window::WindowBuffer, DecodeError> {
    let opened = get_time(buf)?;
    let n = get_len(buf, OBJECT_ID_BYTES + TIME_BYTES)?;
    if n >= n_max {
        // A window this full would have flushed before it was captured.
        return Err(DecodeError::TooLong(n as u32));
    }
    let mut obs = Vec::with_capacity(n);
    for _ in 0..n {
        obs.push((get_object(buf)?, get_time(buf)?));
    }
    Ok(crate::window::WindowBuffer::restore(site, n_max, obs, opened))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptiny::prelude::*;

    fn obj(n: u64) -> ObjectId {
        ObjectId::from_raw(&n.to_be_bytes())
    }

    fn link(n: u32, t: u64) -> Link {
        Link { site: SiteId(n), time: SimTime::from_micros(t) }
    }

    fn entry(n: u32, t: u64, prev: Option<Link>) -> IndexEntry {
        IndexEntry { site: SiteId(n), time: SimTime::from_micros(t), prev }
    }

    fn samples() -> Vec<Msg> {
        vec![
            Msg::Arrival { object: obj(1), site: SiteId(3), time: SimTime::from_micros(99) },
            Msg::GroupIndex {
                prefix: Prefix::from_bit_str("0101"),
                site: SiteId(2),
                members: (0..5).map(|i| (obj(i), SimTime::from_micros(i))).collect(),
            },
            Msg::GroupIndex {
                prefix: Prefix::ROOT,
                site: SiteId(0),
                members: vec![],
            },
            Msg::SetTo { updates: vec![(obj(1), SimTime::from_micros(5), link(2, 9))] },
            Msg::SetFrom {
                updates: vec![
                    (obj(1), SimTime::from_micros(5), Some(link(2, 9))),
                    (obj(2), SimTime::from_micros(6), None),
                ],
            },
            Msg::Delegate {
                prefix: Prefix::from_bit_str("111"),
                entries: vec![(obj(3), entry(1, 2, Some(link(0, 1))))],
            },
            Msg::Migrate { prefix: None, entries: vec![(obj(4), entry(5, 6, None))] },
            Msg::Migrate {
                prefix: Some(Prefix::from_bit_str("00")),
                entries: vec![],
            },
            Msg::Ack { acked: 0 },
            Msg::Ack { acked: u64::MAX },
            Msg::ReplIop {
                primary: SiteId(7),
                updates: vec![(
                    obj(5),
                    IopRecord {
                        arrived: SimTime::from_micros(11),
                        from: Some(link(1, 2)),
                        to: None,
                    },
                )],
            },
            Msg::ReplShard {
                primary: SiteId(8),
                prefix: Some(Prefix::from_bit_str("110")),
                entries: vec![(obj(6), entry(2, 3, Some(link(4, 5))))],
                delegated: true,
            },
            Msg::ReplShard { primary: SiteId(8), prefix: None, entries: vec![], delegated: false },
            Msg::ReplDigest { primary: SiteId(9), digest: ids::Id::hash(b"digest") },
            Msg::ReplSyncReq { primary: SiteId(10) },
            Msg::ReplState { primary: SiteId(11), state: vec![1, 2, 3, 4, 5] },
            Msg::ReplIopPatch {
                primary: SiteId(12),
                set_to: vec![(obj(7), SimTime::from_micros(3), link(1, 4))],
                set_from: vec![(obj(7), SimTime::from_micros(4), Some(link(2, 3))), (obj(8), SimTime::from_micros(5), None)],
            },
        ]
    }

    fn assert_msg_eq(a: &Msg, b: &Msg) {
        // Msg doesn't derive PartialEq (payloads are large); compare via
        // canonical encoding.
        assert_eq!(encode(a, 0), encode(b, 0));
    }

    #[test]
    fn roundtrip_all_shapes() {
        for (i, m) in samples().iter().enumerate() {
            let raw = encode(m, i as u64);
            let (back, seq) = decode(raw).unwrap_or_else(|e| panic!("sample {i}: {e}"));
            assert_eq!(seq, i as u64);
            assert_msg_eq(m, &back);
        }
    }

    #[test]
    fn wire_size_matters_but_codec_adds_length_prefixes() {
        // wire_size models a codec whose vector lengths ride in the
        // reserved header bytes; the standalone codec spends an explicit
        // u32 per vector. Assert the exact relationship so the two can
        // never drift silently.
        for m in samples() {
            let encoded = encode(&m, 0).len();
            let vectors = match &m {
                Msg::Arrival { .. }
                | Msg::Ack { .. }
                | Msg::ReplDigest { .. }
                | Msg::ReplSyncReq { .. } => 0,
                Msg::GroupIndex { .. }
                | Msg::SetTo { .. }
                | Msg::SetFrom { .. }
                | Msg::Delegate { .. }
                | Msg::Migrate { .. }
                | Msg::ReplIop { .. }
                | Msg::ReplShard { .. }
                | Msg::ReplState { .. } => 1,
                Msg::ReplIopPatch { .. } => 2,
            };
            assert_eq!(
                encoded,
                m.wire_size() + 4 * vectors,
                "drift between codec and wire_size for {m:?}"
            );
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(decode(Bytes::from_static(b"")), Err(DecodeError::Truncated)));
        let mut raw = ByteBuf::new();
        put_header(&mut raw, 99, 0);
        assert!(matches!(decode(raw.freeze()), Err(DecodeError::BadTag(99))));
        let mut raw = ByteBuf::new();
        raw.put_u8(TAG_ARRIVAL);
        raw.put_u8(VERSION + 1);
        raw.put_bytes(0, 14);
        assert!(matches!(decode(raw.freeze()), Err(DecodeError::BadVersion(v)) if v == VERSION + 1));
    }

    #[test]
    fn decode_rejects_hostile_length_prefix_without_allocating() {
        // A 4 GiB-worth length claim must fail by arithmetic, not by an
        // allocation attempt — for every vector-carrying tag.
        for tag in [
            TAG_GROUP_INDEX,
            TAG_SET_TO,
            TAG_SET_FROM,
            TAG_DELEGATE,
            TAG_MIGRATE,
            TAG_REPL_IOP,
            TAG_REPL_SHARD,
            TAG_REPL_STATE,
            TAG_REPL_IOP_PATCH,
        ] {
            let mut raw = ByteBuf::new();
            put_header(&mut raw, tag, 0);
            if matches!(tag, TAG_REPL_IOP | TAG_REPL_SHARD | TAG_REPL_STATE | TAG_REPL_IOP_PATCH) {
                put_site(&mut raw, SiteId(1));
            }
            if matches!(tag, TAG_GROUP_INDEX | TAG_DELEGATE | TAG_MIGRATE) {
                put_prefix(&mut raw, &Prefix::from_bit_str("01"));
            }
            if tag == TAG_GROUP_INDEX {
                put_site(&mut raw, SiteId(1));
            }
            if tag == TAG_REPL_SHARD {
                put_opt_prefix(&mut raw, &None);
                raw.put_u8(0);
            }
            raw.put_u32(u32::MAX); // claims ~4 Gi elements
            let err = decode(raw.freeze()).unwrap_err();
            assert_eq!(err, DecodeError::TooLong(u32::MAX), "tag {tag}");
        }
    }

    #[test]
    fn decode_rejects_length_exceeding_remaining_bytes() {
        // A length under the cap but larger than the buffer could hold
        // must be Truncated *before* the element loop allocates.
        let mut raw = ByteBuf::new();
        put_header(&mut raw, TAG_SET_TO, 0);
        raw.put_u32((MAX_VECTOR_LEN - 1) as u32);
        assert_eq!(decode(raw.freeze()).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn decode_rejects_truncated_body() {
        let m = Msg::SetTo { updates: vec![(obj(1), SimTime::from_micros(5), link(2, 9))] };
        let full = encode(&m, 0);
        for cut in [17, 20, full.len() - 1] {
            let sliced = full.slice(..cut);
            assert!(matches!(decode(sliced), Err(DecodeError::Truncated)), "cut at {cut}");
        }
    }

    #[test]
    fn state_iop_roundtrip_is_canonical() {
        // Two stores with the same content built in different insertion
        // orders must encode byte-identically (canonical order), and
        // the roundtrip must preserve every record.
        let build = |order: &[u64]| {
            let mut iop = IopStore::new();
            for &n in order {
                iop.capture(obj(n), SimTime::from_micros(10 * n));
                iop.set_from(obj(n), SimTime::from_micros(10 * n), (n % 2 == 0).then(|| link(1, n)));
            }
            iop
        };
        let a = build(&[1, 2, 3, 4]);
        let b = build(&[4, 2, 3, 1]);
        let enc = |iop: &IopStore| {
            let mut buf = ByteBuf::new();
            put_state_iop(&mut buf, iop);
            buf.freeze()
        };
        assert_eq!(enc(&a), enc(&b), "insertion order leaked into the encoding");
        let mut bytes = enc(&a);
        let back = get_state_iop(&mut bytes).unwrap();
        assert_eq!(bytes.remaining(), 0);
        assert_eq!(enc(&back), enc(&a));
        for n in 1..=4 {
            assert_eq!(back.all(obj(n)), a.all(obj(n)));
        }
    }

    #[test]
    fn state_gateway_roundtrip_is_canonical() {
        let build = |order: &[u64]| {
            let mut g = GatewayStore::new();
            g.objects.insert(obj(9), entry(1, 1, None));
            for &n in order {
                let p = Prefix::from_bit_str(if n % 2 == 0 { "01" } else { "10" });
                g.shard_mut(p).upsert(obj(n), entry(n as u32, n, Some(link(2, n))));
            }
            g.shard_mut(Prefix::from_bit_str("01")).delegated = true;
            g
        };
        let enc = |g: &GatewayStore| {
            let mut buf = ByteBuf::new();
            put_state_gateway(&mut buf, g);
            buf.freeze()
        };
        let a = build(&[1, 2, 3, 4, 5]);
        let b = build(&[5, 3, 1, 4, 2]);
        assert_eq!(enc(&a), enc(&b));
        let mut bytes = enc(&a);
        let back = get_state_gateway(&mut bytes).unwrap();
        assert_eq!(bytes.remaining(), 0);
        assert_eq!(enc(&back), enc(&a));
        assert!(back.prefixes[&Prefix::from_bit_str("01")].delegated);
        // Recency order survives: the earliest record in shard "01"
        // (objects 2, 4 at times 2, 4) is object 2.
        let mut back = back;
        let earliest = back.shard_mut(Prefix::from_bit_str("01")).take_earliest(1);
        assert_eq!(earliest[0].0, obj(2));
    }

    #[test]
    fn state_window_roundtrip_and_full_window_rejected() {
        let mut w = crate::window::WindowBuffer::new(SiteId(3), 8);
        w.push(obj(1), SimTime::from_micros(100));
        w.push(obj(2), SimTime::from_micros(150));
        let mut buf = ByteBuf::new();
        put_state_window(&mut buf, &w);
        let mut bytes = buf.freeze();
        let back = get_state_window(&mut bytes, SiteId(3), 8).unwrap();
        assert_eq!(back.observations(), w.observations());
        assert_eq!(back.opened(), w.opened());

        // The same bytes against a smaller n_max claim a window that
        // could never have existed — loud error, not a panic later.
        let mut buf = ByteBuf::new();
        put_state_window(&mut buf, &w);
        let mut bytes = buf.freeze();
        assert!(get_state_window(&mut bytes, SiteId(3), 2).is_err());
    }

    proptiny! {
        #[test]
        fn prop_group_index_roundtrip(
            seeds in prop::collection::vec((any::<u64>(), any::<u64>()), 0..64),
            bits in "[01]{0,20}",
            site in any::<u32>(),
            seq in any::<u64>(),
        ) {
            let m = Msg::GroupIndex {
                prefix: Prefix::from_bit_str(&bits),
                site: SiteId(site),
                members: seeds
                    .iter()
                    .map(|(s, t)| (obj(*s), SimTime::from_micros(*t)))
                    .collect(),
            };
            let (back, got_seq) = decode(encode(&m, seq)).unwrap();
            prop_assert_eq!(got_seq, seq);
            prop_assert_eq!(encode(&back, seq), encode(&m, seq));
        }

        #[test]
        fn prop_decode_arbitrary_bytes_never_panics(
            raw in prop::collection::vec(any::<u8>(), 0..512),
        ) {
            // Hostile input must produce an error, never a panic or an
            // unbounded allocation.
            let _ = decode(Bytes::from(raw));
        }

        #[test]
        fn prop_mutated_encodings_never_panic(
            which in 0usize..16,
            mutations in prop::collection::vec((any::<u16>(), any::<u8>()), 1..32),
            seq in any::<u64>(),
        ) {
            // Fuzz-style: start from a *valid* encoding and flip bytes at
            // random offsets. Decoding the corrupted frame must either
            // succeed (the mutation hit a don't-care byte) or return a
            // DecodeError — never panic, never attempt a hostile-sized
            // allocation (the TooLong/Truncated guards in get_len).
            let samples = samples();
            let base = encode(&samples[which % samples.len()], seq);
            let mut bytes = base.as_slice().to_vec();
            for (off, val) in &mutations {
                let i = *off as usize % bytes.len();
                bytes[i] ^= *val;
            }
            let _ = decode(Bytes::from(bytes));
        }

        #[test]
        fn prop_truncations_never_panic(
            seeds in prop::collection::vec((any::<u64>(), any::<u64>()), 1..16),
        ) {
            let m = Msg::GroupIndex {
                prefix: Prefix::from_bit_str("01"),
                site: SiteId(1),
                members: seeds
                    .iter()
                    .map(|(s, t)| (obj(*s), SimTime::from_micros(*t)))
                    .collect(),
            };
            let full = encode(&m, 1);
            for cut in 0..full.len() {
                let _ = decode(full.slice(..cut));
            }
        }

        #[test]
        fn prop_every_variant_roundtrips_and_sizes_agree(
            variant in 0u8..14,
            seeds in prop::collection::vec((any::<u64>(), any::<u64>()), 0..24),
            bits in "[01]{0,20}",
            site in any::<u32>(),
            seq in any::<u64>(),
        ) {
            // One generator covering the whole `Msg` enum — including the
            // retry layer's `Ack` — so a new variant missing from the
            // codec fails here, not in the field.
            let prefix = Prefix::from_bit_str(&bits);
            let objects = |s: &[(u64, u64)]| -> Vec<(ObjectId, SimTime)> {
                s.iter().map(|(o, t)| (obj(*o), SimTime::from_micros(*t))).collect()
            };
            let m = match variant {
                0 => Msg::Arrival {
                    object: obj(seeds.first().map_or(0, |s| s.0)),
                    site: SiteId(site),
                    time: SimTime::from_micros(seq),
                },
                1 => Msg::GroupIndex { prefix, site: SiteId(site), members: objects(&seeds) },
                2 => Msg::SetTo {
                    updates: seeds
                        .iter()
                        .map(|(o, t)| (obj(*o), SimTime::from_micros(*t), link(site, *t ^ 1)))
                        .collect(),
                },
                3 => Msg::SetFrom {
                    updates: seeds
                        .iter()
                        .map(|(o, t)| {
                            (obj(*o), SimTime::from_micros(*t), (t % 2 == 0).then(|| link(site, *o)))
                        })
                        .collect(),
                },
                4 => Msg::Delegate {
                    prefix,
                    entries: seeds
                        .iter()
                        .map(|(o, t)| (obj(*o), entry(site, *t, (o % 2 == 0).then(|| link(2, 3)))))
                        .collect(),
                },
                5 => Msg::Migrate {
                    prefix: Some(prefix),
                    entries: seeds.iter().map(|(o, t)| (obj(*o), entry(site, *t, None))).collect(),
                },
                6 => Msg::Migrate {
                    prefix: None,
                    entries: seeds.iter().map(|(o, t)| (obj(*o), entry(site, *t, None))).collect(),
                },
                7 => Msg::Ack { acked: seeds.first().map_or(0, |s| s.0) },
                8 => Msg::ReplIop {
                    primary: SiteId(site),
                    updates: seeds
                        .iter()
                        .map(|(o, t)| {
                            (obj(*o), IopRecord {
                                arrived: SimTime::from_micros(*t),
                                from: (o % 2 == 0).then(|| link(site, *t)),
                                to: (t % 2 == 0).then(|| link(site ^ 1, *o)),
                            })
                        })
                        .collect(),
                },
                9 => Msg::ReplShard {
                    primary: SiteId(site),
                    prefix: (site % 2 == 0).then_some(prefix),
                    entries: seeds
                        .iter()
                        .map(|(o, t)| (obj(*o), entry(site, *t, (o % 2 == 0).then(|| link(1, 2)))))
                        .collect(),
                    delegated: site % 3 == 0,
                },
                10 => Msg::ReplDigest {
                    primary: SiteId(site),
                    digest: ids::Id::hash(&seq.to_be_bytes()),
                },
                11 => Msg::ReplSyncReq { primary: SiteId(site) },
                12 => Msg::ReplState {
                    primary: SiteId(site),
                    state: seeds.iter().map(|(o, _)| *o as u8).collect(),
                },
                _ => Msg::ReplIopPatch {
                    primary: SiteId(site),
                    set_to: seeds
                        .iter()
                        .map(|(o, t)| (obj(*o), SimTime::from_micros(*t), link(site, *o)))
                        .collect(),
                    set_from: seeds
                        .iter()
                        .map(|(o, t)| {
                            (obj(*t), SimTime::from_micros(*o), (o % 2 == 0).then(|| link(site, *t)))
                        })
                        .collect(),
                },
            };
            let raw = encode(&m, seq);
            let vectors = match m {
                Msg::Arrival { .. }
                | Msg::Ack { .. }
                | Msg::ReplDigest { .. }
                | Msg::ReplSyncReq { .. } => 0,
                Msg::ReplIopPatch { .. } => 2,
                _ => 1,
            };
            prop_assert_eq!(raw.len(), m.wire_size() + 4 * vectors);
            let (back, got_seq) = decode(raw).unwrap();
            prop_assert_eq!(got_seq, seq);
            prop_assert_eq!(encode(&back, seq), encode(&m, seq));
        }

        #[test]
        fn prop_migrate_roundtrip(
            entries in prop::collection::vec(
                (any::<u64>(), any::<u32>(), any::<u64>(), any::<bool>()), 0..32),
            has_prefix in any::<bool>(),
        ) {
            let m = Msg::Migrate {
                prefix: has_prefix.then(|| Prefix::from_bit_str("0110")),
                entries: entries
                    .iter()
                    .map(|(o, s, t, p)| {
                        (obj(*o), entry(*s, *t, p.then(|| link(1, 2))))
                    })
                    .collect(),
            };
            let (back, _) = decode(encode(&m, 7)).unwrap();
            prop_assert_eq!(encode(&back, 7), encode(&m, 7));
        }
    }
}
