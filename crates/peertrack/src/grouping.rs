//! Group generation (§IV-A.1).
//!
//! "Two objects belong to the same group when their ids have `Lp` prefix
//! bits in common." Given a flushed window, [`group_batch`] partitions
//! the observations into per-prefix groups — the unit of one group
//! indexing message.

use ids::Prefix;
use moods::ObjectId;
use simnet::SimTime;
use std::collections::BTreeMap;

/// One group: a prefix and the window's observations falling under it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    /// The group id (the shared `Lp`-bit prefix).
    pub prefix: Prefix,
    /// `(object, capture time)` members, in arrival order.
    pub members: Vec<(ObjectId, SimTime)>,
}

/// Partition a window's observations by their `lp`-bit id prefixes.
/// Groups come out in prefix order (deterministic across runs).
///
/// With `lp = 0` everything lands in a single root group — degenerate
/// but well-defined (useful for bootstrap-era networks before `Lmin`
/// kicks in).
pub fn group_batch(observations: &[(ObjectId, SimTime)], lp: usize) -> Vec<Group> {
    let mut by_prefix: BTreeMap<Prefix, Vec<(ObjectId, SimTime)>> = BTreeMap::new();
    for &(object, time) in observations {
        let p = Prefix::of_id(&object.id(), lp);
        by_prefix.entry(p).or_default().push((object, time));
    }
    by_prefix
        .into_iter()
        .map(|(prefix, members)| Group { prefix, members })
        .collect()
}

/// Upper bound on the number of groups a batch of `n` objects can form
/// at prefix length `lp` (`min(n, 2^lp)`); used by capacity planning and
/// asserted by tests.
pub fn max_groups(n: usize, lp: usize) -> usize {
    if lp >= usize::BITS as usize - 1 {
        return n;
    }
    n.min(1usize << lp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids::Id;
    use proptiny::prelude::*;
    use simnet::time::ms;

    fn obj(n: u64) -> ObjectId {
        ObjectId(Id::hash(&n.to_be_bytes()))
    }

    #[test]
    fn members_share_prefix_and_cover_input() {
        let obs: Vec<_> = (0..1024u64).map(|i| (obj(i), ms(i))).collect();
        let groups = group_batch(&obs, 4);
        // §IV-A: 1024 objects at Lp=4 → at most 16 groups.
        assert!(groups.len() <= 16);
        let total: usize = groups.iter().map(|g| g.members.len()).sum();
        assert_eq!(total, 1024);
        for g in &groups {
            assert_eq!(g.prefix.len(), 4);
            for (o, _) in &g.members {
                assert!(g.prefix.matches(&o.id()), "member must match group prefix");
            }
        }
    }

    #[test]
    fn zero_lp_single_group() {
        let obs: Vec<_> = (0..10u64).map(|i| (obj(i), ms(i))).collect();
        let groups = group_batch(&obs, 0);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].prefix, Prefix::ROOT);
        assert_eq!(groups[0].members.len(), 10);
    }

    #[test]
    fn long_prefix_approaches_individual() {
        let obs: Vec<_> = (0..64u64).map(|i| (obj(i), ms(i))).collect();
        let groups = group_batch(&obs, 64);
        // SHA-1 collisions on 64 bits among 64 objects: essentially none.
        assert_eq!(groups.len(), 64);
    }

    #[test]
    fn arrival_order_preserved_within_group() {
        // Two objects with the same 0-bit prefix: order must match input.
        let obs = vec![(obj(5), ms(1)), (obj(9), ms(2)), (obj(5), ms(3))];
        let groups = group_batch(&obs, 0);
        assert_eq!(groups[0].members, obs);
    }

    #[test]
    fn empty_batch_no_groups() {
        assert!(group_batch(&[], 8).is_empty());
    }

    #[test]
    fn max_groups_bounds() {
        assert_eq!(max_groups(1000, 4), 16);
        assert_eq!(max_groups(10, 10), 10);
        assert_eq!(max_groups(10, 63), 10);
        assert_eq!(max_groups(10, 64), 10);
    }

    proptiny! {
        #[test]
        fn prop_grouping_is_a_partition(
            seeds in prop::collection::vec(any::<u64>(), 1..200),
            lp in 0usize..16,
        ) {
            let obs: Vec<_> = seeds.iter().enumerate()
                .map(|(i, s)| (obj(*s), ms(i as u64)))
                .collect();
            let groups = group_batch(&obs, lp);
            // Partition: sizes sum to input, prefixes distinct, members match.
            let total: usize = groups.iter().map(|g| g.members.len()).sum();
            prop_assert_eq!(total, obs.len());
            let mut seen = std::collections::BTreeSet::new();
            for g in &groups {
                prop_assert!(seen.insert(g.prefix), "duplicate group prefix");
                prop_assert!(g.members.len() <= obs.len());
                for (o, _) in &g.members {
                    prop_assert!(g.prefix.matches(&o.id()));
                }
            }
            prop_assert!(groups.len() <= max_groups(obs.len(), lp));
        }
    }
}
