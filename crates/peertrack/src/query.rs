//! Query processing (§IV-A.3 lookup + §IV-B).
//!
//! To answer `L`/`TR` for an object the system must first find *any*
//! IOP record or index entry for it:
//!
//! 1. the querying node checks its own repository (free);
//! 2. otherwise the query routes towards the object's gateway; **any
//!    node along the routing path** holding IOP information answers
//!    early (§IV-B's *Intermediate Node* case);
//! 3. at the gateway, the §IV-A.3 lookup runs: the shard for the
//!    current-length prefix first, then a bidirectional linear search —
//!    the triangle children (where delegated records live) and the
//!    hosted ancestor prefixes (where pre-split history lives).
//!
//! From the anchor, the IOP's distributed doubly-linked list is
//! traversed backward/forward, one message per visited site.
//!
//! Query functions are **pure** (`&NetWorld`): they return the answer
//! plus a [`QueryCost`]; the façade converts cost to simulated time via
//! the latency model and records it in the metrics, mirroring how the
//! paper "added 5ms as the network latency for each network query"
//! (§V-B).

use crate::messages::{HEADER_BYTES, OBJECT_ID_BYTES, TIME_BYTES};
use crate::store::Link;
use crate::world::NetWorld;
use ids::Prefix;
use moods::{ObjectId, Path, SiteId, Visit};
use simnet::SimTime;

/// Bytes of one query/traversal message (header + object id + time +
/// small opcode).
pub const QUERY_MSG_BYTES: usize = HEADER_BYTES + OBJECT_ID_BYTES + TIME_BYTES + 4;

/// Who ultimately answered the discovery phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnswerSource {
    /// The querying node held IOP records itself.
    Local,
    /// A node on the routing path answered before the gateway (§IV-B).
    Intermediate(SiteId),
    /// The gateway's index answered.
    Gateway(SiteId),
    /// No node knows the object.
    NotFound,
    /// The querying node's locate-answer cache answered without a
    /// discovery phase (DESIGN.md §15). Only produced when the network
    /// was built with `Builder::locate_cache`.
    Cached,
}

/// Message/hop accounting for one query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Messages exchanged.
    pub messages: u64,
    /// Overlay hops traversed (= messages here: queries step node to
    /// node).
    pub hops: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Deterministic WAN wire time (µs) the query spent crossing the
    /// topology, **base matrix only** — queries never draw jitter, so
    /// the query path stays RNG-free. Zero without a topology.
    pub wan_us: u64,
    /// Messages whose endpoints sat in different regions. Zero without
    /// a topology.
    pub cross_msgs: u64,
}

impl QueryCost {
    fn step(&mut self, n: u64) {
        self.messages += n;
        self.hops += n;
        self.bytes += n * QUERY_MSG_BYTES as u64;
    }

    /// Charge the topology's deterministic wire cost for one
    /// query-sized message `from -> to`. No-op without a topology —
    /// pre-geo builds stay byte-identical.
    fn wire(&mut self, world: &NetWorld, from: SiteId, to: SiteId) {
        let Some(t) = world.geo.as_ref() else { return };
        let (a, b) = (t.region_of(from.0 as usize), t.region_of(to.0 as usize));
        self.wan_us += t.wire_us(a, b, QUERY_MSG_BYTES);
        if a != b {
            self.cross_msgs += 1;
        }
    }
}

/// Full statistics the façade returns with each answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryStats {
    /// Simulated wall-clock the query took (latency model applied).
    pub time: SimTime,
    /// Messages exchanged.
    pub messages: u64,
    /// Overlay hops.
    pub hops: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// WAN wire time included in `time` (zero without a topology).
    pub wan: SimTime,
    /// Messages that crossed a region boundary (zero without a
    /// topology).
    pub cross_msgs: u64,
    /// Who answered the discovery phase.
    pub source: AnswerSource,
    /// False when IOP traversal hit missing data (e.g. a departed site)
    /// and the answer may be truncated.
    pub complete: bool,
}

/// Discovery anchor: where traversal starts.
enum Anchor {
    /// A site that holds IOP records for the object (local/intermediate).
    Record(SiteId),
    /// The gateway's latest-state link.
    Latest(Link),
}

struct Discovery {
    anchor: Option<Anchor>,
    source: AnswerSource,
}

/// Phase 1: find an anchor for `object`, starting at `from`.
fn discover(world: &NetWorld, from: SiteId, object: ObjectId, cost: &mut QueryCost) -> Discovery {
    // Local repository?
    if world.sites[from.0 as usize].iop.knows(object) {
        return Discovery { anchor: Some(Anchor::Record(from)), source: AnswerSource::Local };
    }

    // Route towards the gateway, checking intermediate nodes.
    let key = world.gateway_key(object);
    let from_chord = world.sites[from.0 as usize].chord_id;
    let r = world.ring.lookup(from_chord, key).expect("overlay lookup failed");
    let mut prev = from;
    for nid in r.path.iter().skip(1) {
        cost.step(1);
        let idx = world.ring.app_index_of(nid).expect("path nodes are members");
        let site = world.sites[idx].site;
        cost.wire(world, prev, site);
        prev = site;
        if *nid != r.owner && world.sites[idx].iop.knows(object) {
            return Discovery {
                anchor: Some(Anchor::Record(site)),
                source: AnswerSource::Intermediate(site),
            };
        }
        if *nid == r.owner {
            // Gateway reached: run the §IV-A.3 lookup.
            if let Some(link) = gateway_lookup(world, idx, object, cost) {
                return Discovery {
                    anchor: Some(Anchor::Latest(link)),
                    source: AnswerSource::Gateway(site),
                };
            }
            return Discovery { anchor: None, source: AnswerSource::NotFound };
        }
    }
    // Path was just the origin: origin owns the key.
    let idx = world.ring.app_index_of(&r.owner).expect("owner is a member");
    if let Some(link) = gateway_lookup(world, idx, object, cost) {
        Discovery {
            anchor: Some(Anchor::Latest(link)),
            source: AnswerSource::Gateway(world.sites[idx].site),
        }
    } else {
        Discovery { anchor: None, source: AnswerSource::NotFound }
    }
}

/// §IV-A.3: check the current-`Lp` shard at the gateway, then search the
/// triangle children (delegated records) and hosted ancestors
/// (pre-split history). "To look up an object which does not exist
/// locally, we only need to ask the parent and its two children."
fn gateway_lookup(
    world: &NetWorld,
    gw_idx: usize,
    object: ObjectId,
    cost: &mut QueryCost,
) -> Option<Link> {
    // Individual mode: single per-object map.
    if world.group_config().is_none() {
        return world.sites[gw_idx].gateway.objects.get(&object).map(|e| e.link());
    }

    let lp = world.current_lp;
    let p = Prefix::of_id(&object.id(), lp);
    if let Some(e) = world.sites[gw_idx].gateway.prefixes.get(&p).and_then(|s| s.get(&object)) {
        return Some(e.link());
    }

    // Bidirectional linear search. Descend first (delegation is the
    // common cause of a miss), then ascend to Lmin.
    let l_min = world.group_config().map(|g| g.l_min).unwrap_or(0);
    let gw_site = world.sites[gw_idx].site;

    // Descent through hosted child prefixes the object can live under.
    let mut stack = vec![p];
    while let Some(cur) = stack.pop() {
        if cur.len() >= ids::prefix::MAX_PREFIX_BITS {
            continue;
        }
        let child = cur.child(object.id().bit(cur.len()));
        if !world.is_hosted(&child) {
            continue;
        }
        let (owner, hops) = world.route(gw_site, child.gateway_id());
        cost.messages += 1;
        cost.hops += hops as u64;
        cost.bytes += QUERY_MSG_BYTES as u64;
        cost.wire(world, gw_site, world.sites[owner].site);
        if let Some(e) =
            world.sites[owner].gateway.prefixes.get(&child).and_then(|s| s.get(&object))
        {
            return Some(e.link());
        }
        stack.push(child);
    }

    // Ascent towards Lmin.
    let mut l = p.len();
    while l > l_min {
        l -= 1;
        let anc = p.truncate(l);
        if !world.is_hosted(&anc) {
            continue;
        }
        let (owner, hops) = world.route(gw_site, anc.gateway_id());
        cost.messages += 1;
        cost.hops += hops as u64;
        cost.bytes += QUERY_MSG_BYTES as u64;
        cost.wire(world, gw_site, world.sites[owner].site);
        if let Some(e) =
            world.sites[owner].gateway.prefixes.get(&anc).and_then(|s| s.get(&object))
        {
            return Some(e.link());
        }
    }
    None
}

/// Read a visit record, paying one message if `site` differs from
/// `at_site` (the node currently holding the query).
fn fetch_record(
    world: &NetWorld,
    current: &mut SiteId,
    target: Link,
    object: ObjectId,
    cost: &mut QueryCost,
) -> Option<crate::store::IopRecord> {
    if *current != target.site {
        cost.step(1);
        cost.wire(world, *current, target.site);
        *current = target.site;
    }
    let state = &world.sites[target.site.0 as usize];
    if !state.alive {
        // The organization is gone. With replication the record
        // survives on the dead site's successors — probe the live
        // holders of its repository copies, one message each. Without
        // replication no site holds a copy, the loop body never runs,
        // and this is exactly the seed's unreachable-segment outcome
        // (§I: sovereignty — the repository departed with its owner).
        for holder in world.sites.iter().filter(|h| h.alive) {
            let Some(copy) = holder.replica_iop.get(&target.site) else {
                continue;
            };
            cost.step(1);
            cost.wire(world, *current, holder.site);
            if let Some(rec) = copy.record_at(object, target.time) {
                *current = holder.site;
                return Some(*rec);
            }
        }
        return None;
    }
    state.iop.record_at(object, target.time).copied()
}

/// Walk the IOP list backward from `link` until the visit covering
/// `t`, with the query currently held at `current`. Returns the answer
/// and whether the traversal stayed complete.
fn walk_back_from(
    world: &NetWorld,
    current: &mut SiteId,
    link: Link,
    object: ObjectId,
    t: SimTime,
    cost: &mut QueryCost,
) -> (Option<SiteId>, bool) {
    let mut cur = link;
    loop {
        let Some(rec) = fetch_record(world, current, cur, object, cost) else {
            return (None, false);
        };
        if cur.time <= t {
            return (Some(cur.site), true);
        }
        match rec.from {
            None => return (None, true), // not yet in system at t
            Some(prev) => {
                if prev.time <= t {
                    return (Some(prev.site), true);
                }
                cur = prev;
            }
        }
    }
}

/// Pure `L(o, t)` (Eq. 1) with cost accounting.
pub(crate) fn locate_raw(
    world: &NetWorld,
    from: SiteId,
    object: ObjectId,
    t: SimTime,
) -> (Option<SiteId>, QueryCost, AnswerSource, bool) {
    let (ans, cost, source, complete, _) = locate_inner(world, from, object, t);
    (ans, cost, source, complete)
}

/// `L(o, t)` through the read-scaling layer (DESIGN.md §15): consult
/// the origin's locate-answer cache when one is configured, fall back
/// to full discovery, fill the cache from gateway answers, and count
/// per-node served-query load. With `Config.locate_cache == None` the
/// query dispatch is exactly [`locate_raw`] — same lookups, same costs
/// — plus pure counter updates that touch no RNG or metrics.
pub(crate) fn locate(
    world: &mut NetWorld,
    from: SiteId,
    object: ObjectId,
    t: SimTime,
) -> (Option<SiteId>, QueryCost, AnswerSource, bool) {
    let enabled = world.config.locate_cache.is_some();
    if enabled {
        let epoch = world.epochs.of(object);
        let idx = from.0 as usize;
        let hit = world.sites[idx]
            .locate_cache
            .as_mut()
            .expect("enabled implies allocated")
            .get(object, epoch);
        if let Some(link) = hit {
            world.sites[idx].query_load += 1;
            if t >= link.time {
                // The cached link *is* the latest state: answer free.
                return (Some(link.site), QueryCost::default(), AnswerSource::Cached, true);
            }
            // Historical query: the live cached link is a valid walk
            // anchor — discovery is skipped, only the IOP walk is paid.
            let mut cost = QueryCost::default();
            let mut current = from;
            let (ans, complete) =
                walk_back_from(world, &mut current, link, object, t, &mut cost);
            return (ans, cost, AnswerSource::Cached, complete);
        }
    }
    let (ans, cost, source, complete, latest) = locate_inner(world, from, object, t);
    match source {
        AnswerSource::Local => world.sites[from.0 as usize].query_load += 1,
        AnswerSource::Intermediate(s) | AnswerSource::Gateway(s) => {
            world.sites[s.0 as usize].query_load += 1;
        }
        AnswerSource::NotFound => {}
        AnswerSource::Cached => unreachable!("discovery never answers from cache"),
    }
    if enabled {
        if let Some(link) = latest {
            // Only gateway answers fill the cache: the latest link is
            // the authoritative state the epoch guards.
            let epoch = world.epochs.of(object);
            world.sites[from.0 as usize]
                .locate_cache
                .as_mut()
                .expect("enabled implies allocated")
                .insert(object, epoch, link);
        }
    }
    (ans, cost, source, complete)
}

/// [`locate_raw`] plus the gateway's latest link when discovery reached
/// the index — the value the locate cache stores.
fn locate_inner(
    world: &NetWorld,
    from: SiteId,
    object: ObjectId,
    t: SimTime,
) -> (Option<SiteId>, QueryCost, AnswerSource, bool, Option<Link>) {
    let mut cost = QueryCost::default();
    let d = discover(world, from, object, &mut cost);
    let Some(anchor) = d.anchor else {
        return (None, cost, d.source, true, None);
    };

    let mut current = match d.source {
        AnswerSource::Local => from,
        AnswerSource::Intermediate(s) => s,
        AnswerSource::Gateway(s) => s,
        AnswerSource::NotFound | AnswerSource::Cached => {
            unreachable!("anchor implies a discovery answer")
        }
    };

    match anchor {
        Anchor::Latest(link) => {
            if t >= link.time {
                // The index *is* the latest state: answer immediately.
                return (Some(link.site), cost, d.source, true, Some(link));
            }
            // Walk backward through the IOP list.
            let (ans, complete) =
                walk_back_from(world, &mut current, link, object, t, &mut cost);
            (ans, cost, d.source, complete, Some(link))
        }
        Anchor::Record(site) => {
            let store = &world.sites[site.0 as usize].iop;
            if let Some(rec) = store.latest_at_or_before(object, t) {
                // The object was here at or before t; is it still the
                // relevant visit, or did it move on before t?
                match rec.to {
                    None => return (Some(site), cost, d.source, true, None),
                    Some(next) if t < next.time => {
                        return (Some(site), cost, d.source, true, None)
                    }
                    Some(next) => {
                        // Walk forward until the visit covering t.
                        let mut cur = next;
                        loop {
                            let Some(r) =
                                fetch_record(world, &mut current, cur, object, &mut cost)
                            else {
                                return (None, cost, d.source, false, None);
                            };
                            match r.to {
                                None => return (Some(cur.site), cost, d.source, true, None),
                                Some(nn) if t < nn.time => {
                                    return (Some(cur.site), cost, d.source, true, None)
                                }
                                Some(nn) => cur = nn,
                            }
                        }
                    }
                }
            }
            // All local records are later than t: walk backward from the
            // earliest local record.
            let first = store.all(object).first().copied().expect("knows(object)");
            match first.from {
                None => (None, cost, d.source, true, None),
                Some(prev) => {
                    let mut cur = prev;
                    loop {
                        if cur.time <= t {
                            return (Some(cur.site), cost, d.source, true, None);
                        }
                        let Some(rec) = fetch_record(world, &mut current, cur, object, &mut cost)
                        else {
                            return (None, cost, d.source, false, None);
                        };
                        match rec.from {
                            None => return (None, cost, d.source, true, None),
                            Some(p) => cur = p,
                        }
                    }
                }
            }
        }
    }
}

/// Pure `TR(o, t_start, t_end)` (Eq. 2) with cost accounting.
pub(crate) fn trace_raw(
    world: &NetWorld,
    from: SiteId,
    object: ObjectId,
    t0: SimTime,
    t1: SimTime,
) -> (Path, QueryCost, AnswerSource, bool) {
    let mut cost = QueryCost::default();
    if t0 > t1 {
        return (Vec::new(), cost, AnswerSource::NotFound, true);
    }
    let d = discover(world, from, object, &mut cost);
    let Some(anchor) = d.anchor else {
        return (Vec::new(), cost, d.source, true);
    };

    let mut current = match d.source {
        AnswerSource::Local => from,
        AnswerSource::Intermediate(s) => s,
        AnswerSource::Gateway(s) => s,
        AnswerSource::NotFound | AnswerSource::Cached => {
            unreachable!("anchor implies a discovery answer")
        }
    };
    let mut complete = true;

    // Find the anchor visit: for a gateway anchor it is the latest
    // visit; for a record anchor, the site's latest local record.
    let start = match anchor {
        Anchor::Latest(link) => link,
        Anchor::Record(site) => {
            let rec = world.sites[site.0 as usize]
                .iop
                .latest(object)
                .expect("record anchor implies knowledge");
            Link { site, time: rec.arrived }
        }
    };

    // Phase A: walk forward from the anchor, collecting visits, until
    // the last visit that can overlap the window (arrivals beyond t1
    // cannot). Remember the anchor's back link for phase B.
    let mut after: Vec<Visit> = Vec::new();
    let mut anchor_from: Option<Link> = None;
    let mut cur = start;
    loop {
        let Some(rec) = fetch_record(world, &mut current, cur, object, &mut cost) else {
            complete = false;
            break;
        };
        if cur == start {
            anchor_from = rec.from;
        }
        after.push(Visit { site: cur.site, arrived: cur.time, departed: rec.to.map(|x| x.time) });
        match rec.to {
            Some(next) if next.time <= t1 => cur = next,
            _ => break,
        }
    }

    // Phase B: walk backward from the anchor until the window's lower
    // edge is passed.
    let mut before: Vec<Visit> = Vec::new();
    if start.time > t0 {
        let mut back = anchor_from;
        while let Some(l) = back {
            let Some(rec) = fetch_record(world, &mut current, l, object, &mut cost) else {
                complete = false;
                break;
            };
            before.push(Visit {
                site: l.site,
                arrived: l.time,
                departed: rec.to.map(|x| x.time),
            });
            if l.time <= t0 {
                break;
            }
            back = rec.from;
        }
    }

    before.reverse();
    before.extend(after);
    let path: Path = before.into_iter().filter(|v| v.overlaps(t0, t1)).collect();
    (path, cost, d.source, complete)
}
