//! In-tree byte buffers for the wire codec.
//!
//! Replaces the `bytes` crate with the two shapes [`crate::codec`]
//! actually needs: [`ByteBuf`], a growable big-endian writer, and
//! [`Bytes`], an immutable byte string with a read cursor. Keeping
//! these in-tree keeps the build hermetic (DESIGN.md's from-scratch
//! rule) and pins the on-wire byte order in one audited place.

/// Growable write buffer; all multi-byte integers are big-endian
/// (network order), matching the codec's on-wire layout.
#[derive(Clone, Debug, Default)]
pub struct ByteBuf {
    data: Vec<u8>,
}

impl ByteBuf {
    /// An empty buffer.
    pub fn new() -> ByteBuf {
        ByteBuf::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> ByteBuf {
        ByteBuf { data: Vec::with_capacity(capacity) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Append a `u32`, big-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a `u64`, big-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a byte slice verbatim.
    pub fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Append `count` copies of `val`.
    pub fn put_bytes(&mut self, val: u8, count: usize) {
        self.data.resize(self.data.len() + count, val);
    }

    /// Finish writing; the result reads from the start.
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

/// An immutable byte string with a read cursor.
///
/// `get_*`/[`advance`](Bytes::advance) consume from the front;
/// [`len`](Bytes::len), equality and `Debug` all view the *remaining*
/// (unread) bytes, so a freshly frozen buffer behaves like a plain
/// byte string.
#[derive(Clone)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wrap a static byte string.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes { data: data.to_vec(), pos: 0 }
    }

    /// Remaining (unread) byte count.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` if fully consumed (or empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remaining bytes, as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Synonym of [`len`](Bytes::len), matching the reader idiom.
    pub fn remaining(&self) -> usize {
        self.len()
    }

    /// A copy of the first `range.end` remaining bytes, as a fresh
    /// unread `Bytes` (used by truncation tests).
    pub fn slice(&self, range: std::ops::RangeTo<usize>) -> Bytes {
        Bytes { data: self.as_slice()[range].to_vec(), pos: 0 }
    }

    /// Consume one byte. Panics if empty (callers bounds-check via
    /// [`remaining`](Bytes::remaining) first).
    pub fn get_u8(&mut self) -> u8 {
        let v = self.data[self.pos];
        self.pos += 1;
        v
    }

    /// Consume a big-endian `u32`.
    pub fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Consume a big-endian `u64`.
    pub fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Skip `n` bytes.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.pos += n;
    }

    /// Consume `dest.len()` bytes into `dest`.
    pub fn copy_to_slice(&mut self, dest: &mut [u8]) {
        assert!(dest.len() <= self.len(), "copy past end of buffer");
        dest.copy_from_slice(&self.data[self.pos..self.pos + dest.len()]);
        self.pos += dest.len();
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:02x?})", self.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_roundtrips_through_reader() {
        let mut w = ByteBuf::with_capacity(32);
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_slice(&[1, 2, 3]);
        w.put_bytes(0, 4);
        assert_eq!(w.len(), 1 + 4 + 8 + 3 + 4);
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        let mut three = [0u8; 3];
        r.copy_to_slice(&mut three);
        assert_eq!(three, [1, 2, 3]);
        r.advance(4);
        assert!(r.is_empty());
    }

    #[test]
    fn integers_are_big_endian_on_the_wire() {
        let mut w = ByteBuf::new();
        w.put_u32(1);
        assert_eq!(w.freeze().as_slice(), &[0, 0, 0, 1]);
    }

    #[test]
    fn len_and_eq_track_remaining_bytes() {
        let mut a = Bytes::from(vec![9, 8, 7]);
        let b = Bytes::from(vec![8, 7]);
        assert_ne!(a, b);
        a.get_u8();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn slice_copies_remaining_prefix() {
        let full = Bytes::from(vec![1, 2, 3, 4, 5]);
        let cut = full.slice(..3);
        assert_eq!(cut.as_slice(), &[1, 2, 3]);
        // Original is untouched.
        assert_eq!(full.len(), 5);
    }

    #[test]
    #[should_panic(expected = "copy past end")]
    fn over_read_panics() {
        let mut r = Bytes::from(vec![1]);
        let mut two = [0u8; 2];
        r.copy_to_slice(&mut two);
    }
}
