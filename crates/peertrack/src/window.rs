//! Adaptive capture windows (§IV-A.1, "Group Generation").
//!
//! Each node takes "the objects in the same window for grouping and
//! indexing at one cycle". A fixed `Tinterval` misbehaves under bursty
//! streams, so the paper adapts: a cycle ends when **either** `Tmax` has
//! passed since the cycle opened **or** the cycle has received `Nmax`
//! objects — whichever comes first. [`WindowBuffer`] implements that
//! state machine; the runtime arms/cancels the `Tmax` timer from the
//! [`WindowEvent`]s it returns.

use moods::{ObjectId, SiteId};
use simnet::SimTime;

/// A flushed window: the observations of one indexing cycle at one site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowBatch {
    /// The capturing site.
    pub site: SiteId,
    /// `(object, capture time)` in arrival order.
    pub observations: Vec<(ObjectId, SimTime)>,
    /// When the cycle opened.
    pub opened: SimTime,
    /// When the cycle closed (flush time).
    pub closed: SimTime,
}

/// What the caller must do after feeding an observation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WindowEvent {
    /// First object of a fresh cycle: arm a `Tmax` timer for this site.
    ArmTimer,
    /// Cycle is still filling; nothing to do.
    Buffered,
    /// `Nmax` reached: cancel the pending timer and index this batch now.
    FlushByCount(WindowBatch),
}

/// Per-site window state.
#[derive(Clone, Debug)]
pub struct WindowBuffer {
    site: SiteId,
    n_max: usize,
    buf: Vec<(ObjectId, SimTime)>,
    opened: SimTime,
}

impl WindowBuffer {
    /// Fresh, empty buffer for `site` flushing at `n_max` objects.
    pub fn new(site: SiteId, n_max: usize) -> WindowBuffer {
        assert!(n_max > 0, "n_max must be positive");
        WindowBuffer { site, n_max, buf: Vec::new(), opened: SimTime::ZERO }
    }

    /// Number of buffered observations in the open cycle.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the current cycle empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The buffered observations of the open cycle, in arrival order
    /// (state snapshots).
    pub fn observations(&self) -> &[(ObjectId, SimTime)] {
        &self.buf
    }

    /// When the open cycle started (meaningful only when non-empty).
    pub fn opened(&self) -> SimTime {
        self.opened
    }

    /// Reconstruct a buffer mid-cycle (state recovery — the inverse of
    /// [`WindowBuffer::observations`]/[`WindowBuffer::opened`]). The
    /// restored buffer must be strictly below the flush threshold: a
    /// full window would already have flushed before it was captured.
    pub fn restore(
        site: SiteId,
        n_max: usize,
        observations: Vec<(ObjectId, SimTime)>,
        opened: SimTime,
    ) -> WindowBuffer {
        assert!(n_max > 0, "n_max must be positive");
        assert!(observations.len() < n_max, "restored window would already have flushed");
        WindowBuffer { site, n_max, buf: observations, opened }
    }

    /// Feed one capture. Returns the action the runtime must take.
    pub fn push(&mut self, object: ObjectId, now: SimTime) -> WindowEvent {
        let first = self.buf.is_empty();
        if first {
            self.opened = now;
        }
        self.buf.push((object, now));
        if self.buf.len() >= self.n_max {
            WindowEvent::FlushByCount(self.flush(now).expect("non-empty by construction"))
        } else if first {
            WindowEvent::ArmTimer
        } else {
            WindowEvent::Buffered
        }
    }

    /// Close the cycle (timer fired, or an orderly shutdown). `None` when
    /// the cycle is empty (e.g. the timer raced with a count flush).
    pub fn flush(&mut self, now: SimTime) -> Option<WindowBatch> {
        if self.buf.is_empty() {
            return None;
        }
        let observations = std::mem::take(&mut self.buf);
        let batch =
            WindowBatch { site: self.site, observations, opened: self.opened, closed: now };
        self.opened = now;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids::Id;
    use simnet::time::ms;

    fn obj(n: u64) -> ObjectId {
        ObjectId(Id::hash(&n.to_be_bytes()))
    }

    #[test]
    fn first_push_arms_timer() {
        let mut w = WindowBuffer::new(SiteId(0), 10);
        assert_eq!(w.push(obj(1), ms(5)), WindowEvent::ArmTimer);
        assert_eq!(w.push(obj(2), ms(6)), WindowEvent::Buffered);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn nmax_triggers_flush() {
        let mut w = WindowBuffer::new(SiteId(3), 3);
        w.push(obj(1), ms(1));
        w.push(obj(2), ms(2));
        match w.push(obj(3), ms(3)) {
            WindowEvent::FlushByCount(batch) => {
                assert_eq!(batch.site, SiteId(3));
                assert_eq!(batch.observations.len(), 3);
                assert_eq!(batch.opened, ms(1));
                assert_eq!(batch.closed, ms(3));
            }
            other => panic!("expected flush, got {other:?}"),
        }
        assert!(w.is_empty());
    }

    #[test]
    fn timer_flush_returns_batch_and_reopens() {
        let mut w = WindowBuffer::new(SiteId(0), 100);
        w.push(obj(1), ms(1));
        let b = w.flush(ms(500)).unwrap();
        assert_eq!(b.observations, vec![(obj(1), ms(1))]);
        assert!(w.flush(ms(501)).is_none(), "empty cycle yields no batch");
        // Next cycle works normally.
        assert_eq!(w.push(obj(2), ms(502)), WindowEvent::ArmTimer);
    }

    #[test]
    fn nmax_one_flushes_every_object() {
        let mut w = WindowBuffer::new(SiteId(0), 1);
        for i in 0..5 {
            match w.push(obj(i), ms(i)) {
                WindowEvent::FlushByCount(b) => assert_eq!(b.observations.len(), 1),
                other => panic!("expected immediate flush, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "n_max")]
    fn zero_nmax_rejected() {
        let _ = WindowBuffer::new(SiteId(0), 0);
    }
}
