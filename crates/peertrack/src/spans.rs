//! Span-kind registry and trace-context tags for the observability
//! layer.
//!
//! The engine's [`simnet::TraceSink`] treats span kinds as opaque
//! `u32`s; this module owns the peertrack assignments and their labels
//! so `obs` stays protocol-agnostic. Three ranges:
//!
//! * `1..16` — per-message end-to-end spans, opened at
//!   [`dispatch`](crate::world::NetWorld) and closed when the first
//!   copy of that wire sequence number is *processed* (acked +
//!   deduplicated), so the span covers loss and retransmission, not
//!   just one network traversal;
//! * `16..32` — operation spans (join/leave/`Lp` migration), closed at
//!   quiescence;
//! * `32..` — query spans; queries are synchronous, so the closing
//!   time is the latency-model cost attached to the answer.

use moods::ObjectId;
use simnet::MsgClass;

/// Group-index flush: batch dispatched → gateway processed it.
pub const MSG_GROUP_INDEX: u32 = 1;
/// IOP establishment: M2/M3 dispatched → repository updated.
pub const MSG_IOP_UPDATE: u32 = 2;
/// Individual-mode arrival report (M1).
pub const MSG_ARRIVAL: u32 = 3;
/// Triangle delegation hand-off.
pub const MSG_DELEGATE: u32 = 4;
/// Split/merge shard migration hand-off.
pub const MSG_MIGRATE: u32 = 5;
/// A node joining: ring insert → network quiescent again.
pub const OP_JOIN: u32 = 16;
/// A node leaving: departure → network quiescent again.
pub const OP_LEAVE: u32 = 17;
/// An `Lp` recomputation, including any eager split/merge migration,
/// up to quiescence.
pub const OP_LP_REFRESH: u32 = 18;
/// A `locate` (L) query.
pub const QUERY_LOCATE: u32 = 32;
/// A `trace` (TR) query.
pub const QUERY_TRACE: u32 = 33;

/// Human-readable label for a span kind (exporters).
pub fn label(kind: u32) -> &'static str {
    match kind {
        MSG_GROUP_INDEX => "group-index-flush",
        MSG_IOP_UPDATE => "iop-establish",
        MSG_ARRIVAL => "arrival-report",
        MSG_DELEGATE => "delegate",
        MSG_MIGRATE => "migrate",
        OP_JOIN => "join",
        OP_LEAVE => "leave",
        OP_LP_REFRESH => "lp-refresh",
        QUERY_LOCATE => "query-locate",
        QUERY_TRACE => "query-trace",
        _ => "span",
    }
}

/// The per-message span kind for a wire class, if that class gets
/// end-to-end spans (reliability traffic and overlay upkeep do not —
/// their latency is visible through the class histograms already).
pub fn for_class(class: MsgClass) -> Option<u32> {
    match class {
        MsgClass::GroupIndex => Some(MSG_GROUP_INDEX),
        MsgClass::IopUpdate => Some(MSG_IOP_UPDATE),
        MsgClass::IndexReport => Some(MSG_ARRIVAL),
        MsgClass::Delegate => Some(MSG_DELEGATE),
        MsgClass::SplitMerge => Some(MSG_MIGRATE),
        _ => None,
    }
}

/// Trace-context tag for an object: the first eight bytes of its
/// (hashed) id. Never 0 in practice (a SHA-1 prefix of all zeroes),
/// which the trace layer reserves for "untagged".
pub fn object_tag(object: ObjectId) -> u64 {
    let b = object.id().0;
    u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::metrics::ALL_CLASSES;

    #[test]
    fn labels_are_distinct() {
        let kinds = [
            MSG_GROUP_INDEX,
            MSG_IOP_UPDATE,
            MSG_ARRIVAL,
            MSG_DELEGATE,
            MSG_MIGRATE,
            OP_JOIN,
            OP_LEAVE,
            OP_LP_REFRESH,
            QUERY_LOCATE,
            QUERY_TRACE,
        ];
        let labels: std::collections::BTreeSet<_> = kinds.iter().map(|&k| label(k)).collect();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn span_classes_are_the_protocol_payload_classes() {
        let spanned: Vec<_> =
            ALL_CLASSES.iter().filter(|c| for_class(**c).is_some()).collect();
        assert_eq!(spanned.len(), 5);
    }

    #[test]
    fn object_tags_differ() {
        let a = object_tag(ObjectId::from_raw(b"object-a"));
        let b = object_tag(ObjectId::from_raw(b"object-b"));
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
