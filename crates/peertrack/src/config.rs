//! Configuration: indexing mode and the §IV parameters.

use crate::prefix::PrefixScheme;
use simnet::SimTime;

/// How the runtime obtains `Nn` when (re)computing `Lp` (§IV-A.1:
/// "there is no precise way to calculate this value. However, there are
/// some algorithms available to estimate the value of Nn \[14\]").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeEstimation {
    /// Use the true membership count (an idealization available to the
    /// simulator; matches the paper's experiments, which configure `Lp`
    /// from the known network size).
    Exact,
    /// Run Jelasity–Montresor push-pull averaging over the live members
    /// for the given number of rounds and use the median estimate. The
    /// gossip traffic is charged to the metrics under
    /// [`simnet::MsgClass::Gossip`].
    Gossip {
        /// Averaging rounds per estimation epoch.
        rounds: u32,
    },
}

/// Parameters of the group indexing algorithm (§IV-A). Field names follow
/// the paper's symbol table (Fig. 3).
#[derive(Clone, Copy, Debug)]
pub struct GroupConfig {
    /// How `Lp` is derived from the network size (§V-C's Schemes 1–3).
    pub scheme: PrefixScheme,
    /// `Lmin` — lower bound on `Lp` so bootstrap-era networks do not
    /// degenerate to near-individual indexing (§IV-A.1).
    pub l_min: usize,
    /// `Tmax` — maximum width of a capture window; guarantees timely
    /// indexing when volume is low (§IV-A.1).
    pub t_max: SimTime,
    /// `Nmax` — maximum number of objects per window; bounds the size of
    /// one indexing message (§IV-A.1).
    pub n_max: usize,
    /// `α` — fraction of a gateway's earliest records delegated to the
    /// two triangle children when delegation triggers (Fig. 5,
    /// `update_index`). `0 < α ≤ 1`.
    pub alpha: f64,
    /// Delegation triggers when a prefix's local record count exceeds
    /// this ("whether the local storage for this prefix exceeds a certain
    /// amount"). `None` disables Data-Triangle delegation.
    pub delegate_threshold: Option<usize>,
    /// Apply the splitting-merging process eagerly when `Lp` changes
    /// (§IV-A.2). When `false`, inconsistencies are repaired lazily by
    /// `refresh_from_ascent`/`_descent` at the next indexing cycle.
    pub eager_split_merge: bool,
    /// How `Nn` is obtained when recomputing `Lp`.
    pub size_estimation: SizeEstimation,
    /// Cache gateway addresses per prefix (§IV-A.2: "The address of the
    /// parent and children can be cached to save the cost of DHT
    /// lookup"): after first contact, indexing messages to a known
    /// prefix gateway go direct (1 hop) instead of routing through the
    /// DHT. Caches are invalidated on any membership or `Lp` change.
    pub cache_gateway_addresses: bool,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            scheme: PrefixScheme::Scheme2,
            l_min: 3,
            t_max: SimTime::from_millis(500),
            n_max: 1024,
            alpha: 0.5,
            delegate_threshold: Some(4096),
            eager_split_merge: true,
            size_estimation: SizeEstimation::Exact,
            cache_gateway_addresses: false,
        }
    }
}

impl GroupConfig {
    /// Validate parameter ranges; called by the network builder.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(format!("alpha must be in (0, 1], got {}", self.alpha));
        }
        if self.n_max == 0 {
            return Err("n_max must be positive".into());
        }
        if self.t_max == SimTime::ZERO {
            return Err("t_max must be positive".into());
        }
        if self.l_min > ids::prefix::MAX_PREFIX_BITS {
            return Err(format!("l_min {} exceeds max prefix length", self.l_min));
        }
        Ok(())
    }
}

/// Which of the paper's two indexing algorithms a network runs.
#[derive(Clone, Copy, Debug)]
pub enum IndexingMode {
    /// §III: one index message plus two IOP updates per arrival.
    Individual,
    /// §IV: windowed, prefix-grouped indexing with Data Triangles.
    Group(GroupConfig),
}

impl IndexingMode {
    /// Shorthand for the default group configuration.
    pub fn group_default() -> IndexingMode {
        IndexingMode::Group(GroupConfig::default())
    }

    /// Is this the group mode?
    pub fn is_group(&self) -> bool {
        matches!(self, IndexingMode::Group(_))
    }
}

/// Timeout/retry/backoff parameters for the at-least-once delivery
/// layer. When enabled, every networked protocol message is sequenced
/// and acknowledged; unacked messages are retransmitted with exponential
/// backoff and retransmissions are charged to
/// [`simnet::MsgClass::Retrans`] (acks to [`simnet::MsgClass::Ack`]).
/// Disabled by default — the clean path stays byte-identical to a build
/// without the retry layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryConfig {
    /// Master switch. `false` sends no acks, arms no timers and adds no
    /// metrics.
    pub enabled: bool,
    /// Time to wait for an ack before the first retransmission.
    pub timeout: SimTime,
    /// Timeout multiplier per successive retransmission (1 = constant).
    pub backoff: u32,
    /// Total delivery attempts (first send included) before giving up
    /// and counting `retries_exhausted`.
    pub max_attempts: u32,
}

impl RetryConfig {
    /// The disabled configuration.
    pub fn disabled() -> RetryConfig {
        RetryConfig {
            enabled: false,
            timeout: SimTime::from_millis(200),
            backoff: 2,
            max_attempts: 6,
        }
    }

    /// Default enabled configuration: 200 ms initial timeout, doubling,
    /// six attempts.
    pub fn enabled() -> RetryConfig {
        RetryConfig { enabled: true, ..RetryConfig::disabled() }
    }

    /// Validate parameter ranges; called by the network builder.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if self.timeout == SimTime::ZERO {
            return Err("retry timeout must be positive".into());
        }
        if self.backoff == 0 {
            return Err("retry backoff must be >= 1".into());
        }
        if self.max_attempts == 0 {
            return Err("retry max_attempts must be >= 1".into());
        }
        Ok(())
    }

    /// Delay before the retransmission that makes delivery attempt
    /// number `attempt + 1` (so `attempt = 1` after the initial send):
    /// `timeout * backoff^(attempt - 1)`, saturating.
    pub fn delay_after(&self, attempt: u32) -> SimTime {
        let factor = (self.backoff as u64).saturating_pow(attempt.saturating_sub(1));
        SimTime::from_micros(self.timeout.as_micros().saturating_mul(factor))
    }
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig::disabled()
    }
}

/// K-successor replication of IOP and group-index state. With
/// `replicas = K > 1`, every key range a node owns is mirrored onto its
/// `K−1` Chord successors: writes fan out to the replica set (the
/// primary acks after its local apply), replicas converge via periodic
/// digest exchange over the canonical state encoding, reads fall back
/// to replicas when the primary is gone, and a permanent failure
/// promotes the next successor. `replicas = 1` (the default) is the
/// seed behaviour: no replica stores, no extra messages or timers, and
/// figure CSVs stay byte-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// Total copies of each key range, primary included. 1 disables
    /// replication entirely.
    pub replicas: usize,
    /// How long after a mutation the primary schedules a digest
    /// exchange with its replica set (anti-entropy). One-shot: armed by
    /// a write, re-armed by the next write after it fires.
    pub anti_entropy_period: SimTime,
}

impl ReplicationConfig {
    /// The disabled configuration (single copy, the seed behaviour).
    pub fn disabled() -> ReplicationConfig {
        ReplicationConfig { replicas: 1, anti_entropy_period: SimTime::from_millis(500) }
    }

    /// `K` total copies with the default anti-entropy period.
    pub fn with_replicas(k: usize) -> ReplicationConfig {
        ReplicationConfig { replicas: k, ..ReplicationConfig::disabled() }
    }

    /// Is replication on (more than one copy)?
    pub fn enabled(&self) -> bool {
        self.replicas > 1
    }

    /// Validate parameter ranges; called by the network builder.
    pub fn validate(&self) -> Result<(), String> {
        if self.replicas == 0 {
            return Err("replicas must be >= 1 (1 disables replication)".into());
        }
        if self.replicas > 1 && self.anti_entropy_period == SimTime::ZERO {
            return Err("anti_entropy_period must be positive".into());
        }
        Ok(())
    }
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig::disabled()
    }
}

/// How chord identifiers are assigned to sites — the gateway placement
/// policy (DESIGN.md §17).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Placement {
    /// Uniform SHA-1 identifiers: the flat ring of the paper (and of
    /// every pre-geo build). Always the default.
    #[default]
    Flat,
    /// Proximity-aware placement: each site's identifier is forced into
    /// its region's contiguous arc of the ring (`geo::clustered_id`),
    /// so K-successor replica sets and group-index flush fan-out stay
    /// same-region without any protocol change. Requires a topology
    /// (`Builder::geo`); with one region it degenerates to `Flat`'s
    /// distribution (one arc = the whole ring).
    Proximity,
}

/// Full network configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Indexing algorithm.
    pub mode: IndexingMode,
    /// RNG seed for the run (node ids, latency jitter, workload draws).
    pub seed: u64,
    /// At-least-once delivery layer (off by default).
    pub retry: RetryConfig,
    /// K-successor replication (off by default: one copy).
    pub replication: ReplicationConfig,
    /// Charge one extra `Lookup` message per ascent/descent *existence
    /// check* during refresh, instead of assuming nodes track which
    /// prefix lengths are populated from the `Lp` reconfiguration
    /// broadcasts. Off by default (the paper's cost analysis §IV-C
    /// charges only the actual fetches).
    pub count_existence_checks: bool,
    /// Per-node locate-answer cache capacity (DESIGN.md §15). `None`
    /// (the default) disables caching entirely: no caches are
    /// allocated, no epochs are tracked, and query dispatch is
    /// byte-identical to a build without the cache layer. `Some(n)`
    /// caches up to `n` answers per node, invalidated by movement-epoch
    /// mismatch and cleared wholesale on membership change.
    pub locate_cache: Option<usize>,
    /// Gateway placement policy (`Flat` is the seed behaviour; see
    /// [`Placement`]).
    pub placement: Placement,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            mode: IndexingMode::group_default(),
            seed: 0x9E3779B9,
            retry: RetryConfig::disabled(),
            replication: ReplicationConfig::disabled(),
            count_existence_checks: false,
            locate_cache: None,
            placement: Placement::Flat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_group_config_is_valid() {
        GroupConfig::default().validate().unwrap();
    }

    #[test]
    fn alpha_bounds_enforced() {
        let with_alpha = |alpha| GroupConfig { alpha, ..GroupConfig::default() };
        assert!(with_alpha(0.0).validate().is_err());
        assert!(with_alpha(1.0).validate().is_ok());
        assert!(with_alpha(1.5).validate().is_err());
    }

    #[test]
    fn zero_window_rejected() {
        let c = GroupConfig { n_max: 0, ..GroupConfig::default() };
        assert!(c.validate().is_err());
        let c = GroupConfig { t_max: SimTime::ZERO, ..GroupConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn mode_predicates() {
        assert!(IndexingMode::group_default().is_group());
        assert!(!IndexingMode::Individual.is_group());
    }

    #[test]
    fn replication_validation() {
        assert!(ReplicationConfig::disabled().validate().is_ok());
        assert!(!ReplicationConfig::disabled().enabled());
        assert!(ReplicationConfig::with_replicas(3).validate().is_ok());
        assert!(ReplicationConfig::with_replicas(3).enabled());
        assert!(ReplicationConfig::with_replicas(0).validate().is_err());
        let bad = ReplicationConfig {
            replicas: 2,
            anti_entropy_period: SimTime::ZERO,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn retry_validation_and_backoff_schedule() {
        assert!(RetryConfig::disabled().validate().is_ok());
        assert!(RetryConfig::enabled().validate().is_ok());
        let bad = RetryConfig { max_attempts: 0, ..RetryConfig::enabled() };
        assert!(bad.validate().is_err());
        let bad = RetryConfig { timeout: SimTime::ZERO, ..RetryConfig::enabled() };
        assert!(bad.validate().is_err());

        let r = RetryConfig {
            enabled: true,
            timeout: SimTime::from_millis(100),
            backoff: 2,
            max_attempts: 4,
        };
        assert_eq!(r.delay_after(1), SimTime::from_millis(100));
        assert_eq!(r.delay_after(2), SimTime::from_millis(200));
        assert_eq!(r.delay_after(3), SimTime::from_millis(400));
        // Constant-backoff variant.
        let c = RetryConfig { backoff: 1, ..r };
        assert_eq!(c.delay_after(3), SimTime::from_millis(100));
    }
}
