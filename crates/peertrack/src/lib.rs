//! **PeerTrack** — P2P object tracking in the Internet of Things.
//!
//! This crate is the paper's primary contribution (§III–§IV): a pure
//! peer-to-peer layer that lets independent organizations share
//! traceability data without a central warehouse.
//!
//! # How it works
//!
//! * Every object's **latest state is indexed at a deterministic gateway
//!   node**, found by a DHT lookup of the object's (hashed) id. Gateway
//!   nodes are "randomly chosen in an anonymous way", so no participant
//!   learns more than its own observations plus the index shards the
//!   hash function assigns it (§III).
//! * On every movement the gateway sends two updates — to the source and
//!   to the destination of the move — threading the **IOP** (Information
//!   of Object Path), "essentially a distributed double linked list
//!   sorted by time" across the nodes the object visited (§III).
//! * Because supply-chain volumes are huge and objects move in groups,
//!   the **group indexing** scheme (§IV) windows arrivals (`Tmax`,
//!   `Nmax`), groups them by the `Lp`-bit prefix of their hashed ids and
//!   indexes whole groups with one message; `Lp ≈ log₂(Nn·log₂ Nn)`
//!   (Eq. 6) keeps every node busy without exploding the group count.
//! * **Data Triangles** (§IV-A.2) — a parent prefix plus its two child
//!   prefixes — absorb changes of `Lp` and re-balance hot gateways by
//!   delegating the earliest `α·count` records to the children.
//!
//! # Entry point
//!
//! [`TraceableNetwork`] is the façade: build one with
//! [`TraceableNetwork::builder`], feed it receptor captures, drain the
//! indexing traffic, and ask MOODS queries ([`TraceableNetwork::locate`]
//! / [`TraceableNetwork::trace`]) with full message/latency accounting.
//!
//! ```
//! use peertrack::{Builder, IndexingMode};
//! use moods::{ObjectId, SiteId};
//! use simnet::time::ms;
//!
//! let mut net = Builder::new().sites(8).seed(7).build();
//! let o = ObjectId::from_raw(b"urn:epc:id:sgtin:0614141.812345.6789");
//! net.capture(SiteId(0), &[o]);
//! net.run_until(ms(10_000));
//! net.capture(SiteId(3), &[o]);
//! net.run_until_quiescent();
//! let (loc, _stats) = net.locate(SiteId(5), o, net.now());
//! assert_eq!(loc, Some(SiteId(3)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytebuf;
pub mod codec;
pub mod config;
pub mod estimator;
pub mod flat;
pub mod grouping;
pub mod messages;
pub mod net;
pub mod prefix;
pub mod query;
pub mod spans;
pub mod store;
pub mod triangle;
pub mod window;
pub mod world;

pub use config::{Config, GroupConfig, IndexingMode, Placement};
pub use flat::{run_flat, FlatConfig, FlatReport};
pub use net::{Builder, TraceableNetwork};
pub use prefix::PrefixScheme;
pub use query::QueryStats;
pub use store::{GatewayStore, IndexEntry, IopRecord, IopStore, Link, PrefixIndex};
