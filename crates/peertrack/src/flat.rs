//! Million-scale flat-arena tracking world for the sharded executor.
//!
//! [`crate::world::NetWorld`] models every paper mechanism (grouping,
//! triangles, replication, refresh) and is the fidelity reference — but
//! its nested per-site maps and single global event queue cap it far
//! below the ROADMAP's 10⁶-node / 10⁷-object target. This module is the
//! scale path: the same *core* protocol — capture → M1 index report →
//! M2/M3 IOP threading → locate — on data structures built for volume:
//!
//! * **no hash maps on the hot path** — object ids are dense `u32`s,
//!   gateway placement and per-object slots are precomputed flat
//!   tables, and visit records live in one append-only slab per shard;
//! * **record handles instead of keyed lookups** — a capture ships the
//!   slab index of its fresh record inside M1, the gateway remembers it
//!   in the object's entry, and the M2 it emits on the next move
//!   carries that handle back, so filling `o.to` is a direct
//!   `records[rec]` write at the previous site — O(1), no search;
//! * **deterministic workload by construction** — capture schedules,
//!   movement traces and locate probes are all pure hash functions of
//!   `(seed, object)`, so the expected final location of every object
//!   is computable without any shared mutable state, and every locate
//!   answer is checked against that oracle.
//!
//! Everything is a pure function of the seed and the geometry; combined
//! with the sharded executor's guarantees, a run's [`FlatReport`] is
//! byte-identical for every thread count.

use simnet::metrics::MsgClass;
use simnet::shard::{run_sharded, ShardConfig, ShardCtx, ShardWorld};
use simnet::time::SimTime;
use simnet::Metrics;
use std::sync::Arc;

/// Sentinel for "no site / no time / no record".
const NONE: u32 = u32::MAX;

/// Modeled wire sizes (bytes) per message, constants of the model.
const ARRIVAL_BYTES: usize = 38;
const SET_TO_BYTES: usize = 34;
const SET_FROM_BYTES: usize = 34;
const LOCATE_BYTES: usize = 28;
const REPLY_BYTES: usize = 32;

/// Per-hop latency in microseconds, the paper's 5 ms T1 figure — also
/// the barrier window, so every ≥ 1-hop message satisfies the
/// cross-shard contract.
const HOP_US: u64 = 5_000;

/// Delay for an `hops`-hop message.
fn hop_delay(hops: u32) -> SimTime {
    SimTime::from_micros(hops as u64 * HOP_US)
}

/// Geometry and workload of a flat-world run.
#[derive(Clone, Copy, Debug)]
pub struct FlatConfig {
    /// Sites in the overlay.
    pub nodes: u32,
    /// Tracked objects.
    pub objects: u32,
    /// Fraction of objects that move after their first capture.
    pub move_frac: f64,
    /// Moves per moving object (10-step traces in the paper's sweeps).
    pub moves: u32,
    /// Oracle-checked locate probes issued after the workload quiesces.
    pub locates: u32,
    /// Shards (fixed per run — results depend on it, threads don't).
    pub shards: usize,
    /// Worker threads (wall-clock knob only).
    pub threads: usize,
    /// RNG seed for placement, traces and probe choice.
    pub seed: u64,
    /// First captures are spread uniformly over `[0, spread)`.
    pub spread: SimTime,
    /// Gap between one object's successive captures. Must exceed the
    /// worst-case M1 latency so index updates arrive in order (checked
    /// at build time).
    pub move_gap: SimTime,
}

impl Default for FlatConfig {
    fn default() -> Self {
        FlatConfig {
            nodes: 1_024,
            objects: 8_192,
            move_frac: 0.1,
            moves: 10,
            locates: 256,
            shards: 8,
            threads: 1,
            seed: 0xC0FFEE,
            spread: SimTime::from_secs(60),
            move_gap: SimTime::from_secs(1),
        }
    }
}

/// SplitMix64 — the deterministic hash behind every workload choice.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Immutable run specification shared by all shards (read-only tables).
struct Spec {
    nodes: u32,
    movers: u32,
    moves: u32,
    seed: u64,
    spread_us: u64,
    gap_us: u64,
    /// Modeled DHT lookup length: `max(1, log₂(N)/2)` hops.
    lookup_hops: u32,
    /// Object → gateway site (successor of the object's ring key).
    obj_gateway: Vec<u32>,
    /// Object → dense slot within the gateway shard's entry arena.
    obj_slot: Vec<u32>,
}

impl Spec {
    /// How many captures object `o` generates (first + its moves).
    fn steps(&self, o: u32) -> u32 {
        if o < self.movers {
            1 + self.moves
        } else {
            1
        }
    }

    /// The site of object `o`'s `k`-th capture.
    fn step_site(&self, o: u32, k: u32) -> u32 {
        (mix(self.seed ^ 0x5174_E000 ^ ((o as u64) << 20) ^ k as u64) % self.nodes as u64) as u32
    }

    /// The object's final (expected) location — the locate oracle.
    fn final_site(&self, o: u32) -> u32 {
        self.step_site(o, self.steps(o) - 1)
    }

    /// Absolute time (µs) of object `o`'s `k`-th capture.
    fn step_time(&self, o: u32, k: u32) -> u64 {
        let t0 = mix(self.seed ^ 0x7133_0000 ^ o as u64) % self.spread_us;
        t0 + k as u64 * self.gap_us
    }
}

/// One pending capture at a shard (site recomputed from the spec).
struct CapEv {
    time: u32,
    object: u32,
    step: u32,
}

/// One pending locate probe issued from a shard-local origin site.
struct LocEv {
    time: u32,
    object: u32,
    origin: u32,
}

/// One visit record in a shard's slab. `u32` microsecond times keep the
/// record at 24 bytes; the run horizon is asserted to fit.
#[derive(Clone, Copy)]
struct FlatRec {
    object: u32,
    arrived: u32,
    from_site: u32,
    from_time: u32,
    to_site: u32,
    to_time: u32,
}

/// A gateway's entry for one object: latest site/time plus the record
/// handle M2 needs on the next move. 12 bytes.
#[derive(Clone, Copy)]
struct FlatEntry {
    site: u32,
    time: u32,
    rec: u32,
}

/// Protocol messages. `rec` fields are slab handles local to the
/// destination site's shard — the arena trick that makes M2/M3 O(1).
pub enum FlatMsg {
    /// M1: capture report to the gateway.
    Arrival {
        /// Dense object id.
        object: u32,
        /// Capturing site.
        site: u32,
        /// Arrival time (µs).
        time: u32,
        /// Slab handle of the fresh record at `site`.
        rec: u32,
    },
    /// M2: fill `o.to` of the previous site's record.
    SetTo {
        /// Slab handle at the destination shard.
        rec: u32,
        /// Where the object went.
        to_site: u32,
        /// When it arrived there (µs).
        to_time: u32,
    },
    /// M3: fill `o.from` of the new site's record (`NONE` = first visit).
    SetFrom {
        /// Slab handle at the destination shard.
        rec: u32,
        /// Where the object came from (`NONE` for a first appearance).
        from_site: u32,
        /// When it arrived there (µs, `NONE` with `from_site == NONE`).
        from_time: u32,
    },
    /// Locate request to the gateway.
    Locate {
        /// Dense object id.
        object: u32,
        /// Site awaiting the answer.
        origin: u32,
    },
    /// Locate answer back to the origin.
    Reply {
        /// Dense object id.
        object: u32,
        /// The gateway's latest known site (`NONE` if never indexed).
        site: u32,
    },
}

/// Timer tags.
const TAG_CAP: u64 = 0;
const TAG_LOC: u64 = 1;

/// Cap on retained violation strings per shard (counters keep exact
/// totals; the strings are for diagnostics).
const MAX_VIOLATION_STRINGS: usize = 20;

/// Per-shard world state: workload cursors, record slab, entry arena.
pub struct FlatWorld {
    spec: Arc<Spec>,
    captures: Vec<CapEv>,
    cap_cursor: usize,
    locates: Vec<LocEv>,
    loc_cursor: usize,
    records: Vec<FlatRec>,
    entries: Vec<FlatEntry>,
    out_of_order: u64,
    locates_ok: u64,
    locates_bad: u64,
    violations: Vec<String>,
}

impl FlatWorld {
    fn violation(&mut self, s: String) {
        if self.violations.len() < MAX_VIOLATION_STRINGS {
            self.violations.push(s);
        }
    }

    fn do_capture(&mut self, ctx: &mut ShardCtx<'_, FlatMsg>, object: u32, step: u32) {
        let site = self.spec.step_site(object, step);
        let now = ctx.now().as_micros() as u32;
        let rec = self.records.len() as u32;
        self.records.push(FlatRec {
            object,
            arrived: now,
            from_site: NONE,
            from_time: NONE,
            to_site: NONE,
            to_time: NONE,
        });
        // M1 — the index report. Charged uniformly at the modeled DHT
        // lookup length, including the (rare) self-gateway case.
        let hops = self.spec.lookup_hops;
        ctx.send(
            site,
            self.spec.obj_gateway[object as usize],
            MsgClass::IndexReport,
            ARRIVAL_BYTES,
            hops,
            hop_delay(hops),
            FlatMsg::Arrival { object, site, time: now, rec },
        );
    }

    fn issue_locate(&mut self, ctx: &mut ShardCtx<'_, FlatMsg>, object: u32, origin: u32) {
        let hops = self.spec.lookup_hops;
        ctx.send(
            origin,
            self.spec.obj_gateway[object as usize],
            MsgClass::Query,
            LOCATE_BYTES,
            hops,
            hop_delay(hops),
            FlatMsg::Locate { object, origin },
        );
    }

    /// M1 at the gateway: update the entry, thread M2/M3.
    fn on_arrival(
        &mut self,
        ctx: &mut ShardCtx<'_, FlatMsg>,
        gw: u32,
        object: u32,
        site: u32,
        time: u32,
        rec: u32,
    ) {
        let slot = self.spec.obj_slot[object as usize] as usize;
        let e = self.entries[slot];
        if e.site != NONE && time <= e.time {
            // The move gap is asserted to exceed the M1 latency, so an
            // out-of-order index update is a real protocol violation.
            self.out_of_order += 1;
            let s = format!(
                "out-of-order index update for object {object}: \
                 have t={} got t={time} from site {site}",
                e.time
            );
            self.violation(s);
            return;
        }
        if e.site != NONE {
            // M2 to the previous site: its record's `to` ← (site, time).
            ctx.send(
                gw,
                e.site,
                MsgClass::IopUpdate,
                SET_TO_BYTES,
                1,
                hop_delay(1),
                FlatMsg::SetTo { rec: e.rec, to_site: site, to_time: time },
            );
        }
        // M3 to the new site: its record's `from` ← previous location.
        ctx.send(
            gw,
            site,
            MsgClass::IopUpdate,
            SET_FROM_BYTES,
            1,
            hop_delay(1),
            FlatMsg::SetFrom { rec, from_site: e.site, from_time: e.time },
        );
        self.entries[slot] = FlatEntry { site, time, rec };
    }

    fn on_reply(&mut self, object: u32, site: u32) {
        let expected = self.spec.final_site(object);
        if site == expected {
            self.locates_ok += 1;
        } else {
            self.locates_bad += 1;
            let s = format!(
                "locate({object}) answered site {site}, oracle says {expected}"
            );
            self.violation(s);
        }
    }

    /// Fire every due event on the `captures` list, then re-arm.
    fn pump_captures(&mut self, ctx: &mut ShardCtx<'_, FlatMsg>) {
        let now = ctx.now().as_micros() as u32;
        while self.cap_cursor < self.captures.len() {
            let (t, o, k) = {
                let ev = &self.captures[self.cap_cursor];
                (ev.time, ev.object, ev.step)
            };
            if t != now {
                break;
            }
            self.cap_cursor += 1;
            self.do_capture(ctx, o, k);
        }
        if self.cap_cursor < self.captures.len() {
            let ev = &self.captures[self.cap_cursor];
            let site = self.spec.step_site(ev.object, ev.step);
            ctx.schedule(SimTime::from_micros(ev.time as u64), site, TAG_CAP);
        }
    }

    /// Fire every due probe on the `locates` list, then re-arm.
    fn pump_locates(&mut self, ctx: &mut ShardCtx<'_, FlatMsg>) {
        let now = ctx.now().as_micros() as u32;
        while self.loc_cursor < self.locates.len() {
            let (t, o, origin) = {
                let ev = &self.locates[self.loc_cursor];
                (ev.time, ev.object, ev.origin)
            };
            if t != now {
                break;
            }
            self.loc_cursor += 1;
            self.issue_locate(ctx, o, origin);
        }
        if self.loc_cursor < self.locates.len() {
            let ev = &self.locates[self.loc_cursor];
            ctx.schedule(SimTime::from_micros(ev.time as u64), ev.origin, TAG_LOC);
        }
    }
}

impl ShardWorld for FlatWorld {
    type Msg = FlatMsg;

    fn on_start(&mut self, ctx: &mut ShardCtx<'_, FlatMsg>) {
        if let Some(ev) = self.captures.first() {
            let site = self.spec.step_site(ev.object, ev.step);
            ctx.schedule(SimTime::from_micros(ev.time as u64), site, TAG_CAP);
        }
        if let Some(ev) = self.locates.first() {
            ctx.schedule(SimTime::from_micros(ev.time as u64), ev.origin, TAG_LOC);
        }
    }

    fn on_message(&mut self, ctx: &mut ShardCtx<'_, FlatMsg>, to: u32, from: u32, msg: FlatMsg) {
        match msg {
            FlatMsg::Arrival { object, site, time, rec } => {
                self.on_arrival(ctx, to, object, site, time, rec);
            }
            FlatMsg::SetTo { rec, to_site, to_time } => {
                let r = &mut self.records[rec as usize];
                r.to_site = to_site;
                r.to_time = to_time;
            }
            FlatMsg::SetFrom { rec, from_site, from_time } => {
                let r = &mut self.records[rec as usize];
                r.from_site = from_site;
                r.from_time = from_time;
            }
            FlatMsg::Locate { object, origin } => {
                // Answer straight from the entry arena; `to` here is the
                // gateway, `from` the probing origin.
                let slot = self.spec.obj_slot[object as usize] as usize;
                let e = self.entries[slot];
                let _ = from;
                ctx.send(
                    to,
                    origin,
                    MsgClass::Ack,
                    REPLY_BYTES,
                    1,
                    hop_delay(1),
                    FlatMsg::Reply { object, site: e.site },
                );
            }
            FlatMsg::Reply { object, site } => {
                self.on_reply(object, site);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ShardCtx<'_, FlatMsg>, _node: u32, kind: u64) {
        match kind {
            TAG_CAP => self.pump_captures(ctx),
            TAG_LOC => self.pump_locates(ctx),
            _ => unreachable!("unknown timer tag {kind}"),
        }
    }
}

/// Aggregated result of a flat-world run — everything in here is
/// byte-identical across thread counts at a fixed seed and geometry.
#[derive(Debug)]
pub struct FlatReport {
    /// Merged message accounting (shard order).
    pub metrics: Metrics,
    /// Events processed across all shards.
    pub events: u64,
    /// Barrier rounds the executor ran.
    pub windows: u64,
    /// Visit records created across all shards.
    pub records: u64,
    /// Oracle-confirmed locate answers.
    pub locates_ok: u64,
    /// Locate answers contradicting the oracle (must be 0).
    pub locates_bad: u64,
    /// Out-of-order index updates observed at gateways (must be 0).
    pub out_of_order: u64,
    /// Records whose threaded `from`/`to` edges violate time order, per
    /// the post-run IOP audit (must be 0).
    pub iop_bad: u64,
    /// Records with no `to` edge — the current tail of each object's
    /// path. Equals the object count when every trace completed.
    pub open_tails: u64,
    /// Diagnostic strings for the first violations seen, shard order.
    pub violations: Vec<String>,
}

/// Build the workload tables and run it on the sharded executor.
pub fn run_flat(cfg: &FlatConfig) -> FlatReport {
    assert!(cfg.nodes > 0 && cfg.objects > 0);
    assert!(cfg.shards > 0 && (cfg.shards as u64) <= cfg.nodes as u64);
    assert!((0.0..=1.0).contains(&cfg.move_frac));
    let shard_cfg = ShardConfig {
        seed: cfg.seed,
        shards: cfg.shards,
        nodes: cfg.nodes,
        window: SimTime::from_micros(HOP_US),
        threads: cfg.threads,
    };

    // Ring placement: site → u64 position; gateway(o) = successor of
    // the object's key. Built once, shared read-only by every shard.
    let mut ring: Vec<(u64, u32)> =
        (0..cfg.nodes).map(|s| (mix(cfg.seed ^ 0x0517_E000 ^ s as u64), s)).collect();
    ring.sort_unstable();
    let successor = |key: u64| -> u32 {
        let i = ring.partition_point(|&(p, _)| p < key);
        ring[if i == ring.len() { 0 } else { i }].1
    };

    let movers = (cfg.objects as f64 * cfg.move_frac) as u32;
    let lookup_hops = ((32 - cfg.nodes.leading_zeros()) / 2).max(1);

    // Horizon check: all times must fit the u32 microsecond fields.
    let horizon =
        cfg.spread.as_micros() + (cfg.moves as u64 + 1) * cfg.move_gap.as_micros() + 10_000_000;
    assert!(horizon < u32::MAX as u64, "run horizon exceeds the u32 time domain");
    // In-order index updates need the move gap to exceed M1 latency.
    assert!(
        cfg.move_gap.as_micros() > lookup_hops as u64 * HOP_US,
        "move gap must exceed the M1 latency or index updates reorder"
    );

    let mut obj_gateway = vec![0u32; cfg.objects as usize];
    let mut obj_slot = vec![0u32; cfg.objects as usize];
    let mut shard_entries = vec![0u32; cfg.shards];
    for o in 0..cfg.objects {
        let gw = successor(mix(cfg.seed ^ 0x0B1E_C700 ^ o as u64));
        obj_gateway[o as usize] = gw;
        let shard = shard_cfg.shard_of(gw);
        obj_slot[o as usize] = shard_entries[shard];
        shard_entries[shard] += 1;
    }

    let spec = Arc::new(Spec {
        nodes: cfg.nodes,
        movers,
        moves: cfg.moves,
        seed: cfg.seed,
        spread_us: cfg.spread.as_micros().max(1),
        gap_us: cfg.move_gap.as_micros(),
        lookup_hops,
        obj_gateway,
        obj_slot,
    });

    // Per-shard capture schedules, sorted by (time, object, step) — a
    // canonical order, so list construction is deterministic.
    let mut captures: Vec<Vec<CapEv>> = (0..cfg.shards).map(|_| Vec::new()).collect();
    for o in 0..cfg.objects {
        for k in 0..spec.steps(o) {
            let site = spec.step_site(o, k);
            captures[shard_cfg.shard_of(site)].push(CapEv {
                time: spec.step_time(o, k) as u32,
                object: o,
                step: k,
            });
        }
    }
    for list in captures.iter_mut() {
        list.sort_unstable_by_key(|e| (e.time, e.object, e.step));
    }

    // Locate probes: issued once every capture's M1/M2/M3 has settled.
    let quiesce = cfg.spread.as_micros()
        + (cfg.moves as u64 + 1) * cfg.move_gap.as_micros()
        + 2_000_000;
    let mut locates: Vec<Vec<LocEv>> = (0..cfg.shards).map(|_| Vec::new()).collect();
    for j in 0..cfg.locates {
        let object = (mix(cfg.seed ^ 0x10CA_7E00 ^ j as u64) % cfg.objects as u64) as u32;
        let origin = (mix(cfg.seed ^ 0x0816_1200 ^ j as u64) % cfg.nodes as u64) as u32;
        let time = (quiesce + (j as u64 % 1_000) * 1_000) as u32;
        locates[shard_cfg.shard_of(origin)].push(LocEv { time, object, origin });
    }
    for list in locates.iter_mut() {
        list.sort_unstable_by_key(|e| (e.time, e.object, e.origin));
    }

    let worlds: Vec<FlatWorld> = captures
        .into_iter()
        .zip(locates)
        .enumerate()
        .map(|(shard, (caps, locs))| FlatWorld {
            spec: Arc::clone(&spec),
            records: Vec::with_capacity(caps.len()),
            captures: caps,
            cap_cursor: 0,
            locates: locs,
            loc_cursor: 0,
            entries: vec![
                FlatEntry { site: NONE, time: NONE, rec: NONE };
                shard_entries[shard] as usize
            ],
            out_of_order: 0,
            locates_ok: 0,
            locates_bad: 0,
            violations: Vec::new(),
        })
        .collect();

    let run = run_sharded(&shard_cfg, worlds, SimTime::INFINITY);

    let mut report = FlatReport {
        metrics: run.metrics,
        events: run.events,
        windows: run.windows,
        records: 0,
        locates_ok: 0,
        locates_bad: 0,
        out_of_order: 0,
        iop_bad: 0,
        open_tails: 0,
        violations: Vec::new(),
    };
    for w in &run.worlds {
        report.records += w.records.len() as u64;
        report.locates_ok += w.locates_ok;
        report.locates_bad += w.locates_bad;
        report.out_of_order += w.out_of_order;
        report.violations.extend(w.violations.iter().cloned());
        // Post-run IOP audit over the slab: the distributed double
        // linked list must thread strictly forward in time.
        for r in &w.records {
            let to_ok = r.to_site == NONE || r.to_time > r.arrived;
            let from_ok = r.from_site == NONE || r.from_time < r.arrived;
            if to_ok && from_ok {
                if r.to_site == NONE {
                    report.open_tails += 1;
                }
            } else {
                report.iop_bad += 1;
                if report.violations.len() < MAX_VIOLATION_STRINGS {
                    report.violations.push(format!(
                        "IOP edge out of time order on object {}: \
                         from=({},{}) arrived={} to=({},{})",
                        r.object, r.from_site, r.from_time, r.arrived, r.to_site, r.to_time
                    ));
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FlatConfig {
        FlatConfig {
            nodes: 64,
            objects: 500,
            locates: 100,
            shards: 4,
            spread: SimTime::from_secs(5),
            ..FlatConfig::default()
        }
    }

    #[test]
    fn oracle_exact_and_quiet() {
        let r = run_flat(&small());
        assert_eq!(r.locates_bad, 0, "violations: {:?}", r.violations);
        assert_eq!(r.out_of_order, 0);
        assert_eq!(r.iop_bad, 0, "violations: {:?}", r.violations);
        assert_eq!(r.locates_ok, 100);
        // 500 objects, 10% movers with 10 extra captures each.
        assert_eq!(r.records, 500 + 50 * 10);
        // Exactly one unterminated (tail) record per object.
        assert_eq!(r.open_tails, 500);
        assert!(r.events > 0 && r.windows > 0);
    }

    #[test]
    fn thread_count_never_changes_the_report() {
        let base = format!("{:?}", run_flat(&small()));
        for threads in [2, 4] {
            let cfg = FlatConfig { threads, ..small() };
            assert_eq!(base, format!("{:?}", run_flat(&cfg)), "threads={threads} diverged");
        }
    }

    #[test]
    fn message_accounting_matches_the_protocol() {
        let cfg = FlatConfig { move_frac: 0.0, locates: 10, ..small() };
        let r = run_flat(&cfg);
        // No moves: one M1 + one M3 per object, no M2, 10 query round
        // trips.
        assert_eq!(r.metrics.messages_of(MsgClass::IndexReport), 500);
        assert_eq!(r.metrics.messages_of(MsgClass::IopUpdate), 500);
        assert_eq!(r.metrics.messages_of(MsgClass::Query), 10);
        assert_eq!(r.metrics.messages_of(MsgClass::Ack), 10);
        assert_eq!(r.locates_ok, 10);
    }
}
