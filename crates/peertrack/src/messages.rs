//! The wire protocol and its size accounting.
//!
//! §V-A measures indexing cost as "the total volume of messages
//! transferred over the network", so every message knows its serialized
//! size ([`Msg::wire_size`]): a fixed header plus per-field costs
//! (20-byte object ids, 8-byte timestamps, 4-byte site ids — the sizes a
//! compact binary codec would produce).

use crate::store::{IndexEntry, IopRecord, Link};
use ids::{Id, Prefix};
use moods::{ObjectId, SiteId};
use simnet::SimTime;

/// Bytes of a message header (type tag, source/destination overlay ids,
/// sequence number — comparable to OverSim's BaseOverlay header).
pub const HEADER_BYTES: usize = 16;
/// Bytes of one object id (SHA-1 digest).
pub const OBJECT_ID_BYTES: usize = 20;
/// Bytes of one timestamp.
pub const TIME_BYTES: usize = 8;
/// Bytes of one site address.
pub const SITE_BYTES: usize = 4;
/// Bytes of one IOP link (site + timestamp).
pub const LINK_BYTES: usize = SITE_BYTES + TIME_BYTES;
/// Bytes of one index entry (site + time + optional link).
pub const ENTRY_BYTES: usize = SITE_BYTES + TIME_BYTES + 1 + LINK_BYTES;
/// Bytes of a prefix descriptor (length byte + up to 8 bits bytes).
pub const PREFIX_BYTES: usize = 9;

/// Protocol messages exchanged between sites.
#[derive(Clone, Debug)]
pub enum Msg {
    /// **M1** (individual mode, §III): "object arrived at `site` at
    /// `time`", sent from the capturing node to the object's gateway.
    Arrival {
        /// The captured object.
        object: ObjectId,
        /// The capturing site.
        site: SiteId,
        /// Capture time.
        time: SimTime,
    },
    /// Group indexing message (§IV-A.2): "the indexing message has the
    /// format of (group id, (objects), timestamp)".
    GroupIndex {
        /// The group id (`Lp`-bit prefix).
        prefix: Prefix,
        /// The capturing site.
        site: SiteId,
        /// Member objects and their capture times.
        members: Vec<(ObjectId, SimTime)>,
    },
    /// **M2**: gateway → previous site. "o1 arrives at n4, so n3 updates
    /// its IOP by setting o1.to = n4". Batched per (group, source site).
    SetTo {
        /// `(object, arrival time at the receiving site, new to-link)`.
        updates: Vec<(ObjectId, SimTime, Link)>,
    },
    /// **M3**: gateway → new site. "o1 was from n3, so n4 updates its IOP
    /// by setting o1.from = n3". Batched per batch of captures.
    SetFrom {
        /// `(object, arrival time at the receiving site, from-link)`;
        /// `None` marks the object's first appearance.
        updates: Vec<(ObjectId, SimTime, Option<Link>)>,
    },
    /// Data-Triangle delegation (Fig. 5 `update_index`): parent pushes
    /// its earliest records to a child prefix's gateway.
    Delegate {
        /// The child prefix receiving the records.
        prefix: Prefix,
        /// The delegated records.
        entries: Vec<(ObjectId, IndexEntry)>,
    },
    /// Split/merge migration when `Lp` changes (§IV-A.2), or key-range
    /// handoff on churn.
    Migrate {
        /// Destination prefix shard (`None` = individual-mode entries).
        prefix: Option<Prefix>,
        /// The migrated records.
        entries: Vec<(ObjectId, IndexEntry)>,
    },
    /// Delivery acknowledgement for the at-least-once retry layer: the
    /// receiver echoes the [`Wire::seq`] of the delivery it accepted.
    Ack {
        /// Sequence number being acknowledged.
        acked: u64,
    },
    /// Replication write fan-out (IOP half): the primary pushes full
    /// visit records to each of its `K−1` successor replicas, which
    /// upsert them keyed by `(object, arrived)`.
    ReplIop {
        /// The primary whose repository these records belong to.
        primary: SiteId,
        /// `(object, full visit record)` pairs.
        updates: Vec<(ObjectId, IopRecord)>,
    },
    /// Replication write fan-out (index half): the full current content
    /// of one gateway shard, replacing the replica's copy wholesale
    /// (an empty `entries` drops it). Full-shard replace — rather than
    /// per-entry upsert — is what lets removals (refresh fetches,
    /// delegation, split/merge drains) propagate without tombstones.
    ReplShard {
        /// The primary whose shard this is.
        primary: SiteId,
        /// Which shard: a group-mode prefix, or `None` for the
        /// individual-mode object map.
        prefix: Option<Prefix>,
        /// The shard's entire content.
        entries: Vec<(ObjectId, IndexEntry)>,
        /// The shard's Data-Triangle delegation flag.
        delegated: bool,
    },
    /// Anti-entropy round-trip, step 1: the primary sends a digest of
    /// its canonical store encoding to each replica. A replica whose
    /// copy hashes differently answers with [`Msg::ReplSyncReq`].
    ReplDigest {
        /// The primary initiating the exchange.
        primary: SiteId,
        /// Hash of the primary's canonical store bytes.
        digest: Id,
    },
    /// Anti-entropy step 2: a replica that detected divergence asks the
    /// primary for its full state.
    ReplSyncReq {
        /// The primary being asked.
        primary: SiteId,
    },
    /// Anti-entropy step 3: the primary's full store state in the
    /// canonical encoding; the replica replaces its copy wholesale.
    ReplState {
        /// The primary whose state this is.
        primary: SiteId,
        /// Canonical encoding of the primary's IOP + gateway stores.
        state: Vec<u8>,
    },
    /// IOP link updates (M2/M3) redirected to the replica set because
    /// the primary is permanently gone: holders patch their replica
    /// copy of the dead site's repository so locate/trace chain walks
    /// stay oracle-exact after the failure.
    ReplIopPatch {
        /// The (dead) primary whose replica copies are patched.
        primary: SiteId,
        /// M2-shaped updates: `(object, arrival time, new to-link)`.
        set_to: Vec<(ObjectId, SimTime, Link)>,
        /// M3-shaped updates: `(object, arrival time, from-link)`.
        set_from: Vec<(ObjectId, SimTime, Option<Link>)>,
    },
}

/// Link-level envelope: every networked delivery carries a sender-unique
/// sequence number so the retry layer can acknowledge it and the receiver
/// can discard duplicates (retransmissions and fault-plane duplication
/// both deliver the same `seq` twice). `seq = 0` is reserved for
/// unsequenced traffic — local self-sends and the acks themselves — which
/// is never retried or deduplicated.
#[derive(Clone, Debug)]
pub struct Wire {
    /// Sender-unique sequence number (0 = unsequenced).
    pub seq: u64,
    /// The protocol payload.
    pub msg: Msg,
}

impl Wire {
    /// Wrap a payload without a sequence number.
    pub fn unsequenced(msg: Msg) -> Wire {
        Wire { seq: 0, msg }
    }

    /// Serialized size: the sequence number rides the fixed header
    /// ([`HEADER_BYTES`] already accounts for it), so the envelope adds
    /// nothing on the wire.
    pub fn wire_size(&self) -> usize {
        self.msg.wire_size()
    }
}

impl Msg {
    /// Serialized size in bytes, for the volume metric.
    pub fn wire_size(&self) -> usize {
        HEADER_BYTES
            + match self {
                Msg::Arrival { .. } => OBJECT_ID_BYTES + SITE_BYTES + TIME_BYTES,
                Msg::GroupIndex { members, .. } => {
                    PREFIX_BYTES + SITE_BYTES + members.len() * (OBJECT_ID_BYTES + TIME_BYTES)
                }
                Msg::SetTo { updates } => {
                    updates.len() * (OBJECT_ID_BYTES + TIME_BYTES + LINK_BYTES)
                }
                Msg::SetFrom { updates } => {
                    updates.len() * (OBJECT_ID_BYTES + TIME_BYTES + 1 + LINK_BYTES)
                }
                Msg::Delegate { entries, .. } => {
                    PREFIX_BYTES + entries.len() * (OBJECT_ID_BYTES + ENTRY_BYTES)
                }
                Msg::Migrate { entries, .. } => {
                    PREFIX_BYTES + entries.len() * (OBJECT_ID_BYTES + ENTRY_BYTES)
                }
                Msg::Ack { .. } => TIME_BYTES, // the echoed u64 seq
                Msg::ReplIop { updates, .. } => {
                    // A full record: arrival time + two optional links.
                    SITE_BYTES
                        + updates.len()
                            * (OBJECT_ID_BYTES + TIME_BYTES + 2 * (1 + LINK_BYTES))
                }
                Msg::ReplShard { entries, .. } => {
                    SITE_BYTES
                        + PREFIX_BYTES
                        + 1 // delegated flag
                        + entries.len() * (OBJECT_ID_BYTES + ENTRY_BYTES)
                }
                Msg::ReplDigest { .. } => SITE_BYTES + OBJECT_ID_BYTES,
                Msg::ReplSyncReq { .. } => SITE_BYTES,
                Msg::ReplState { state, .. } => SITE_BYTES + state.len(),
                Msg::ReplIopPatch { set_to, set_from, .. } => {
                    SITE_BYTES
                        + set_to.len() * (OBJECT_ID_BYTES + TIME_BYTES + LINK_BYTES)
                        + set_from.len() * (OBJECT_ID_BYTES + TIME_BYTES + 1 + LINK_BYTES)
                }
            }
    }

    /// The metrics class this message is charged to.
    pub fn class(&self) -> simnet::MsgClass {
        match self {
            Msg::Arrival { .. } => simnet::MsgClass::IndexReport,
            Msg::GroupIndex { .. } => simnet::MsgClass::GroupIndex,
            Msg::SetTo { .. } | Msg::SetFrom { .. } => simnet::MsgClass::IopUpdate,
            Msg::Delegate { .. } => simnet::MsgClass::Delegate,
            Msg::Migrate { .. } => simnet::MsgClass::SplitMerge,
            Msg::Ack { .. } => simnet::MsgClass::Ack,
            // All replication traffic rides the gossip class: it is
            // background state maintenance, not indexing work, and the
            // paper's cost figures never charge for it.
            Msg::ReplIop { .. }
            | Msg::ReplShard { .. }
            | Msg::ReplDigest { .. }
            | Msg::ReplSyncReq { .. }
            | Msg::ReplState { .. }
            | Msg::ReplIopPatch { .. } => simnet::MsgClass::Gossip,
        }
    }

    /// The single object this message concerns, when it concerns
    /// exactly one — used to tag trace records so a trace can be
    /// filtered per object (batched payloads return `None` and stay
    /// attributable through the causal chain instead).
    pub fn single_object(&self) -> Option<ObjectId> {
        match self {
            Msg::Arrival { object, .. } => Some(*object),
            Msg::GroupIndex { members, .. } if members.len() == 1 => Some(members[0].0),
            Msg::SetTo { updates } if updates.len() == 1 => Some(updates[0].0),
            Msg::SetFrom { updates } if updates.len() == 1 => Some(updates[0].0),
            Msg::Delegate { entries, .. } | Msg::Migrate { entries, .. }
                if entries.len() == 1 =>
            {
                Some(entries[0].0)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids::Id;
    use simnet::time::ms;

    fn obj(n: u64) -> ObjectId {
        ObjectId(Id::hash(&n.to_be_bytes()))
    }

    #[test]
    fn arrival_size_fixed() {
        let m = Msg::Arrival { object: obj(1), site: SiteId(0), time: ms(1) };
        assert_eq!(m.wire_size(), 16 + 20 + 4 + 8);
        assert_eq!(m.class(), simnet::MsgClass::IndexReport);
    }

    #[test]
    fn group_index_scales_with_members() {
        let members: Vec<_> = (0..10u64).map(|i| (obj(i), ms(i))).collect();
        let m = Msg::GroupIndex {
            prefix: Prefix::from_bit_str("0101"),
            site: SiteId(1),
            members,
        };
        assert_eq!(m.wire_size(), 16 + 9 + 4 + 10 * 28);
        assert_eq!(m.class(), simnet::MsgClass::GroupIndex);
    }

    #[test]
    fn one_group_message_cheaper_than_individual_reports() {
        // The core premise of §IV: indexing k objects as one group costs
        // less wire volume than k individual arrival messages (headers
        // and routing amortize).
        let k = 100u64;
        let members: Vec<_> = (0..k).map(|i| (obj(i), ms(i))).collect();
        let group = Msg::GroupIndex {
            prefix: Prefix::from_bit_str("00"),
            site: SiteId(0),
            members,
        }
        .wire_size();
        let individual: usize = (0..k)
            .map(|i| Msg::Arrival { object: obj(i), site: SiteId(0), time: ms(i) }.wire_size())
            .sum();
        assert!(group < individual, "group {group} >= individual {individual}");
    }

    #[test]
    fn iop_update_classes() {
        let set_to = Msg::SetTo {
            updates: vec![(obj(1), ms(1), Link { site: SiteId(2), time: ms(3) })],
        };
        let set_from = Msg::SetFrom { updates: vec![(obj(1), ms(3), None)] };
        assert_eq!(set_to.class(), simnet::MsgClass::IopUpdate);
        assert_eq!(set_from.class(), simnet::MsgClass::IopUpdate);
        assert!(set_to.wire_size() > HEADER_BYTES);
        assert!(set_from.wire_size() > HEADER_BYTES);
    }

    #[test]
    fn replication_messages_charge_gossip() {
        let rec = IopRecord { arrived: ms(1), from: None, to: None };
        let msgs = [
            Msg::ReplIop { primary: SiteId(1), updates: vec![(obj(1), rec)] },
            Msg::ReplShard {
                primary: SiteId(1),
                prefix: Some(Prefix::from_bit_str("01")),
                entries: vec![],
                delegated: false,
            },
            Msg::ReplDigest { primary: SiteId(1), digest: Id::hash(b"x") },
            Msg::ReplSyncReq { primary: SiteId(1) },
            Msg::ReplState { primary: SiteId(1), state: vec![0u8; 64] },
            Msg::ReplIopPatch {
                primary: SiteId(1),
                set_to: vec![(obj(1), ms(1), Link { site: SiteId(2), time: ms(2) })],
                set_from: vec![(obj(1), ms(2), None)],
            },
        ];
        for m in &msgs {
            assert_eq!(m.class(), simnet::MsgClass::Gossip);
            assert!(m.wire_size() >= HEADER_BYTES + SITE_BYTES);
            assert_eq!(m.single_object(), None);
        }
    }

    #[test]
    fn migrate_and_delegate_classes() {
        let e = IndexEntry { site: SiteId(0), time: ms(1), prev: None };
        let d = Msg::Delegate { prefix: Prefix::from_bit_str("010"), entries: vec![(obj(1), e)] };
        let g = Msg::Migrate { prefix: None, entries: vec![(obj(1), e)] };
        assert_eq!(d.class(), simnet::MsgClass::Delegate);
        assert_eq!(g.class(), simnet::MsgClass::SplitMerge);
    }
}
