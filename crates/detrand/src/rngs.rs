//! Concrete generators: SplitMix64 and xoshiro256\*\*.
//!
//! Both algorithms are public domain (Blackman & Vigna,
//! <https://prng.di.unimi.it/>); the known-answer tests below pin this
//! implementation to the reference C output so the streams behind every
//! committed experiment number can never silently change.

use crate::{RngCore, SeedableRng};

/// SplitMix64 (Steele, Lea & Flood) — a 64-bit state generator used
/// here to expand small seeds into full xoshiro state, per the xoshiro
/// authors' recommendation.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Construct with the given state.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* 1.0 — 256 bits of state, period 2²⁵⁶ − 1, the
/// all-purpose generator recommended by its authors. Deterministic by
/// construction; the workspace's [`StdRng`].
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Construct from raw state words. At least one must be non-zero
    /// (the all-zero state is a fixed point); a zero seed is replaced
    /// by a SplitMix64 expansion of 0.
    pub fn from_state(s: [u64; 4]) -> Xoshiro256StarStar {
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        Xoshiro256StarStar { s }
    }
}

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Xoshiro256StarStar {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    fn from_seed(seed: [u8; 32]) -> Xoshiro256StarStar {
        let word = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            u64::from_le_bytes(b)
        };
        Self::from_state([word(0), word(1), word(2), word(3)])
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The workspace's standard deterministic generator.
///
/// Unlike `rand::rngs::StdRng`, the algorithm (xoshiro256\*\* seeded
/// via SplitMix64) is a stable contract — same seed, same stream, in
/// every future version of this crate.
pub type StdRng = Xoshiro256StarStar;

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs of the public-domain splitmix64.c for state 0.
    #[test]
    fn splitmix64_known_answers_seed_zero() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(sm.next_u64(), 0xF88B_B8A8_724C_81EC);
    }

    #[test]
    fn splitmix64_known_answers_nonzero_seed() {
        let mut sm = SplitMix64::new(0x0123_4567_89AB_CDEF);
        assert_eq!(sm.next_u64(), 0x157A_3807_A48F_AA9D);
        assert_eq!(sm.next_u64(), 0xD573_529B_34A1_D093);
        assert_eq!(sm.next_u64(), 0x2F90_B72E_996D_CCBE);
        assert_eq!(sm.next_u64(), 0xA2D4_1933_4C46_67EC);
    }

    /// Reference outputs of xoshiro256starstar.c from state {1,2,3,4}.
    #[test]
    fn xoshiro_known_answers_canonical_state() {
        let mut x = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        let expect: [u64; 8] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
            16172922978634559625,
            8476171486693032832,
        ];
        for e in expect {
            assert_eq!(x.next_u64(), e);
        }
    }

    /// seed_from_u64 = SplitMix64 expansion, pinned end to end.
    #[test]
    fn xoshiro_known_answers_seed_zero() {
        let mut x = Xoshiro256StarStar::seed_from_u64(0);
        assert_eq!(x.next_u64(), 0x99EC_5F36_CB75_F2B4);
        assert_eq!(x.next_u64(), 0xBF6E_1F78_4956_452A);
        assert_eq!(x.next_u64(), 0x1A5F_849D_4933_E6E0);
        assert_eq!(x.next_u64(), 0x6AA5_94F1_262D_2D2C);
    }

    #[test]
    fn xoshiro_known_answers_seed_42() {
        let mut x = StdRng::seed_from_u64(42);
        assert_eq!(x.next_u64(), 0x1578_0B2E_0C2E_C716);
        assert_eq!(x.next_u64(), 0x6104_D986_6D11_3A7E);
        assert_eq!(x.next_u64(), 0xAE17_5332_39E4_99A1);
    }

    #[test]
    fn from_seed_round_trips_state_words() {
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&1u64.to_le_bytes());
        seed[8..16].copy_from_slice(&2u64.to_le_bytes());
        seed[16..24].copy_from_slice(&3u64.to_le_bytes());
        seed[24..].copy_from_slice(&4u64.to_le_bytes());
        let mut x = Xoshiro256StarStar::from_seed(seed);
        assert_eq!(x.next_u64(), 11520);
    }

    #[test]
    fn all_zero_state_is_rejected() {
        let mut x = Xoshiro256StarStar::from_state([0; 4]);
        // Degenerate all-zero state would emit zeros forever.
        assert_ne!(x.next_u64(), x.next_u64());
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(8);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "seeds 7/8 should produce unrelated streams");
    }
}
