//! Random slice operations: shuffle and sampling without replacement.

use crate::{Rng, RngCore};

/// Extension trait on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle, in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements sampled without replacement (fewer if
    /// the slice is shorter), in selection order.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        // Partial Fisher–Yates over an index vector: O(len) setup,
        // exact sampling without replacement.
        let amount = amount.min(self.len());
        let mut indices: Vec<usize> = (0..self.len()).collect();
        let mut picked = Vec::with_capacity(amount);
        for i in 0..amount {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
            picked.push(&self[indices[i]]);
        }
        picked.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [0usize, 1, 2, 17, 100] {
            let mut v: Vec<usize> = (0..n).collect();
            v.shuffle(&mut rng);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn shuffle_deterministic_and_seed_sensitive() {
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<u32> = (0..50).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn shuffle_actually_moves_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let fixed = v.iter().enumerate().filter(|(i, &x)| *i as u32 == x).count();
        assert!(fixed < 15, "{fixed} fixed points in a 100-element shuffle");
    }

    #[test]
    fn choose_empty_and_singleton() {
        let mut rng = StdRng::seed_from_u64(6);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = [1u8, 2, 3, 4];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn choose_multiple_distinct_and_clamped() {
        let mut rng = StdRng::seed_from_u64(8);
        let v: Vec<u32> = (0..10).collect();
        for amount in [0usize, 1, 5, 10, 25] {
            let picked: Vec<u32> = v.choose_multiple(&mut rng, amount).copied().collect();
            assert_eq!(picked.len(), amount.min(v.len()));
            let distinct: std::collections::BTreeSet<u32> = picked.iter().copied().collect();
            assert_eq!(distinct.len(), picked.len(), "duplicates in {picked:?}");
        }
    }
}
