//! Deterministic, dependency-free pseudo-random numbers.
//!
//! The paper's evaluation (§V) rests on bit-reproducible simulation
//! runs; DESIGN.md commits the repo to from-scratch primitives. This
//! crate extends that rule to randomness: it re-implements exactly the
//! slice of the `rand` 0.8 API surface the workspace uses, so call
//! sites port mechanically (`use detrand::…` → `use detrand::…`) and the
//! build never touches the registry.
//!
//! * [`rngs::StdRng`] — xoshiro256\*\* (Blackman & Vigna) seeded from a
//!   `u64` through SplitMix64, the construction recommended by the
//!   xoshiro authors. Unlike `rand`'s `StdRng`, the algorithm is part
//!   of this crate's contract: streams are stable forever, which is
//!   what makes committed experiment numbers reproducible.
//! * [`RngCore`] — the object-safe generator core (`&mut dyn RngCore`
//!   works, as `simnet`'s latency models require).
//! * [`Rng`] — blanket extension trait: `gen_range`, `gen_bool`,
//!   `gen::<T>()`, `fill`.
//! * [`SeedableRng`] — `seed_from_u64` / `from_seed` construction.
//! * [`seq::SliceRandom`] — `shuffle`, `choose`, `choose_multiple`.
//!
//! Integer `gen_range` uses widening-multiply with rejection (Lemire),
//! so draws are unbiased and cost one `u64` of entropy in the common
//! case. Floats use the standard 53-bit mantissa-fill in `[0, 1)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;
pub mod zipf;

/// The object-safe core of a random number generator.
///
/// Everything else ([`Rng`], [`seq::SliceRandom`]) is derived from
/// [`RngCore::next_u64`]; implement only that and the rest follows.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`next_u64`],
    /// the stronger bits of xoshiro256\*\*).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes (little-endian `u64` chunks).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&last[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` via SplitMix64 state expansion.
    fn seed_from_u64(seed: u64) -> Self;

    /// Construct from 32 explicit state bytes (little-endian words).
    fn from_seed(seed: [u8; 32]) -> Self;
}

/// Types that [`Rng::gen`] can produce from uniform bits.
pub trait Standard: Sized {
    /// Draw one value from the standard distribution (uniform over the
    /// type's domain; `[0, 1)` for floats).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // Highest bit: xoshiro256** low bits are its weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform draw in `[0, 1)` with 53 random mantissa bits.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased integer in `[0, span)` for `span ≥ 1`: widening multiply
/// with rejection (Lemire 2019).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut low = m as u64;
    if low < span {
        // Threshold = 2^64 mod span; reject the biased low region.
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole u64/i64 domain: every 64-bit pattern is valid.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng) as $t;
                let v = self.start + u * (self.end - self.start);
                // Rounding may land exactly on `end`; stay half-open.
                if v >= self.end { <$t>::max(self.start, self.end - (self.end - self.start) * 1e-9) } else { v }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience extension methods, blanket-implemented for every
/// [`RngCore`] (including unsized `dyn RngCore`).
pub trait Rng: RngCore {
    /// Uniform value in `range` (`Range` or `RangeInclusive`, integer
    /// or float).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A value of `T`'s standard distribution (uniform bits; `[0, 1)`
    /// for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }

    /// Fill a byte slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn gen_range_half_open_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..13);
            assert!((10..13).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_inclusive_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let v = rng.gen_range(7u8..=9);
            seen[(v - 7) as usize] = true;
        }
        assert_eq!(seen, [true; 3], "all inclusive-range values reachable");
    }

    #[test]
    fn gen_range_singleton_inclusive() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.gen_range(5u32..=5), 5);
        assert_eq!(rng.gen_range(-3i32..=-3), -3);
    }

    #[test]
    fn gen_range_full_u64_domain() {
        let mut rng = StdRng::seed_from_u64(4);
        // Must not panic or loop; spans the whole domain.
        let mut any_high = false;
        for _ in 0..64 {
            any_high |= rng.gen_range(0u64..=u64::MAX) > u64::MAX / 2;
        }
        assert!(any_high);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 hit rate {hits}/10000");
    }

    #[test]
    fn uniform_below_unbiased_small_span() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[uniform_below(&mut rng, 3) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn fill_bytes_partial_chunk() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        a.fill_bytes(&mut buf);
        // First 8 bytes are the LE first word.
        assert_eq!(buf[..8], b.next_u64().to_le_bytes());
        assert_eq!(buf[8..13], b.next_u64().to_le_bytes()[..5]);
    }

    #[test]
    fn object_safe_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(11);
        let dynrng: &mut dyn RngCore = &mut rng;
        // Rng methods resolve through the blanket impl on the unsized type.
        let v = dynrng.gen_range(0u64..10);
        assert!(v < 10);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..10_000 {
            let u = unit_f64(&mut rng);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
