//! Zipf-distributed rank sampling for skewed workloads.
//!
//! Real traceability traffic is not uniform: a handful of hot objects
//! (a recalled product line, a flagship SKU) draws most of the locate
//! traffic. [`Zipf`] samples 0-based ranks with probability
//! proportional to `(rank + 1)^-s` over a fixed population of `n`
//! ranks, so rank 0 is the most popular; `s = 0` degenerates to the
//! uniform distribution exactly (all weights are 1).
//!
//! The sampler precomputes the normalized CDF at construction and draws
//! with one `[0, 1)` uniform plus a binary search, so a draw costs one
//! `u64` of entropy — the same budget as `gen_range` — and the stream
//! consumed from the underlying generator is stable forever (the KAT
//! tests pin it), which keeps committed experiment numbers reproducible.

use crate::{unit_f64, RngCore};

/// A Zipf(s) sampler over ranks `0..n` (rank 0 most popular).
#[derive(Clone, Debug)]
pub struct Zipf {
    /// `cdf[r]` = P(rank ≤ r); strictly increasing, last element 1.0.
    cdf: Vec<f64>,
    s: f64,
}

impl Zipf {
    /// Build a sampler over `n ≥ 1` ranks with exponent `s ≥ 0`.
    ///
    /// Panics on `n = 0` or a negative/non-finite `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf: population must be non-empty");
        assert!(s >= 0.0 && s.is_finite(), "Zipf: exponent must be finite and >= 0, got {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n as u64 {
            // s = 0 uses weight 1 exactly (not powf, which could round),
            // so the degenerate case is *bit-identical* to uniform.
            acc += if s == 0.0 { 1.0 } else { (rank as f64).powf(-s) };
            cdf.push(acc);
        }
        for c in cdf.iter_mut() {
            *c /= acc;
        }
        // Normalization can leave the top fractionally under 1.0; clamp
        // so every u in [0, 1) maps to a valid rank.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Zipf { cdf, s }
    }

    /// Number of ranks in the population.
    pub fn population(&self) -> usize {
        self.cdf.len()
    }

    /// The exponent this sampler was built with.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// P(rank = r), for tests and analytical checks.
    pub fn pmf(&self, rank: usize) -> f64 {
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }

    /// Draw one 0-based rank. Costs exactly one `next_u64`.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let u = unit_f64(rng);
        // First rank whose CDF strictly exceeds u; u < 1.0 and the last
        // CDF entry is exactly 1.0, so the result is always in range.
        self.cdf.partition_point(|&c| c <= u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;
    use proptiny::prelude::*;

    fn sample_counts(n: usize, s: f64, seed: u64, draws: usize) -> Vec<usize> {
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn kat_pinned_sample_stream() {
        // Known-answer test: this exact stream is part of the crate's
        // contract (committed sweep CSVs depend on it). Do not update
        // these values without regenerating every zipf artifact.
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(42);
        let got: Vec<usize> = (0..20).map(|_| z.sample(&mut rng)).collect();
        assert_eq!(got, [0, 1, 9, 52, 92, 17, 12, 29, 16, 5, 9, 1, 21, 1, 11, 36, 6, 30, 11, 11]);

        let u = Zipf::new(8, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let got: Vec<usize> = (0..16).map(|_| u.sample(&mut rng)).collect();
        assert_eq!(got, [5, 2, 6, 7, 7, 6, 0, 0, 3, 1, 4, 5, 7, 7, 3, 4]);
    }

    #[test]
    fn cdf_is_monotone_and_tops_at_one() {
        for &(n, s) in &[(1usize, 0.0), (2, 0.5), (50, 1.2), (1000, 2.0)] {
            let z = Zipf::new(n, s);
            assert_eq!(z.population(), n);
            for r in 1..n {
                assert!(z.cdf[r] > z.cdf[r - 1], "CDF must be strictly increasing");
            }
            assert_eq!(*z.cdf.last().unwrap(), 1.0);
            let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn singleton_population_always_rank_zero() {
        let z = Zipf::new(1, 1.2);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn skew_concentrates_mass_on_low_ranks() {
        // At s = 1.2 over 100 ranks, the top 10 ranks carry the clear
        // majority of draws; at s = 0 they carry ~10%.
        let skewed = sample_counts(100, 1.2, 11, 20_000);
        let head: usize = skewed[..10].iter().sum();
        assert!(head > 12_000, "top-10 mass at s=1.2: {head}/20000");
        let uniform = sample_counts(100, 0.0, 11, 20_000);
        let head: usize = uniform[..10].iter().sum();
        assert!((1_400..2_600).contains(&head), "top-10 mass at s=0: {head}/20000");
    }

    proptiny! {
        /// Rank 0 is sampled at least as often as any other rank, for
        /// any positive skew — the defining Zipf shape.
        #[test]
        fn prop_rank_zero_most_frequent(
            seed in 0u64..1_000_000,
            n in 2usize..64,
            tenths in 2u32..30
        ) {
            let s = tenths as f64 / 10.0;
            let counts = sample_counts(n, s, seed, 4_000);
            let max = *counts.iter().max().unwrap();
            prop_assert!(
                counts[0] == max,
                "rank 0 drew {} but some rank drew {max} (n={n}, s={s})",
                counts[0]
            );
        }

        /// s = 0 is uniform within tolerance: every rank's observed
        /// frequency is within 4x of the expected 1/n (loose bound, but
        /// a real skew fails it immediately).
        #[test]
        fn prop_zero_exponent_is_uniform(seed in 0u64..1_000_000, n in 2usize..32) {
            let draws = 8_000;
            let counts = sample_counts(n, 0.0, seed, draws);
            let expect = draws as f64 / n as f64;
            for (r, &c) in counts.iter().enumerate() {
                prop_assert!(
                    (c as f64) < expect * 4.0 && (c as f64) > expect / 4.0,
                    "rank {r} drew {c}, expected ~{expect:.0} (n={n})"
                );
            }
        }

        /// Same seed, same stream: the sampler is a pure function of
        /// (population, exponent, generator state).
        #[test]
        fn prop_same_seed_same_stream(seed in any::<u64>(), n in 1usize..64) {
            let z = Zipf::new(n, 0.8);
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let sa: Vec<usize> = (0..64).map(|_| z.sample(&mut a)).collect();
            let sb: Vec<usize> = (0..64).map(|_| z.sample(&mut b)).collect();
            prop_assert_eq!(sa, sb);
        }
    }
}
