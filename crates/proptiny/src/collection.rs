//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use detrand::rngs::StdRng;
use detrand::Rng;
use std::ops::Range;

/// A `Vec` whose length is drawn from `len` (half-open, matching
/// `proptest`'s `vec(elem, lo..hi)`) and whose elements come from
/// `elem`.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "vec strategy: empty length range");
    VecStrategy { elem, len }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let lo = self.len.start;
        let mut out = Vec::new();
        // 1. Aggressive length cuts: down to the minimum, then halving.
        if v.len() > lo {
            out.push(v[..lo].to_vec());
            let half = lo.max(v.len() / 2);
            if half < v.len() && half > lo {
                out.push(v[..half].to_vec());
            }
        }
        // 2. Drop single elements (preserves which element fails).
        if v.len() > lo {
            for i in 0..v.len() {
                let mut next = v.clone();
                next.remove(i);
                out.push(next);
            }
        }
        // 3. Shrink elements in place.
        for (i, x) in v.iter().enumerate() {
            for candidate in self.elem.shrink(x) {
                let mut next = v.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::SeedableRng;

    #[test]
    fn generates_lengths_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = vec(0u8..=255, 2..9);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
            seen.insert(v.len());
        }
        assert_eq!(seen.len(), 7, "all lengths 2..9 reachable, saw {seen:?}");
    }

    #[test]
    fn shrink_candidates_respect_min_len() {
        let s = vec(0u32..10, 2..6);
        let v = s.shrink(&vec![1, 2, 3, 4]);
        assert!(!v.is_empty());
        assert!(v.iter().all(|c| c.len() >= 2));
        assert!(v.contains(&vec![1, 2]), "truncation to min length offered");
    }

    #[test]
    fn nested_vec_strategy_works() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = vec(vec(0u32..6, 2..6), 1..20);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty() && v.len() < 20);
        for inner in &v {
            assert!((2..6).contains(&inner.len()));
            assert!(inner.iter().all(|&x| x < 6));
        }
    }
}
