//! A minimal, dependency-free property-testing harness.
//!
//! Replaces the slice of `proptest` the workspace used: the
//! [`proptiny!`] macro runs a predicate over generated inputs, rejects
//! cases via [`prop_assume!`], checks via [`prop_assert!`] /
//! [`prop_assert_eq!`], and greedily shrinks failures to a small
//! counterexample before panicking with the minimal case and the seed.
//!
//! Design points, per the repo's hermetic-build policy (DESIGN.md):
//!
//! * **Fixed seeds.** Each property derives its base seed from the test
//!   name (FNV-1a), optionally XOR-ed with `PROPTINY_SEED`; runs are
//!   bit-reproducible — the same property explores the same cases on
//!   every machine, so CI failures replay locally by construction.
//! * **Generators are values.** A [`Strategy`] produces a value from a
//!   [`StdRng`] and proposes shrink candidates for a failing value.
//!   Integer ranges (`0u64..100`, `0u8..=7`), tuples of strategies,
//!   [`collection::vec`], [`any`] and `[01]{lo,hi}`-style character
//!   class strings are built in — exactly what the workspace's eleven
//!   property blocks need.
//! * **Greedy shrinking.** On failure the runner walks shrink
//!   candidates depth-first (bounded by
//!   [`Config::max_shrink_steps`]), keeping any candidate that still
//!   fails; panics from the property body count as failures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use detrand::rngs::StdRng;
use detrand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod collection;
pub mod schedule;
pub mod strategy;

pub use schedule::{schedule, ScheduleStrategy};
pub use strategy::{any, Arbitrary, Strategy};

/// Module alias so ported `prop::collection::vec(...)` call sites keep
/// their spelling.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        proptiny, Config, Strategy,
    };
}

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Upper bound on predicate evaluations spent shrinking a failure.
    pub max_shrink_steps: u32,
    /// Upper bound on `prop_assume!` rejections before the property
    /// errors out as vacuous, as a multiple of `cases`.
    pub max_reject_factor: u32,
}

impl Config {
    /// `cases` generated inputs per property, other limits default.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases, ..Config::default() }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64, max_shrink_steps: 1024, max_reject_factor: 20 }
    }
}

/// Outcome of running a property body on one generated case.
#[derive(Debug)]
pub enum CaseResult {
    /// The property held.
    Pass,
    /// `prop_assume!` rejected the case; it counts toward the reject
    /// budget, not toward `cases`.
    Reject,
    /// The property failed with this message.
    Fail(String),
}

impl CaseResult {
    /// Build a failure (used by the `prop_assert*` macros).
    pub fn fail(msg: String) -> CaseResult {
        CaseResult::Fail(msg)
    }
}

/// A shrunk failure, as reported by [`run_collect`].
#[derive(Debug)]
pub struct Failure {
    /// `Debug` rendering of the minimal failing input.
    pub minimal: String,
    /// Failure message of the minimal input.
    pub message: String,
    /// Base seed of the run.
    pub seed: u64,
    /// Number of successful shrink steps applied.
    pub shrink_steps: u32,
}

/// FNV-1a, the per-test seed derivation.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn base_seed(name: &str) -> u64 {
    let env = std::env::var("PROPTINY_SEED").ok().and_then(|v| v.parse::<u64>().ok());
    fnv1a(name) ^ env.unwrap_or(0)
}

/// Run the body, converting panics into failures.
fn eval<V, F>(f: &F, value: V) -> CaseResult
where
    F: Fn(V) -> CaseResult,
{
    match catch_unwind(AssertUnwindSafe(|| f(value))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic of unknown type".into());
            CaseResult::Fail(format!("panic: {msg}"))
        }
    }
}

/// Run a property, returning the shrunk failure instead of panicking.
///
/// This is the engine behind [`run`]; it is public so the harness can
/// test its own shrinking.
pub fn run_collect<S, F>(name: &str, config: &Config, strategy: &S, f: F) -> Result<(), Failure>
where
    S: Strategy,
    F: Fn(S::Value) -> CaseResult,
{
    let seed = base_seed(name);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let reject_budget = config.cases as u64 * config.max_reject_factor as u64;

    while passed < config.cases {
        let value = strategy.generate(&mut rng);
        match eval(&f, value.clone()) {
            CaseResult::Pass => passed += 1,
            CaseResult::Reject => {
                rejected += 1;
                if rejected > reject_budget {
                    return Err(Failure {
                        minimal: format!("{value:?}"),
                        message: format!(
                            "property is vacuous: {rejected} cases rejected by prop_assume! \
                             against {passed} passes"
                        ),
                        seed,
                        shrink_steps: 0,
                    });
                }
            }
            CaseResult::Fail(first_msg) => {
                let (minimal, message, shrink_steps) =
                    shrink(config, strategy, &f, value, first_msg);
                return Err(Failure {
                    minimal: format!("{minimal:?}"),
                    message,
                    seed,
                    shrink_steps,
                });
            }
        }
    }
    Ok(())
}

/// Greedy shrink: repeatedly move to the first candidate that still
/// fails, until no candidate fails or the step budget is exhausted.
fn shrink<S, F>(
    config: &Config,
    strategy: &S,
    f: &F,
    mut current: S::Value,
    mut message: String,
) -> (S::Value, String, u32)
where
    S: Strategy,
    F: Fn(S::Value) -> CaseResult,
{
    let mut evals = 0u32;
    let mut steps = 0u32;
    'outer: loop {
        for candidate in strategy.shrink(&current) {
            if evals >= config.max_shrink_steps {
                break 'outer;
            }
            evals += 1;
            if let CaseResult::Fail(msg) = eval(f, candidate.clone()) {
                current = candidate;
                message = msg;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, message, steps)
}

/// Run a property and panic with the shrunk counterexample on failure.
pub fn run<S, F>(name: &str, config: &Config, strategy: &S, f: F)
where
    S: Strategy,
    F: Fn(S::Value) -> CaseResult,
{
    if let Err(fail) = run_collect(name, config, strategy, f) {
        panic!(
            "[proptiny] property `{name}` failed.\n  minimal case: {}\n  error: {}\n  \
             (base seed {}, {} shrink steps; seeds are fixed — rerunning reproduces this)",
            fail.minimal, fail.message, fail.seed, fail.shrink_steps
        );
    }
}

/// Declare property tests.
///
/// ```
/// use proptiny::prelude::*;
///
/// proptiny! {
///     #![proptiny_config(Config::with_cases(24))]
///
///     fn prop_roundtrip(a in any::<u64>(), n in 1usize..50) {
///         prop_assume!(n % 2 == 1);
///         prop_assert_eq!(a.rotate_left(n as u32).rotate_right(n as u32), a);
///     }
/// }
/// # prop_roundtrip();
/// ```
///
/// In a test module each `fn` would carry `#[test]`; attributes written
/// above a property are forwarded to the generated function.
#[macro_export]
macro_rules! proptiny {
    (
        @internal $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let strategy = ( $($strat,)+ );
                $crate::run(
                    stringify!($name),
                    &config,
                    &strategy,
                    |( $($arg,)+ )| {
                        $body
                        #[allow(unreachable_code)]
                        $crate::CaseResult::Pass
                    },
                );
            }
        )+
    };
    (#![proptiny_config($cfg:expr)] $($rest:tt)+) => {
        $crate::proptiny!(@internal $cfg; $($rest)+);
    };
    ($($rest:tt)+) => {
        $crate::proptiny!(@internal $crate::Config::default(); $($rest)+);
    };
}

/// Reject the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::CaseResult::Reject;
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return $crate::CaseResult::fail(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return $crate::CaseResult::fail(format!(
                "assertion failed: {} ({}:{})", format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return $crate::CaseResult::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return $crate::CaseResult::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r,
                file!(), line!()
            ));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return $crate::CaseResult::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?} ({}:{})",
                stringify!($left), stringify!($right), l, file!(), line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{run_collect, strategy, CaseResult};

    // The harness testing itself: these properties hold.
    proptiny! {
        #[test]
        fn prop_addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }

        #[test]
        fn prop_ranges_respect_bounds(x in 10u64..20, y in 3u8..=7) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((3..=7).contains(&y));
        }

        #[test]
        fn prop_vec_lengths(v in collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn prop_bitstr_alphabet(s in "[01]{0,16}") {
            prop_assert!(s.len() <= 16);
            prop_assert!(s.chars().all(|c| c == '0' || c == '1'));
        }

        #[test]
        fn prop_assume_filters(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptiny! {
        #![proptiny_config(Config::with_cases(7))]

        #[test]
        fn prop_config_applies(_x in any::<u64>()) {
            std::thread_local! {
                static CALLS: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
            }
            let calls = CALLS.with(|c| { c.set(c.get() + 1); c.get() });
            prop_assert!(calls <= 7);
        }
    }

    /// Satellite requirement: a deliberately failing property shrinks
    /// to a minimal case.
    #[test]
    fn failing_property_shrinks_to_minimal_int() {
        // "all u64 < 1000" — minimal counterexample is exactly 1000.
        let fail = run_collect(
            "shrink_to_1000",
            &Config::default(),
            &(strategy::any::<u64>(),),
            |(v,)| {
                if v < 1000 {
                    CaseResult::Pass
                } else {
                    CaseResult::Fail("too big".into())
                }
            },
        )
        .expect_err("property must fail");
        assert_eq!(fail.minimal, "(1000,)");
        assert!(fail.shrink_steps > 0, "shrinking must have made progress");
    }

    #[test]
    fn failing_vec_property_shrinks_elements_and_length() {
        // "no vec contains an element ≥ 50" — minimal case is [50].
        let fail = run_collect(
            "shrink_vec",
            &Config { max_shrink_steps: 4096, ..Config::default() },
            &(collection::vec(0u32..1000, 0..40),),
            |(v,): (Vec<u32>,)| {
                if v.iter().any(|&x| x >= 50) {
                    CaseResult::Fail("contains large element".into())
                } else {
                    CaseResult::Pass
                }
            },
        )
        .expect_err("property must fail");
        assert_eq!(fail.minimal, "([50],)");
    }

    #[test]
    fn panics_are_caught_and_shrunk() {
        let fail = run_collect(
            "shrink_panic",
            &Config::default(),
            &(0u64..=u64::MAX,),
            |(v,)| {
                assert!(v < 12, "boom");
                CaseResult::Pass
            },
        )
        .expect_err("property must fail");
        assert_eq!(fail.minimal, "(12,)");
        assert!(fail.message.contains("panic"));
    }

    #[test]
    fn tuple_shrink_is_componentwise() {
        // Fails whenever a >= 10 (b irrelevant): minimal (10, 0).
        let fail = run_collect(
            "shrink_tuple",
            &Config::default(),
            &(any::<u32>(), any::<u32>()),
            |(a, _b)| {
                if a >= 10 {
                    CaseResult::Fail("a too big".into())
                } else {
                    CaseResult::Pass
                }
            },
        )
        .expect_err("property must fail");
        assert_eq!(fail.minimal, "(10, 0)");
    }

    #[test]
    fn vacuous_property_reports_reject_exhaustion() {
        let fail = run_collect(
            "always_rejected",
            &Config { cases: 4, max_reject_factor: 2, ..Config::default() },
            &(any::<u64>(),),
            |_| CaseResult::Reject,
        )
        .expect_err("must exhaust rejects");
        assert!(fail.message.contains("vacuous"));
    }

    #[test]
    fn fixed_seed_runs_are_reproducible() {
        let observe = || {
            let seen = std::cell::RefCell::new(Vec::new());
            let _ = run_collect(
                "observe_cases",
                &Config::with_cases(16),
                &(any::<u64>(),),
                |(v,)| {
                    seen.borrow_mut().push(v);
                    CaseResult::Pass
                },
            );
            seen.into_inner()
        };
        assert_eq!(observe(), observe());
    }
}
