//! Generator combinators: how test inputs are produced and shrunk.

use detrand::rngs::StdRng;
use detrand::Rng;
use std::marker::PhantomData;

/// A value generator with shrinking.
///
/// `generate` draws one value from the deterministic RNG; `shrink`
/// proposes simpler candidates for a failing value, most aggressive
/// first. The runner keeps any candidate that still fails.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of `v`, most aggressive first.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Shrink candidates for an integer, moving from `v` toward `origin`
/// by binary subdivision: `origin, v − d/2, v − d/4, …, v ∓ 1` where
/// `d = v − origin`. Greedy descent over this list converges to the
/// boundary of an up-closed failure region in O(log²) evaluations.
fn shrink_int_i128(v: i128, origin: i128) -> Vec<i128> {
    let mut out = Vec::new();
    let mut d = v - origin;
    while d != 0 {
        out.push(v - d);
        d /= 2;
    }
    out
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_int_i128(*v as i128, self.start as i128)
                    .into_iter()
                    .map(|x| x as $t)
                    .collect()
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                shrink_int_i128(*v as i128, *self.start() as i128)
                    .into_iter()
                    .map(|x| x as $t)
                    .collect()
            }
        }

        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
            fn shrink(&self) -> Vec<$t> {
                shrink_int_i128(*self as i128, 0).into_iter().map(|x| x as $t).collect()
            }
        }
    )*};
}
impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical whole-domain generator, usable via [`any`].
pub trait Arbitrary: Clone + std::fmt::Debug {
    /// Draw a value from the full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;

    /// Candidate simplifications, most aggressive first.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
    fn shrink(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Whole-domain strategy for an [`Arbitrary`] type: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        v.shrink()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident / $idx:tt),+),)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&v.$idx) {
                        let mut next = v.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
);

/// The parsed form of a `"[chars]{lo,hi}"` pattern.
struct CharClassPattern {
    alphabet: Vec<char>,
    min_len: usize,
    max_len: usize,
}

/// Parse the restricted regex subset the workspace uses: one character
/// class with a repetition count — `[01]{0,20}`, `[abc]{4}`.
fn parse_char_class(pattern: &str) -> CharClassPattern {
    fn bad(pattern: &str) -> ! {
        panic!(
            "proptiny string strategies support only \"[chars]{{lo,hi}}\" patterns, got {pattern:?}"
        )
    }
    let Some(rest) = pattern.strip_prefix('[') else { bad(pattern) };
    let Some((class, reps)) = rest.split_once(']') else { bad(pattern) };
    let alphabet: Vec<char> = class.chars().collect();
    if alphabet.is_empty() {
        bad(pattern);
    }
    let Some(reps) = reps.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
        bad(pattern)
    };
    let parse = |s: &str| s.parse::<usize>().ok();
    let (min_len, max_len) = match reps.split_once(',') {
        Some((lo, hi)) => match (parse(lo), parse(hi)) {
            (Some(lo), Some(hi)) => (lo, hi),
            _ => bad(pattern),
        },
        None => match parse(reps) {
            Some(n) => (n, n),
            None => bad(pattern),
        },
    };
    assert!(min_len <= max_len, "empty repetition range in {pattern:?}");
    CharClassPattern { alphabet, min_len, max_len }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let p = parse_char_class(self);
        let len = rng.gen_range(p.min_len..=p.max_len);
        (0..len).map(|_| p.alphabet[rng.gen_range(0..p.alphabet.len())]).collect()
    }

    fn shrink(&self, v: &String) -> Vec<String> {
        let p = parse_char_class(self);
        let chars: Vec<char> = v.chars().collect();
        let mut out = Vec::new();
        // Shorten (respecting the minimum), then simplify characters
        // toward the first alphabet symbol.
        for keep in shrink_int_i128(chars.len() as i128, p.min_len as i128) {
            out.push(chars[..keep as usize].iter().collect());
        }
        for (i, c) in chars.iter().enumerate() {
            if *c != p.alphabet[0] {
                let mut next = chars.clone();
                next[i] = p.alphabet[0];
                out.push(next.into_iter().collect());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::SeedableRng;

    #[test]
    fn int_shrink_moves_toward_origin() {
        let s = 0u64..1000;
        let c = s.shrink(&700);
        assert_eq!(c[0], 0, "most aggressive candidate first");
        assert!(c.contains(&699), "unit step present");
        assert!(c.iter().all(|&x| x < 700));
        assert!(s.shrink(&0).is_empty(), "origin does not shrink");
    }

    #[test]
    fn range_shrink_respects_start() {
        let s = 10u32..100;
        assert!(s.shrink(&10).is_empty());
        assert!(s.shrink(&40).iter().all(|&x| (10..40).contains(&x)));
    }

    #[test]
    fn signed_shrink_handles_negatives() {
        // Range strategies shrink toward the range start.
        let c = (-100i64..100).shrink(&-80);
        assert!(c.iter().all(|&x| (-100..-80).contains(&x)));
        assert_eq!(c[0], -100);
        let c0 = <i64 as Arbitrary>::shrink(&-5);
        assert_eq!(c0[0], 0);
        assert!(c0.contains(&-4));
    }

    #[test]
    fn char_class_parser_accepts_workspace_patterns() {
        let p = parse_char_class("[01]{0,20}");
        assert_eq!(p.alphabet, vec!['0', '1']);
        assert_eq!((p.min_len, p.max_len), (0, 20));
        let p = parse_char_class("[abc]{4}");
        assert_eq!((p.min_len, p.max_len), (4, 4));
    }

    #[test]
    #[should_panic(expected = "proptiny string strategies")]
    fn char_class_parser_rejects_general_regex() {
        parse_char_class("a+b*");
    }

    #[test]
    fn bitstr_generates_within_spec() {
        let mut rng = StdRng::seed_from_u64(3);
        let s: &'static str = "[01]{2,5}";
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.chars().all(|c| c == '0' || c == '1'));
        }
    }

    #[test]
    fn tuple_generate_and_shrink() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = (0u32..10, 0u32..10);
        let v = s.generate(&mut rng);
        assert!(v.0 < 10 && v.1 < 10);
        let c = s.shrink(&(3, 4));
        assert!(c.iter().all(|&(a, b)| (a == 3) ^ (b == 4) || a < 3 || b < 4));
        assert!(c.iter().any(|&(a, b)| a < 3 && b == 4));
        assert!(c.iter().any(|&(a, b)| a == 3 && b < 4));
    }
}
