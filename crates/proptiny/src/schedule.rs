//! Schedule strategies: weighted sequences of operations.
//!
//! The invariant auditor (tests crate) explores random interleavings of
//! protocol operations — captures, movements, churn, fault injection —
//! and needs failing interleavings to shrink to a minimal reproducer.
//! [`schedule`] builds a [`Strategy`] over `Vec<Op>` from a weighted
//! table of op generators; shrinking removes whole operations first
//! (the highest-leverage cut for a schedule) and then simplifies the
//! surviving operations in place through a caller-supplied per-op
//! shrinker, so the minimal case is "fewest ops, each as tame as
//! possible while still failing".

use crate::strategy::Strategy;
use detrand::rngs::StdRng;
use detrand::Rng;
use std::ops::Range;

/// Generator closure for one schedule operation.
type OpGen<Op> = Box<dyn Fn(&mut StdRng) -> Op>;

/// Per-op shrinker: candidate simplifications, most aggressive first.
type OpShrink<Op> = Box<dyn Fn(&Op) -> Vec<Op>>;

/// A weighted table of operation generators producing `Vec<Op>`
/// schedules. Built by [`schedule`]; add entries with
/// [`with_op`](ScheduleStrategy::with_op).
pub struct ScheduleStrategy<Op> {
    ops: Vec<(u32, OpGen<Op>)>,
    total_weight: u64,
    len: Range<usize>,
    shrink_op: Option<OpShrink<Op>>,
}

/// A schedule of `len.start..len.end` operations, each drawn from a
/// weighted generator table (empty until `with_op` entries are added).
///
/// # Panics
/// If `len` is empty.
pub fn schedule<Op>(len: Range<usize>) -> ScheduleStrategy<Op> {
    assert!(len.start < len.end, "schedule strategy: empty length range");
    ScheduleStrategy { ops: Vec::new(), total_weight: 0, len, shrink_op: None }
}

impl<Op> ScheduleStrategy<Op> {
    /// Add an operation generator drawn with probability
    /// `weight / total_weight`.
    ///
    /// # Panics
    /// If `weight` is zero (a zero-weight op can never be generated, so
    /// asking for one is a bug in the table).
    pub fn with_op(mut self, weight: u32, gen: impl Fn(&mut StdRng) -> Op + 'static) -> Self {
        assert!(weight > 0, "schedule strategy: op weight must be positive");
        self.total_weight += weight as u64;
        self.ops.push((weight, Box::new(gen)));
        self
    }

    /// Install the per-op shrinker. Without one, shrinking still
    /// removes operations but leaves survivors untouched.
    pub fn with_op_shrink(mut self, shrink: impl Fn(&Op) -> Vec<Op> + 'static) -> Self {
        self.shrink_op = Some(Box::new(shrink));
        self
    }

    fn pick(&self, rng: &mut StdRng) -> Op {
        debug_assert!(self.total_weight > 0, "schedule strategy: no ops registered");
        let mut roll = rng.gen_range(0..self.total_weight);
        for (weight, gen) in &self.ops {
            if roll < *weight as u64 {
                return gen(rng);
            }
            roll -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

impl<Op: Clone + std::fmt::Debug> Strategy for ScheduleStrategy<Op> {
    type Value = Vec<Op>;

    fn generate(&self, rng: &mut StdRng) -> Vec<Op> {
        assert!(self.total_weight > 0, "schedule strategy: no ops registered");
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.pick(rng)).collect()
    }

    fn shrink(&self, v: &Vec<Op>) -> Vec<Vec<Op>> {
        let lo = self.len.start;
        let mut out = Vec::new();
        // 1. Aggressive length cuts: keep the prefix (schedules are
        //    causal, so a prefix is always a valid schedule), then the
        //    suffix — a violation triggered late may not need the warmup.
        if v.len() > lo {
            out.push(v[..lo].to_vec());
            let half = lo.max(v.len() / 2);
            if half < v.len() && half > lo {
                out.push(v[..half].to_vec());
                out.push(v[v.len() - half..].to_vec());
            }
        }
        // 2. Remove single operations (isolates the load-bearing ops).
        if v.len() > lo {
            for i in 0..v.len() {
                let mut next = v.clone();
                next.remove(i);
                out.push(next);
            }
        }
        // 3. Simplify surviving operations in place.
        if let Some(shrink_op) = &self.shrink_op {
            for (i, op) in v.iter().enumerate() {
                for candidate in shrink_op(op) {
                    let mut next = v.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_collect, CaseResult, Config};
    use detrand::SeedableRng;

    #[derive(Clone, Debug, PartialEq, Eq)]
    enum Op {
        Capture(u32),
        Move(u32),
        Crash(u32),
    }

    fn demo() -> ScheduleStrategy<Op> {
        schedule(1..12)
            .with_op(6, |rng| Op::Capture(rng.gen_range(0..16)))
            .with_op(3, |rng| Op::Move(rng.gen_range(0..16)))
            .with_op(1, |rng| Op::Crash(rng.gen_range(0..4)))
            .with_op_shrink(|op| match op {
                // A crash simplifies to a benign capture, then selectors
                // shrink toward zero.
                Op::Crash(n) => {
                    let mut c = vec![Op::Capture(*n)];
                    c.extend((0..*n).map(Op::Crash));
                    c
                }
                Op::Move(n) => (0..*n).map(Op::Move).collect(),
                Op::Capture(n) => (0..*n).map(Op::Capture).collect(),
            })
    }

    #[test]
    fn generates_lengths_and_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = demo();
        let (mut captures, mut moves, mut crashes) = (0u32, 0u32, 0u32);
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((1..12).contains(&v.len()));
            for op in v {
                match op {
                    Op::Capture(_) => captures += 1,
                    Op::Move(_) => moves += 1,
                    Op::Crash(_) => crashes += 1,
                }
            }
        }
        // 6:3:1 weighting — order must hold with a wide margin.
        assert!(captures > moves && moves > crashes, "{captures}/{moves}/{crashes}");
        assert!(crashes > 0, "rare ops still reachable");
    }

    #[test]
    fn deterministic_under_seed() {
        let s = demo();
        let a = s.generate(&mut StdRng::seed_from_u64(9));
        let b = s.generate(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn shrink_respects_min_len_and_offers_removals() {
        let s = demo();
        let v = vec![Op::Capture(3), Op::Crash(2), Op::Move(1)];
        let candidates = s.shrink(&v);
        assert!(candidates.iter().all(|c| !c.is_empty()), "min length 1 respected");
        // Every single-op removal is offered.
        for i in 0..v.len() {
            let mut removed = v.clone();
            removed.remove(i);
            assert!(candidates.contains(&removed), "removal of op {i} offered");
        }
        // Per-op shrinking turns the crash into a capture somewhere.
        assert!(candidates
            .iter()
            .any(|c| c.len() == 3 && matches!(c[1], Op::Capture(2))));
    }

    #[test]
    fn failing_schedule_shrinks_to_single_culprit_op() {
        // "no schedule crashes node 0" — minimal reproducer is exactly
        // [Crash(0)]: removal strips the noise, per-op shrinking tames
        // the selector.
        let fail = run_collect(
            "schedule_shrinks_to_crash",
            &Config { max_shrink_steps: 4096, ..Config::default() },
            &(demo(),),
            |(ops,): (Vec<Op>,)| {
                if ops.iter().any(|op| matches!(op, Op::Crash(_))) {
                    CaseResult::Fail("crashed".into())
                } else {
                    CaseResult::Pass
                }
            },
        )
        .expect_err("property must fail");
        assert_eq!(fail.minimal, "([Crash(0)],)");
        assert!(fail.shrink_steps > 0);
    }

    #[test]
    #[should_panic(expected = "no ops registered")]
    fn empty_table_rejected_at_generate() {
        let s: ScheduleStrategy<Op> = schedule(1..4);
        s.generate(&mut StdRng::seed_from_u64(0));
    }
}
