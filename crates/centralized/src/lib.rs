//! The centralized baseline: a data warehouse built on the temporal RFID
//! model of Wang & Liu (VLDB'05) — the paper's reference \[31\].
//!
//! §V-B: "we used the model proposed in \[31\] to build the same data in a
//! centralized MySQL database". Every organization publishes its
//! observations to one warehouse; traceability queries run as temporal
//! SQL over two tables:
//!
//! * `OBSERVATION(epc, reader, time)` — the raw reading log;
//! * `STAY(epc, location, t_start, t_end)` — coalesced stays, the
//!   temporal table \[31\] derives from observations.
//!
//! [`Warehouse`] implements the tables with real data structures and
//! answers `L`/`TR` correctly (it implements the MOODS traits). Query
//! *timing* follows an explicit, calibrated cost model
//! ([`CostModel`]): the paper measured that centralized trace-query time
//! "is relevant to the size of the database, which is proportional to
//! the size of the network" and grows *ultralinearly* (§V-B, Fig. 7) —
//! the behaviour of temporal self-joins that scan and sort. We charge
//! `base + per_row·rows·log₂(rows)`, the standard sort-scan cost, which
//! reproduces exactly that shape. An `IndexSeek` plan is also provided
//! for ablations (what a perfectly indexed warehouse could do — useful
//! to show the paper's comparison is against its measured baseline, not
//! an information-theoretic optimum).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use moods::{Locate, ObjectId, Observation, Path, SiteId, Trace, Visit};
use simnet::SimTime;
use std::collections::HashMap;

/// One row of the `OBSERVATION` table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObservationRow {
    /// The tagged object (EPC, hashed).
    pub object: ObjectId,
    /// Where it was read.
    pub site: SiteId,
    /// When it was read.
    pub time: SimTime,
}

/// One row of the `STAY` temporal table: a coalesced stay interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StayRow {
    /// The object.
    pub object: ObjectId,
    /// The location of the stay.
    pub site: SiteId,
    /// Interval start (arrival).
    pub t_start: SimTime,
    /// Interval end — `None` while the stay is open (current location).
    pub t_end: Option<SimTime>,
}

/// Query-execution plan, for cost accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Plan {
    /// The measured baseline: temporal self-join that scans and sorts
    /// the stay table (cost `Θ(R log R)` in the table size `R`) — the
    /// ultralinear growth of Fig. 7.
    FullScan,
    /// Ablation: a clustered index on `epc` (cost `Θ(log R + k)` for a
    /// k-row answer).
    IndexSeek,
}

/// Calibrated cost model for warehouse queries.
///
/// Defaults are tuned so that, at the paper's scales (64–512 nodes ×
/// 500–5 000 objects), the centralized curve starts below the P2P curve
/// and overtakes it as the database grows — the crossover §V-B reports.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Fixed per-query overhead (parse, plan, client round-trip).
    pub base: SimTime,
    /// Nanoseconds charged per row·log₂(row) unit under [`Plan::FullScan`].
    pub per_row_log_ns: f64,
    /// Nanoseconds per B-tree level / fetched row under [`Plan::IndexSeek`].
    pub per_seek_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            base: SimTime::from_millis(5), // one client↔server round trip
            per_row_log_ns: 2.4,
            per_seek_ns: 600.0,
        }
    }
}

impl CostModel {
    /// Time for one trace/locate query over a table of `rows` rows
    /// returning `answer_rows`.
    pub fn query_time(&self, plan: Plan, rows: usize, answer_rows: usize) -> SimTime {
        let ns = match plan {
            Plan::FullScan => {
                let r = rows.max(2) as f64;
                self.per_row_log_ns * r * r.log2()
            }
            Plan::IndexSeek => {
                let levels = (rows.max(2) as f64).log2().ceil();
                self.per_seek_ns * (levels + answer_rows as f64)
            }
        };
        self.base + SimTime::from_micros((ns / 1_000.0) as u64)
    }
}

/// The central data warehouse.
#[derive(Clone, Debug)]
pub struct Warehouse {
    observations: Vec<ObservationRow>,
    /// Stay intervals per object, arrival-ordered (the clustered index).
    stays: HashMap<ObjectId, Vec<StayRow>>,
    stay_rows: usize,
    cost: CostModel,
    plan: Plan,
}

impl Default for Warehouse {
    fn default() -> Self {
        Warehouse::new()
    }
}

impl Warehouse {
    /// Empty warehouse with the default cost model and the measured
    /// (`FullScan`) plan.
    pub fn new() -> Warehouse {
        Warehouse::with_model(CostModel::default(), Plan::FullScan)
    }

    /// Warehouse with an explicit cost model and plan.
    pub fn with_model(cost: CostModel, plan: Plan) -> Warehouse {
        Warehouse {
            observations: Vec::new(),
            stays: HashMap::new(),
            stay_rows: 0,
            cost,
            plan,
        }
    }

    /// Ingest one observation: append to `OBSERVATION` and maintain the
    /// `STAY` table as \[31\] prescribes (close the open stay, open a new
    /// one).
    pub fn ingest(&mut self, object: ObjectId, site: SiteId, time: SimTime) {
        self.observations.push(ObservationRow { object, site, time });
        let stays = self.stays.entry(object).or_default();
        if let Some(last) = stays.last_mut() {
            debug_assert!(time >= last.t_start, "out-of-order ingest");
            if last.site == site && last.t_end.is_none() {
                return; // re-read at the same location: stay continues
            }
            if last.t_end.is_none() {
                last.t_end = Some(time);
            }
        }
        stays.push(StayRow { object, site, t_start: time, t_end: None });
        self.stay_rows += 1;
    }

    /// Ingest a MOODS observation event.
    pub fn ingest_observation(&mut self, obs: &Observation) {
        self.ingest(obs.object, obs.site(), obs.time);
    }

    /// Rows in the `OBSERVATION` table.
    pub fn observation_rows(&self) -> usize {
        self.observations.len()
    }

    /// Rows in the `STAY` table (what queries scan).
    pub fn stay_rows(&self) -> usize {
        self.stay_rows
    }

    /// The time the cost model charges for one trace query right now.
    pub fn trace_query_time(&self, answer_rows: usize) -> SimTime {
        self.cost.query_time(self.plan, self.stay_rows, answer_rows)
    }

    /// `L(o, t)` with the charged query time.
    pub fn locate_timed(&self, object: ObjectId, t: SimTime) -> (Option<SiteId>, SimTime) {
        let ans = self.locate(object, t);
        (ans, self.cost.query_time(self.plan, self.stay_rows, usize::from(ans.is_some())))
    }

    /// `TR(o, t0, t1)` with the charged query time.
    pub fn trace_timed(&self, object: ObjectId, t0: SimTime, t1: SimTime) -> (Path, SimTime) {
        let p = self.trace(object, t0, t1);
        let t = self.cost.query_time(self.plan, self.stay_rows, p.len());
        (p, t)
    }
}

impl Locate for Warehouse {
    fn locate(&self, object: ObjectId, t: SimTime) -> Option<SiteId> {
        let stays = self.stays.get(&object)?;
        let idx = stays.partition_point(|s| s.t_start <= t);
        if idx == 0 {
            None
        } else {
            Some(stays[idx - 1].site)
        }
    }
}

impl Trace for Warehouse {
    fn trace(&self, object: ObjectId, t0: SimTime, t1: SimTime) -> Path {
        if t0 > t1 {
            return Vec::new();
        }
        let Some(stays) = self.stays.get(&object) else {
            return Vec::new();
        };
        stays
            .iter()
            .map(|s| Visit { site: s.site, arrived: s.t_start, departed: s.t_end })
            .filter(|v| v.overlaps(t0, t1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moods::MovementLog;
    use proptiny::prelude::*;
    use detrand::{rngs::StdRng, Rng, SeedableRng};
    use simnet::time::{ms, secs};

    fn obj(n: u64) -> ObjectId {
        ObjectId::from_raw(&n.to_be_bytes())
    }

    #[test]
    fn stays_coalesce_rereads() {
        let mut w = Warehouse::new();
        w.ingest(obj(1), SiteId(0), ms(10));
        w.ingest(obj(1), SiteId(0), ms(20)); // re-read, same dock
        w.ingest(obj(1), SiteId(1), ms(30));
        assert_eq!(w.observation_rows(), 3);
        assert_eq!(w.stay_rows(), 2, "re-reads coalesce into one stay");
        let p = w.trace(obj(1), SimTime::ZERO, SimTime::INFINITY);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].departed, Some(ms(30)));
        assert_eq!(p[1].departed, None);
    }

    #[test]
    fn locate_matches_interval_semantics() {
        let mut w = Warehouse::new();
        w.ingest(obj(1), SiteId(0), ms(10));
        w.ingest(obj(1), SiteId(1), ms(20));
        assert_eq!(w.locate(obj(1), ms(9)), None);
        assert_eq!(w.locate(obj(1), ms(10)), Some(SiteId(0)));
        assert_eq!(w.locate(obj(1), ms(19)), Some(SiteId(0)));
        assert_eq!(w.locate(obj(1), ms(20)), Some(SiteId(1)));
        assert_eq!(w.locate(obj(2), ms(20)), None);
    }

    #[test]
    fn fullscan_cost_is_superlinear() {
        let m = CostModel::default();
        let t1 = m.query_time(Plan::FullScan, 100_000, 10).as_micros() as f64;
        let t2 = m.query_time(Plan::FullScan, 200_000, 10).as_micros() as f64;
        assert!(t2 > 2.0 * (t1 - 5_000.0) + 5_000.0 - 1.0, "doubling rows must more than double work");
        // And the base dominates tiny tables.
        assert_eq!(m.query_time(Plan::FullScan, 0, 0).as_millis(), 5);
    }

    #[test]
    fn index_seek_is_logarithmic() {
        let m = CostModel::default();
        let t_small = m.query_time(Plan::IndexSeek, 1_000, 10);
        let t_big = m.query_time(Plan::IndexSeek, 1_000_000, 10);
        // 1000× more rows adds only ~10 levels of B-tree.
        assert!(t_big.as_micros() - t_small.as_micros() < 20);
    }

    #[test]
    fn paper_scale_crossover_exists() {
        // At 64 nodes × 5000 objects the warehouse must beat a ~75 ms
        // P2P query; at 512 × 5000 it must lose (Fig. 7a).
        let m = CostModel::default();
        let p2p_typical = ms(75);
        let small = m.query_time(Plan::FullScan, 64 * 5_000, 10);
        let large = m.query_time(Plan::FullScan, 512 * 5_000, 10);
        assert!(small < p2p_typical, "centralized should win small: {small}");
        assert!(large > p2p_typical, "centralized should lose large: {large}");
    }

    #[test]
    fn timed_queries_report_model_time() {
        let mut w = Warehouse::new();
        for i in 0..100u64 {
            w.ingest(obj(i), SiteId((i % 7) as u32), ms(i));
        }
        let (ans, t) = w.locate_timed(obj(5), ms(1_000));
        assert_eq!(ans, Some(SiteId(5)));
        assert_eq!(t, w.cost.query_time(Plan::FullScan, w.stay_rows(), 1));
        let (p, t2) = w.trace_timed(obj(5), SimTime::ZERO, SimTime::INFINITY);
        assert_eq!(p.len(), 1);
        assert!(t2 >= t);
    }

    proptiny! {
        /// The warehouse agrees with the MOODS oracle on arbitrary
        /// schedules (both are "centralized", but they maintain
        /// different tables — coalesced stays vs raw arrivals).
        #[test]
        fn prop_agrees_with_movement_log(
            seed in any::<u64>(),
            n_moves in 1usize..60,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut w = Warehouse::new();
            let mut log = MovementLog::new();
            let mut t = 0u64;
            let mut last_site: Option<SiteId> = None;
            for _ in 0..n_moves {
                t += rng.gen_range(1u64..100);
                // Avoid consecutive same-site arrivals: the warehouse
                // coalesces them (a DB property the raw log lacks).
                let mut site = SiteId(rng.gen_range(0..8));
                if last_site == Some(site) {
                    site = SiteId((site.0 + 1) % 8);
                }
                last_site = Some(site);
                w.ingest(obj(1), site, secs(t));
                log.record(obj(1), site, secs(t));
            }
            for probe in (0..t + 100).step_by(13) {
                prop_assert_eq!(
                    w.locate(obj(1), secs(probe)),
                    log.locate(obj(1), secs(probe))
                );
            }
            prop_assert_eq!(
                w.trace(obj(1), SimTime::ZERO, SimTime::INFINITY),
                log.trace(obj(1), SimTime::ZERO, SimTime::INFINITY)
            );
        }
    }
}
