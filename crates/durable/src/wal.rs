//! The write-ahead log: an append-only file of checksummed records.
//!
//! On-disk layout, repeated until end of file:
//!
//! ```text
//! ┌─────────┬─────────┬─────────┬───────────────┐
//! │ len u32 │ crc u32 │ lsn u64 │ payload bytes │
//! └─────────┴─────────┴─────────┴───────────────┘
//!            crc covers ──────────────────────▶
//! ```
//!
//! `len` counts the body (`lsn` + payload, so `len ≥ 8`); the CRC-32
//! covers the body, so a flipped bit anywhere — length, sequence number
//! or payload — fails verification. [`Wal::open`] scans the file and
//! **truncates at the first invalid record**: a torn tail from a crash
//! mid-`write` disappears, and everything before it is intact. LSNs
//! must be strictly increasing; a non-monotonic record is treated as
//! corruption like any other.
//!
//! Durability is two-layered: every [`Wal::append`] issues the
//! `write(2)` immediately (so the record survives a *process* crash in
//! every mode — the page cache belongs to the kernel, not the process),
//! while [`FsyncMode`] only controls when `fsync` pushes it to stable
//! storage for *power-loss* durability.

use crate::crc::crc32;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Upper bound on one record's body; matches the transport's frame cap
/// so anything the daemon can receive can be logged.
pub const MAX_RECORD_BYTES: usize = 16 * 1024 * 1024;

/// When `fsync` runs relative to appends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncMode {
    /// `fsync` after every append — survives power loss at ack time.
    Always,
    /// `fsync` at batch points (snapshots, explicit [`Wal::sync`],
    /// clean shutdown). Process crashes lose nothing; power loss can
    /// lose the un-synced suffix — which recovery then truncates.
    Batch,
    /// Never `fsync` (benchmarks and tests on tmpfs).
    Never,
}

impl FsyncMode {
    /// Parse a `--fsync` flag value.
    pub fn parse(s: &str) -> Result<FsyncMode, String> {
        match s {
            "always" => Ok(FsyncMode::Always),
            "batch" => Ok(FsyncMode::Batch),
            "never" => Ok(FsyncMode::Never),
            other => Err(format!("fsync mode `{other}` is not always|batch|never")),
        }
    }
}

/// One recovered record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalEntry {
    /// Log sequence number (strictly increasing, 1-based).
    pub lsn: u64,
    /// The record payload as appended.
    pub payload: Vec<u8>,
}

/// An open write-ahead log positioned for appends.
pub struct Wal {
    file: File,
    path: PathBuf,
    next_lsn: u64,
    mode: FsyncMode,
    dirty: bool,
}

impl Wal {
    /// Open (creating if absent) the log at `path`, validate every
    /// record, truncate the file at the first invalid one, and return
    /// the log plus the surviving entries. `min_next_lsn` lower-bounds
    /// the next LSN handed out (pass `snapshot_lsn + 1` so compacted
    /// history is never renumbered).
    pub fn open(
        path: &Path,
        mode: FsyncMode,
        min_next_lsn: u64,
    ) -> io::Result<(Wal, Vec<WalEntry>)> {
        let mut file = OpenOptions::new().read(true).write(true).create(true).open(path)?;
        let mut raw = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut raw)?;

        let mut entries = Vec::new();
        let mut pos = 0usize;
        let mut valid_end = 0usize;
        let mut last_lsn = 0u64;
        while raw.len() - pos >= 8 {
            let len = u32::from_be_bytes(raw[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_be_bytes(raw[pos + 4..pos + 8].try_into().unwrap());
            if len < 8 || len > MAX_RECORD_BYTES {
                // A hostile/corrupt length field. The cap check runs
                // *before* `len` feeds any slice arithmetic, so a record
                // claiming near-`u32::MAX` bytes is rejected here rather
                // than sizing an allocation — and unlike a torn tail
                // (which a crash produces routinely and recovery prunes
                // in silence), no append() ever wrote this, so say so.
                eprintln!(
                    "wal: {}: record at byte {pos} claims a {len}-byte body \
                     (valid range is 8..={MAX_RECORD_BYTES}); truncating log here",
                    path.display()
                );
                break;
            }
            if raw.len() - pos - 8 < len {
                break; // torn tail (crash mid-write)
            }
            let body = &raw[pos + 8..pos + 8 + len];
            if crc32(body) != crc {
                break; // bit flip (anywhere in the body) or torn write
            }
            let lsn = u64::from_be_bytes(body[..8].try_into().unwrap());
            if lsn <= last_lsn {
                // Checksummed yet out of order: not something append()
                // produces, so flag it like the hostile length above.
                eprintln!(
                    "wal: {}: record at byte {pos} has non-monotonic lsn \
                     {lsn} (after {last_lsn}); truncating log here",
                    path.display()
                );
                break;
            }
            last_lsn = lsn;
            entries.push(WalEntry { lsn, payload: body[8..].to_vec() });
            pos += 8 + len;
            valid_end = pos;
        }
        if valid_end < raw.len() {
            file.set_len(valid_end as u64)?;
        }
        file.seek(SeekFrom::End(0))?;

        let next_lsn = (last_lsn + 1).max(min_next_lsn).max(1);
        let wal =
            Wal { file, path: path.to_path_buf(), next_lsn, mode, dirty: false };
        Ok((wal, entries))
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// LSN the next append will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// LSN of the most recently appended (or recovered) record; 0 when
    /// the log has never held one.
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Append one record; the `write(2)` happens before return, the
    /// `fsync` per [`FsyncMode`]. Returns the record's LSN.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        assert!(payload.len() <= MAX_RECORD_BYTES - 8, "record exceeds MAX_RECORD_BYTES");
        let lsn = self.next_lsn;
        let len = (8 + payload.len()) as u32;
        let mut rec = Vec::with_capacity(16 + payload.len());
        rec.extend_from_slice(&len.to_be_bytes());
        rec.extend_from_slice(&[0; 4]); // crc placeholder
        rec.extend_from_slice(&lsn.to_be_bytes());
        rec.extend_from_slice(payload);
        let crc = crc32(&rec[8..]);
        rec[4..8].copy_from_slice(&crc.to_be_bytes());
        self.file.write_all(&rec)?;
        match self.mode {
            FsyncMode::Always => self.file.sync_data()?,
            FsyncMode::Batch => self.dirty = true,
            FsyncMode::Never => {}
        }
        self.next_lsn += 1;
        Ok(lsn)
    }

    /// Group-commit append: the `write(2)` happens before return, but
    /// the `fsync` is *deferred* to the caller's next [`Wal::sync`]
    /// even under [`FsyncMode::Always`] — the event loop accumulates
    /// every record drained in one wakeup, syncs once, and only then
    /// acks, so the ack-after-fsync contract holds while the fsync cost
    /// amortizes over the batch. Under [`FsyncMode::Never`] the log is
    /// never marked dirty (sync stays a no-op). Returns the LSN.
    pub fn append_deferred(&mut self, payload: &[u8]) -> io::Result<u64> {
        assert!(payload.len() <= MAX_RECORD_BYTES - 8, "record exceeds MAX_RECORD_BYTES");
        let lsn = self.next_lsn;
        let len = (8 + payload.len()) as u32;
        let mut rec = Vec::with_capacity(16 + payload.len());
        rec.extend_from_slice(&len.to_be_bytes());
        rec.extend_from_slice(&[0; 4]); // crc placeholder
        rec.extend_from_slice(&lsn.to_be_bytes());
        rec.extend_from_slice(payload);
        let crc = crc32(&rec[8..]);
        rec[4..8].copy_from_slice(&crc.to_be_bytes());
        self.file.write_all(&rec)?;
        if self.mode != FsyncMode::Never {
            self.dirty = true;
        }
        self.next_lsn += 1;
        Ok(lsn)
    }

    /// Flush batched appends to stable storage (no-op unless dirty).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            self.file.sync_data()?;
            self.dirty = false;
        }
        Ok(())
    }

    /// Compaction: drop every record (a snapshot now covers them). LSNs
    /// keep counting from where they were.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        if self.mode != FsyncMode::Never {
            self.file.sync_data()?;
        }
        self.dirty = false;
        Ok(())
    }

    /// Bytes currently in the log file.
    pub fn size_bytes(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("durable-wal-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn roundtrip_and_lsn_continuity() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, entries) = Wal::open(&path, FsyncMode::Never, 1).unwrap();
            assert!(entries.is_empty());
            assert_eq!(wal.append(b"alpha").unwrap(), 1);
            assert_eq!(wal.append(b"").unwrap(), 2);
            assert_eq!(wal.append(&[0xAB; 300]).unwrap(), 3);
        }
        let (wal, entries) = Wal::open(&path, FsyncMode::Never, 1).unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0], WalEntry { lsn: 1, payload: b"alpha".to_vec() });
        assert_eq!(entries[1].payload, Vec::<u8>::new());
        assert_eq!(entries[2].payload, vec![0xAB; 300]);
        assert_eq!(wal.next_lsn(), 4);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, _) = Wal::open(&path, FsyncMode::Never, 1).unwrap();
            wal.append(b"kept").unwrap();
            wal.append(b"also kept").unwrap();
        }
        // Simulate a crash mid-append: half a record at the tail.
        let mut raw = std::fs::read(&path).unwrap();
        let good_len = raw.len();
        raw.extend_from_slice(&[0x42; 11]);
        std::fs::write(&path, &raw).unwrap();

        let (_, entries) = Wal::open(&path, FsyncMode::Never, 1).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len as u64, "tail truncated");
    }

    #[test]
    fn bit_flip_truncates_from_flipped_record() {
        let path = tmp("flip");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, _) = Wal::open(&path, FsyncMode::Never, 1).unwrap();
            for i in 0..5u8 {
                wal.append(&[i; 32]).unwrap();
            }
        }
        let mut raw = std::fs::read(&path).unwrap();
        let rec_len = raw.len() / 5;
        raw[2 * rec_len + 20] ^= 0x10; // inside record 3's payload
        std::fs::write(&path, &raw).unwrap();

        let (wal, entries) = Wal::open(&path, FsyncMode::Never, 1).unwrap();
        assert_eq!(entries.len(), 2, "records after the flip are gone, before it intact");
        assert_eq!(entries[1].payload, vec![1u8; 32]);
        // New appends continue past the lost suffix's numbering.
        assert_eq!(wal.next_lsn(), 3);
    }

    /// A record whose length field claims an absurd (but `u32`-valid)
    /// body must be rejected by the cap check — keeping the records
    /// before it and truncating the file at the lie — without ever
    /// using the claimed length to slice or allocate.
    #[test]
    fn hostile_length_field_truncates_at_the_lie() {
        let path = tmp("hostile-len");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, _) = Wal::open(&path, FsyncMode::Never, 1).unwrap();
            wal.append(b"kept").unwrap();
        }
        let good_len = std::fs::metadata(&path).unwrap().len();
        // Forge a header claiming a ~4 GiB body (crc irrelevant: the
        // length check must fire first).
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&(u32::MAX - 5).to_be_bytes());
        raw.extend_from_slice(&0xDEAD_BEEFu32.to_be_bytes());
        raw.extend_from_slice(&[0x77; 24]);
        std::fs::write(&path, &raw).unwrap();

        let (wal, entries) = Wal::open(&path, FsyncMode::Never, 1).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].payload, b"kept".to_vec());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len, "lie truncated");
        drop(wal);

        // Same for a body length below the 8-byte lsn minimum.
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&3u32.to_be_bytes());
        raw.extend_from_slice(&[0u8; 12]);
        std::fs::write(&path, &raw).unwrap();
        let (_, entries) = Wal::open(&path, FsyncMode::Never, 1).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
    }

    #[test]
    fn min_next_lsn_respected_after_reset() {
        let path = tmp("reset");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path, FsyncMode::Batch, 1).unwrap();
        for _ in 0..4 {
            wal.append(b"x").unwrap();
        }
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.size_bytes().unwrap(), 0);
        assert_eq!(wal.append(b"y").unwrap(), 5, "lsn keeps counting across compaction");
        drop(wal);
        // Reopen as recovery would: snapshot covered lsn ≤ 4.
        let (wal, entries) = Wal::open(&path, FsyncMode::Batch, 5).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].lsn, 5);
        assert_eq!(wal.next_lsn(), 6);
    }

    #[test]
    fn non_monotonic_lsn_treated_as_corruption() {
        let path = tmp("monotonic");
        std::fs::remove_file(&path).ok();
        {
            let (mut wal, _) = Wal::open(&path, FsyncMode::Never, 1).unwrap();
            wal.append(b"one").unwrap();
        }
        // Append a structurally valid record re-using lsn 1.
        let mut rec = Vec::new();
        let body: Vec<u8> = 1u64.to_be_bytes().iter().copied().chain(*b"dup").collect();
        rec.extend_from_slice(&(body.len() as u32).to_be_bytes());
        rec.extend_from_slice(&crate::crc::crc32(&body).to_be_bytes());
        rec.extend_from_slice(&body);
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&rec);
        std::fs::write(&path, &raw).unwrap();

        let (_, entries) = Wal::open(&path, FsyncMode::Never, 1).unwrap();
        assert_eq!(entries.len(), 1, "replayed lsn rejected");
    }
}
