//! Durable node state for `peertrackd`: write-ahead log + snapshots.
//!
//! The daemon's contract (DESIGN.md §12) is *log events, replay
//! effects*: every inbound state mutation is appended to the WAL
//! **before** it is applied and acknowledged, and recovery replays the
//! surviving records through the identical handler code. This crate
//! owns the storage half of that contract and knows nothing about the
//! protocol — payloads are opaque bytes; `daemon::state` defines what
//! goes in them.
//!
//! A [`DataDir`] is one node's directory:
//!
//! ```text
//! data/site-3/
//! ├── snapshot.bin   # full state as of LSN S (atomic rename)
//! └── wal.log        # records with LSN > S (checksummed, torn-tail safe)
//! ```
//!
//! [`DataDir::open`] is the whole recovery story: read the snapshot
//! (loud error if corrupt), scan the WAL truncating at the first
//! invalid record, hand back `snapshot + tail`. Installing a snapshot
//! ([`DataDir::install_snapshot`]) compacts the log: after the rename
//! lands, every logged record is covered by the snapshot and the WAL
//! resets to empty. A crash *between* those two steps is benign — the
//! leftover records have LSN ≤ the snapshot's and are filtered out on
//! the next open.
//!
//! Zero dependencies (std only), like every crate in this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod snapshot;
pub mod wal;

pub use crc::crc32;
pub use wal::{FsyncMode, Wal, WalEntry, MAX_RECORD_BYTES};

use std::io;
use std::path::{Path, PathBuf};

/// File name of the write-ahead log inside a data directory.
pub const WAL_FILE: &str = "wal.log";

/// What [`DataDir::open`] recovered from disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recovery {
    /// The newest valid snapshot, as `(covered_lsn, body)`.
    pub snapshot: Option<(u64, Vec<u8>)>,
    /// WAL records **after** the snapshot, in LSN order.
    pub tail: Vec<WalEntry>,
}

impl Recovery {
    /// True when the directory held no prior state at all.
    pub fn is_fresh(&self) -> bool {
        self.snapshot.is_none() && self.tail.is_empty()
    }
}

/// One node's open data directory: the WAL positioned for appends plus
/// the snapshot slot.
pub struct DataDir {
    dir: PathBuf,
    wal: Wal,
    mode: FsyncMode,
}

impl DataDir {
    /// Open (creating if needed) `dir` and recover its contents. The
    /// returned [`Recovery`] is everything the caller must replay to
    /// reconstruct state; the [`DataDir`] is ready for new appends.
    ///
    /// Errors are loud: an unreadable directory, a corrupt snapshot, or
    /// an un-truncatable WAL all fail the open — a node must not serve
    /// traffic on silently partial state.
    pub fn open(dir: &Path, mode: FsyncMode) -> io::Result<(DataDir, Recovery)> {
        std::fs::create_dir_all(dir)?;
        let snapshot = snapshot::read_snapshot(dir)?;
        let snap_lsn = snapshot.as_ref().map_or(0, |(lsn, _)| *lsn);
        let (wal, entries) = Wal::open(&dir.join(WAL_FILE), mode, snap_lsn + 1)?;
        // Records at or below the snapshot LSN survive only when a crash
        // hit between snapshot rename and log reset; they are covered.
        let tail = entries.into_iter().filter(|e| e.lsn > snap_lsn).collect();
        Ok((DataDir { dir: dir.to_path_buf(), wal, mode }, Recovery { snapshot, tail }))
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Append one record (write-through; `fsync` per mode). Returns the
    /// record's LSN.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        self.wal.append(payload)
    }

    /// Group-commit append: write-through, fsync deferred to the next
    /// [`DataDir::sync`] in every mode (see [`Wal::append_deferred`]).
    /// Returns the record's LSN.
    pub fn append_deferred(&mut self, payload: &[u8]) -> io::Result<u64> {
        self.wal.append_deferred(payload)
    }

    /// LSN of the most recent record (snapshot-covered or logged).
    pub fn last_lsn(&self) -> u64 {
        self.wal.last_lsn()
    }

    /// Bytes currently in the WAL file.
    pub fn wal_bytes(&self) -> io::Result<u64> {
        self.wal.size_bytes()
    }

    /// Flush batched WAL appends to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// Install `body` as the snapshot of all state through the last
    /// appended record, then compact the WAL. The snapshot rename is
    /// the commit point; a crash on either side of it recovers
    /// correctly (see module docs).
    pub fn install_snapshot(&mut self, body: &[u8]) -> io::Result<()> {
        self.wal.sync()?;
        let lsn = self.wal.last_lsn();
        snapshot::write_snapshot(&self.dir, lsn, body, self.mode != FsyncMode::Never)?;
        self.wal.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptiny::prelude::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("durable-dir-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn fresh_dir_recovers_empty() {
        let dir = tmp("fresh");
        let (_, rec) = DataDir::open(&dir, FsyncMode::Never).unwrap();
        assert!(rec.is_fresh());
    }

    #[test]
    fn snapshot_plus_tail_recovery() {
        let dir = tmp("snap-tail");
        {
            let (mut d, _) = DataDir::open(&dir, FsyncMode::Batch).unwrap();
            d.append(b"r1").unwrap();
            d.append(b"r2").unwrap();
            d.install_snapshot(b"state after r2").unwrap();
            d.append(b"r3").unwrap();
            d.sync().unwrap();
        }
        let (d, rec) = DataDir::open(&dir, FsyncMode::Batch).unwrap();
        assert_eq!(rec.snapshot, Some((2, b"state after r2".to_vec())));
        assert_eq!(rec.tail.len(), 1);
        assert_eq!(rec.tail[0], WalEntry { lsn: 3, payload: b"r3".to_vec() });
        assert_eq!(d.last_lsn(), 3);
    }

    #[test]
    fn crash_between_snapshot_and_compaction_filters_covered_records() {
        let dir = tmp("mid-compact");
        {
            let (mut d, _) = DataDir::open(&dir, FsyncMode::Never).unwrap();
            d.append(b"a").unwrap();
            d.append(b"b").unwrap();
            // Simulate the crash window: snapshot renamed in, WAL not
            // yet reset.
            snapshot::write_snapshot(&dir, d.last_lsn(), b"covers a,b", false).unwrap();
        }
        let (_, rec) = DataDir::open(&dir, FsyncMode::Never).unwrap();
        assert_eq!(rec.snapshot, Some((2, b"covers a,b".to_vec())));
        assert!(rec.tail.is_empty(), "covered records filtered, not replayed twice");
    }

    #[test]
    fn corrupt_snapshot_fails_open_loudly() {
        let dir = tmp("loud");
        {
            let (mut d, _) = DataDir::open(&dir, FsyncMode::Never).unwrap();
            d.append(b"x").unwrap();
            d.install_snapshot(b"good state").unwrap();
        }
        let snap = dir.join(snapshot::SNAPSHOT_FILE);
        let mut raw = std::fs::read(&snap).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        std::fs::write(&snap, &raw).unwrap();
        assert!(DataDir::open(&dir, FsyncMode::Never).is_err());
    }

    // Group-commit contract: records are appended with `append_deferred`
    // in batches, one `sync` per batch, and the batch's acks release
    // only after its sync returns. A crash therefore happens with some
    // prefix of the file fsync-guaranteed (everything up to the last
    // sync) and an arbitrary — possibly torn — tail of unsynced bytes
    // after it. Whatever the tear, reopening must recover *every* acked
    // record; the unacked in-flight batch may truncate to any prefix,
    // but never to garbage and never out of order.
    proptiny! {
        #[test]
        fn prop_group_commit_never_loses_acked_records(
            batch_sizes in prop::collection::vec(1usize..6, 1..8),
            tail_len in 0usize..6,
            cut_seed in any::<u16>(),
        ) {
            let dir = tmp(&format!("gc-{batch_sizes:?}-{tail_len}-{cut_seed}"));
            let mut all: Vec<Vec<u8>> = Vec::new();
            let mut acked = 0usize;
            let (synced_len, full_len) = {
                let (mut d, _) = DataDir::open(&dir, FsyncMode::Batch).unwrap();
                for (b, &size) in batch_sizes.iter().enumerate() {
                    for j in 0..size {
                        let payload = vec![(b * 16 + j) as u8; 5 + j];
                        d.append_deferred(&payload).unwrap();
                        all.push(payload);
                    }
                    // The group commit: one fsync for the whole batch,
                    // after which every record in it counts as acked.
                    d.sync().unwrap();
                    acked = all.len();
                }
                let synced_len = d.wal_bytes().unwrap();
                // The in-flight batch a crash interrupts before its
                // fsync: written, never synced, never acked.
                for j in 0..tail_len {
                    let payload = vec![0xC0 + j as u8; 4 + j];
                    d.append_deferred(&payload).unwrap();
                    all.push(payload);
                }
                (synced_len, d.wal_bytes().unwrap())
            };

            // Power-cut model: bytes past the last fsync may tear at
            // any point (mid-record included); bytes before it cannot.
            let cut = synced_len + (cut_seed as u64 % (full_len - synced_len + 1));
            let wal_path = dir.join(WAL_FILE);
            let f = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
            f.set_len(cut).unwrap();
            drop(f);

            let (_, rec) = DataDir::open(&dir, FsyncMode::Batch).unwrap();
            prop_assert!(
                rec.tail.len() >= acked,
                "lost an acked record: {} recovered < {} acked",
                rec.tail.len(),
                acked
            );
            prop_assert!(rec.tail.len() <= all.len());
            for (i, e) in rec.tail.iter().enumerate() {
                prop_assert_eq!(e.lsn, i as u64 + 1);
                prop_assert_eq!(&e.payload, &all[i]);
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    // The ISSUE's corruption property at the storage layer: arbitrary
    // truncation, a single bit flip anywhere in the WAL, or a forged
    // length field (up to a near-`u32::MAX` hostile claim) yields, on
    // reopen, a strict *prefix* of the original records — never garbage,
    // never a reordering, never a record that was not appended, and
    // never an allocation sized from the lie.
    proptiny! {
        #[test]
        fn prop_damaged_wal_recovers_to_a_prefix(
            payload_lens in prop::collection::vec(0usize..40, 1..12),
            damage_at in any::<u16>(),
            damage_kind in 0u8..10, // 0..8 flip that bit, 8 truncate, 9 forge a length field
            forged_len in any::<u32>(),
        ) {
            let dir = tmp(&format!("prop-{payload_lens:?}-{damage_at}-{damage_kind}-{forged_len}"));
            let originals: Vec<Vec<u8>> = payload_lens
                .iter()
                .enumerate()
                .map(|(i, &n)| vec![i as u8; n])
                .collect();
            {
                let (mut d, _) = DataDir::open(&dir, FsyncMode::Never).unwrap();
                for p in &originals {
                    d.append(p).unwrap();
                }
            }
            let wal_path = dir.join(WAL_FILE);
            let mut raw = std::fs::read(&wal_path).unwrap();
            let mut forged_at = None;
            match damage_kind {
                8 => raw.truncate(damage_at as usize % raw.len()),
                9 => {
                    // Overwrite record `i`'s whole length field with an
                    // arbitrary claim — the crc-colliding-garbage shape
                    // the length cap must reject by arithmetic alone.
                    let i = damage_at as usize % originals.len();
                    let off: usize =
                        payload_lens[..i].iter().map(|n| 16 + n).sum();
                    raw[off..off + 4].copy_from_slice(&forged_len.to_be_bytes());
                    forged_at = Some((i, payload_lens[i]));
                }
                bit => {
                    let pos = damage_at as usize % raw.len();
                    raw[pos] ^= 1 << bit;
                }
            }
            std::fs::write(&wal_path, &raw).unwrap();

            let (_, rec) = DataDir::open(&dir, FsyncMode::Never).unwrap();
            prop_assert!(rec.tail.len() <= originals.len());
            for (i, e) in rec.tail.iter().enumerate() {
                prop_assert_eq!(e.lsn, i as u64 + 1);
                prop_assert_eq!(&e.payload, &originals[i]);
            }
            // A length field that actually lies (differs from what
            // append() wrote) kills its record and everything after it.
            if let Some((i, true_len)) = forged_at {
                if forged_len as usize != 8 + true_len {
                    prop_assert!(
                        rec.tail.len() <= i,
                        "record with forged length survived recovery"
                    );
                }
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
