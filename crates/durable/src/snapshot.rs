//! Atomic state snapshots.
//!
//! A snapshot is one file, `snapshot.bin`, holding the full encoded
//! node state as of a log sequence number. It is written via the
//! classic tmp-file + `fsync` + `rename` dance, so at every instant the
//! directory holds either the old complete snapshot or the new complete
//! snapshot — never a half-written one. A crash mid-write leaves a
//! `snapshot.tmp` that recovery simply ignores.
//!
//! Unlike the WAL — whose tail may legitimately be torn and is silently
//! truncated — a snapshot that fails validation is a **loud error**:
//! the rename-based protocol cannot produce one, so its presence means
//! external corruption, and loading garbage state would silently
//! fabricate history.
//!
//! Layout: `"PTSNAP01"` magic, `lsn` u64, body length u32, CRC-32 u32,
//! body bytes. The CRC covers the `lsn` and length fields as well as
//! the body, so no header bit can flip unnoticed either.

use crate::crc::crc32_concat;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PTSNAP01";
const HEADER_BYTES: usize = 8 + 8 + 4 + 4;

/// File name of the live snapshot inside a data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// Write `body` as the snapshot covering every record with LSN ≤ `lsn`,
/// atomically replacing any previous snapshot. With `sync` false the
/// `fsync`s are skipped (the [`crate::FsyncMode::Never`] path).
pub fn write_snapshot(dir: &Path, lsn: u64, body: &[u8], sync: bool) -> io::Result<()> {
    let tmp = dir.join(SNAPSHOT_TMP);
    let lsn_be = lsn.to_be_bytes();
    let len_be = (body.len() as u32).to_be_bytes();
    let crc = crc32_concat(&[&lsn_be, &len_be, body]);
    let mut buf = Vec::with_capacity(HEADER_BYTES + body.len());
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&lsn_be);
    buf.extend_from_slice(&len_be);
    buf.extend_from_slice(&crc.to_be_bytes());
    buf.extend_from_slice(body);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        if sync {
            f.sync_all()?;
        }
    }
    fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
    if sync {
        // Persist the rename itself. Directory fsync is best-effort:
        // not every filesystem supports it, and the rename is already
        // atomic with respect to process crashes.
        if let Ok(d) = File::open(dir) {
            d.sync_all().ok();
        }
    }
    Ok(())
}

/// Read the snapshot, if one exists. `Ok(None)` when the file is
/// absent (a fresh data dir); `Err` — loudly — when it exists but does
/// not validate.
pub fn read_snapshot(dir: &Path) -> io::Result<Option<(u64, Vec<u8>)>> {
    let raw = match fs::read(dir.join(SNAPSHOT_FILE)) {
        Ok(raw) => raw,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let corrupt = |what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("snapshot.bin is corrupt ({what}); refusing to load state"),
        )
    };
    if raw.len() < HEADER_BYTES {
        return Err(corrupt("shorter than header"));
    }
    if &raw[..8] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let lsn = u64::from_be_bytes(raw[8..16].try_into().unwrap());
    let len = u32::from_be_bytes(raw[16..20].try_into().unwrap()) as usize;
    let crc = u32::from_be_bytes(raw[20..24].try_into().unwrap());
    if raw.len() - HEADER_BYTES != len {
        return Err(corrupt("length field disagrees with file size"));
    }
    let body = &raw[HEADER_BYTES..];
    if crc32_concat(&[&raw[8..16], &raw[16..20], body]) != crc {
        return Err(corrupt("checksum mismatch"));
    }
    Ok(Some((lsn, body.to_vec())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("durable-snap-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_and_replace() {
        let dir = tmp("roundtrip");
        assert_eq!(read_snapshot(&dir).unwrap(), None);
        write_snapshot(&dir, 7, b"state v1", true).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap(), Some((7, b"state v1".to_vec())));
        write_snapshot(&dir, 19, b"state v2 bigger", false).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap(), Some((19, b"state v2 bigger".to_vec())));
        assert!(!dir.join(SNAPSHOT_TMP).exists(), "tmp file renamed away");
    }

    #[test]
    fn leftover_tmp_is_ignored() {
        let dir = tmp("tmpfile");
        write_snapshot(&dir, 3, b"good", false).unwrap();
        // A crash mid-write leaves a garbage tmp; recovery must not care.
        std::fs::write(dir.join(SNAPSHOT_TMP), b"half-writ").unwrap();
        assert_eq!(read_snapshot(&dir).unwrap(), Some((3, b"good".to_vec())));
    }

    #[test]
    fn corruption_is_a_loud_error_not_garbage_state() {
        let dir = tmp("corrupt");
        write_snapshot(&dir, 5, b"precious bytes", false).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let good = std::fs::read(&path).unwrap();

        // Flip one bit anywhere — header or body — and expect Err.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            assert!(read_snapshot(&dir).is_err(), "flip at byte {i} went unnoticed");
        }
        // Truncations are just as loud.
        for cut in 0..good.len() {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(read_snapshot(&dir).is_err(), "truncation to {cut} went unnoticed");
        }
        std::fs::write(&path, &good).unwrap();
        assert_eq!(read_snapshot(&dir).unwrap(), Some((5, b"precious bytes".to_vec())));
    }
}
