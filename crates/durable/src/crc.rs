//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! Every WAL record and snapshot body carries one of these so recovery
//! can tell a torn or bit-flipped region from valid data. The IEEE
//! polynomial is the one every other storage engine uses for the same
//! job (gzip, zlib, SATA, ext4 metadata), which keeps the on-disk
//! format unsurprising; the implementation is in-tree because the
//! workspace builds offline with no registry dependencies.

/// Reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (init `!0`, final xor `!0` — the standard check
/// value of `"123456789"` is `0xCBF4_3926`).
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_concat(&[bytes])
}

/// CRC-32 of the concatenation of `parts`, without materializing it —
/// for checksums that span a header and a separate body.
pub fn crc32_concat(parts: &[&[u8]]) -> u32 {
    let mut crc = !0u32;
    for part in parts {
        for &b in *part {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The universal CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn concat_equals_contiguous() {
        let whole = b"header|then the body bytes";
        assert_eq!(crc32_concat(&[&whole[..7], &whole[7..]]), crc32(whole));
        assert_eq!(crc32_concat(&[b"", whole, b""]), crc32(whole));
    }

    #[test]
    fn single_bit_flips_always_detected() {
        let data = b"peertrack wal record payload";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "missed flip at {byte}:{bit}");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
