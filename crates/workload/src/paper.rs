//! The §V workload generator.
//!
//! Reproduces the evaluation setup verbatim: `Nn` nodes, `No` objects
//! generated at each node, a `move_fraction` (10 %) of each node's local
//! objects moved along a trace of `trace_len` (10) nodes. The
//! `grouped_movement` flag realizes Fig. 6b's two movement styles:
//!
//! * **in groups** — all moving objects of a node travel together
//!   (a pallet): one capture event per (step, source node), so they
//!   "are more likely to fall into the same capturing window";
//! * **individually** — every object gets its own jittered capture
//!   instants, spreading arrivals across windows.

use crate::{epc_object, CaptureEvent};
use moods::SiteId;
use detrand::rngs::StdRng;
use detrand::{Rng, SeedableRng};
use simnet::time::secs;
use simnet::SimTime;

/// Parameters of the §V generator (defaults = the paper's constants).
#[derive(Clone, Copy, Debug)]
pub struct PaperWorkload {
    /// `Nn` — number of sites.
    pub sites: usize,
    /// `No` per node — objects generated at each site.
    pub objects_per_site: usize,
    /// Fraction of each site's objects that move (paper: 0.10).
    pub move_fraction: f64,
    /// Length of each moving object's trace (paper: 10 nodes).
    pub trace_len: usize,
    /// Move in groups (pallets) or individually — Fig. 6b's two series.
    pub grouped_movement: bool,
    /// Seed for the deterministic draws.
    pub seed: u64,
    /// Time of the initial inventory capture wave.
    pub start: SimTime,
    /// Spacing between consecutive movement steps.
    pub step: SimTime,
}

impl Default for PaperWorkload {
    fn default() -> Self {
        PaperWorkload {
            sites: 512,
            objects_per_site: 5_000,
            move_fraction: 0.10,
            trace_len: 10,
            grouped_movement: true,
            seed: 0x5EED,
            start: secs(10),
            step: secs(600),
        }
    }
}

impl PaperWorkload {
    /// Generate the capture-event list.
    ///
    /// Phase 1 — inventory: every site captures its `No` local objects
    /// at (staggered) start times: the initial indexing wave whose cost
    /// Fig. 6 measures.
    ///
    /// Phase 2 — movement: 10 % of each site's objects travel through
    /// `trace_len` further sites; captures are grouped or individual
    /// per [`PaperWorkload::grouped_movement`].
    pub fn generate(&self) -> Vec<CaptureEvent> {
        assert!(self.sites > 0, "need at least one site");
        assert!((0.0..=1.0).contains(&self.move_fraction), "move_fraction in [0,1]");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events = Vec::new();

        // Phase 1: initial inventory at each site. Stagger site waves by
        // a few seconds so windows do not all open simultaneously.
        for s in 0..self.sites {
            let at = self.start + SimTime::from_millis(rng.gen_range(0..5_000));
            let objects: Vec<_> = (0..self.objects_per_site)
                .map(|i| epc_object(s as u32, i as u64))
                .collect();
            events.push(CaptureEvent { at, site: SiteId(s as u32), objects });
        }

        // Phase 2: movement.
        let movers_per_site =
            (self.objects_per_site as f64 * self.move_fraction).round() as usize;
        let phase2 = self.start + self.step;
        for s in 0..self.sites {
            if movers_per_site == 0 || self.trace_len == 0 {
                continue;
            }
            let movers: Vec<_> =
                (0..movers_per_site).map(|i| epc_object(s as u32, i as u64)).collect();
            // A shared route for the group; individual movers re-draw
            // per object.
            let route = self.random_route(&mut rng, s);
            if self.grouped_movement {
                // The pallet: one capture event per step for all movers.
                for (k, &dest) in route.iter().enumerate() {
                    let at = phase2 + SimTime(self.step.0 * k as u64)
                        + SimTime::from_millis(rng.gen_range(0..1_000));
                    events.push(CaptureEvent { at, site: dest, objects: movers.clone() });
                }
            } else {
                for &o in &movers {
                    let route = self.random_route(&mut rng, s);
                    for (k, &dest) in route.iter().enumerate() {
                        // Independent jitter far wider than any window.
                        let at = phase2 + SimTime(self.step.0 * k as u64)
                            + SimTime::from_millis(rng.gen_range(0..self.step.as_millis() / 2));
                        events.push(CaptureEvent { at, site: dest, objects: vec![o] });
                    }
                }
            }
        }
        events
    }

    /// A route of `trace_len` sites, none equal to its predecessor
    /// (objects do not "move" to where they already are).
    fn random_route(&self, rng: &mut StdRng, home: usize) -> Vec<SiteId> {
        let mut route = Vec::with_capacity(self.trace_len);
        let mut prev = home;
        for _ in 0..self.trace_len {
            let mut next = rng.gen_range(0..self.sites);
            if self.sites > 1 {
                while next == prev {
                    next = rng.gen_range(0..self.sites);
                }
            }
            route.push(SiteId(next as u32));
            prev = next;
        }
        route
    }

    /// Number of observations phase 1 + phase 2 will produce.
    pub fn expected_observations(&self) -> usize {
        let movers = (self.objects_per_site as f64 * self.move_fraction).round() as usize;
        self.sites * self.objects_per_site + self.sites * movers * self.trace_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation_count;

    fn small() -> PaperWorkload {
        PaperWorkload {
            sites: 8,
            objects_per_site: 100,
            move_fraction: 0.1,
            trace_len: 4,
            grouped_movement: true,
            seed: 1,
            start: secs(1),
            step: secs(60),
        }
    }

    #[test]
    fn observation_budget_matches() {
        let w = small();
        let evs = w.generate();
        assert_eq!(observation_count(&evs), w.expected_observations());
        // 8 inventory waves + 8 sites × 4 group steps.
        assert_eq!(evs.len(), 8 + 8 * 4);
    }

    #[test]
    fn individual_movement_spreads_events() {
        let mut w = small();
        w.grouped_movement = false;
        let evs = w.generate();
        assert_eq!(observation_count(&evs), w.expected_observations());
        // One event per (mover, step) + inventory waves.
        assert_eq!(evs.len(), 8 + 8 * 10 * 4);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(small().generate(), small().generate());
        let mut other = small();
        other.seed = 2;
        assert_ne!(small().generate(), other.generate());
    }

    #[test]
    fn routes_never_repeat_consecutive_sites() {
        let w = PaperWorkload { sites: 3, trace_len: 20, ..small() };
        let evs = w.generate();
        // Reconstruct per-object routes from individual events and check
        // consecutive-distinct via the group route (home site precedes).
        for pair in evs.windows(2) {
            if pair[0].objects == pair[1].objects && pair[0].objects.len() > 1 {
                assert_ne!(pair[0].site, pair[1].site, "group route revisited a site");
            }
        }
    }

    #[test]
    fn zero_movers_yields_inventory_only() {
        let w = PaperWorkload { move_fraction: 0.0, ..small() };
        let evs = w.generate();
        assert_eq!(evs.len(), 8);
        assert_eq!(observation_count(&evs), 800);
    }

    #[test]
    #[should_panic(expected = "move_fraction")]
    fn invalid_fraction_rejected() {
        let w = PaperWorkload { move_fraction: 1.5, ..small() };
        let _ = w.generate();
    }
}
