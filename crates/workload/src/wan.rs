//! Cross-region supply-chain workloads (DESIGN.md §17).
//!
//! The paper's domain examples move objects through manufacturer →
//! port → distributor chains; over a [`geo::Topology`] those tiers sit
//! on different continents. [`WanChain`] generates exactly that
//! movement: every object is manufactured at a site in its home
//! region, then handed off through **every region in order** (3+
//! handoffs across region boundaries), with optional intra-region
//! dwell stops between the long hauls. Streams are region-tagged —
//! [`WanChain::region_streams`] splits the one deterministic event
//! list into per-region capture streams, the form a per-region
//! ingestion pipeline would consume.
//!
//! Determinism: one `detrand::StdRng` seeded from the caller's seed
//! drives every draw, so the same `(topology, seed)` always produces
//! the identical event list — the wan sweep replays it under both
//! placement policies and compares costs at equal work.

use crate::{epc_object, CaptureEvent};
use detrand::{rngs::StdRng, Rng, SeedableRng};
use geo::{RegionId, Topology};
use moods::SiteId;
use simnet::SimTime;

/// A generated cross-region supply chain: the event list plus the
/// per-object routes (ground truth for route-shape assertions).
#[derive(Clone, Debug)]
pub struct WanChain {
    /// All capture events, in generation order (not globally sorted —
    /// `workload::replay` sorts).
    pub events: Vec<CaptureEvent>,
    /// Route of each object, as visited site ids in order.
    pub routes: Vec<Vec<SiteId>>,
}

impl WanChain {
    /// Generate `objects` objects flowing through `topology`'s regions
    /// in order. Object `k` starts in region `k % regions` and visits
    /// every region once, wrapping (so with three regions every object
    /// makes at least two region crossings and the flow is balanced
    /// across all directed region pairs). Within each region the
    /// object dwells at `1..=max_dwell_stops` distinct sites. Capture
    /// instants step by `step` per hop, objects staggered by `stagger`.
    ///
    /// Panics if the topology has fewer than 2 regions or no sites.
    pub fn generate(
        topology: &Topology,
        objects: usize,
        max_dwell_stops: usize,
        start: SimTime,
        step: SimTime,
        stagger: SimTime,
        seed: u64,
    ) -> WanChain {
        let regions = topology.regions();
        assert!(regions >= 2, "a WAN chain needs at least two regions");
        assert!(max_dwell_stops >= 1, "each region needs at least one stop");
        // Sites per region, in site order (deterministic).
        let mut by_region: Vec<Vec<SiteId>> = vec![Vec::new(); regions];
        for s in 0..topology.sites() {
            by_region[topology.region_of(s) as usize].push(SiteId(s as u32));
        }
        for (r, sites) in by_region.iter().enumerate() {
            assert!(!sites.is_empty(), "region {r} has no sites");
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut routes = Vec::with_capacity(objects);
        for k in 0..objects {
            let home = (k % regions) as RegionId;
            let object = epc_object(home as u32, k as u64);
            let mut clock = start + SimTime::from_micros(stagger.as_micros() * k as u64);
            let mut route: Vec<SiteId> = Vec::new();
            for leg in 0..regions {
                let r = ((home as usize + leg) % regions) as usize;
                let stops = rng.gen_range(1..=max_dwell_stops);
                for _ in 0..stops {
                    let mut site = by_region[r][rng.gen_range(0..by_region[r].len())];
                    if route.last() == Some(&site) {
                        // Never capture the same site twice in a row —
                        // the oracle counts it as one visit anyway.
                        let alt = (site.0 as usize + 1) % topology.sites();
                        if topology.region_of(alt) as usize == r {
                            site = SiteId(alt as u32);
                        } else {
                            continue;
                        }
                    }
                    events.push(CaptureEvent { at: clock, site, objects: vec![object] });
                    route.push(site);
                    clock = clock + step;
                }
            }
            routes.push(route);
        }
        WanChain { events, routes }
    }

    /// Split the events into one region-tagged stream per region
    /// (indexed by `RegionId`), preserving generation order within
    /// each stream.
    pub fn region_streams(&self, topology: &Topology) -> Vec<Vec<CaptureEvent>> {
        let mut streams: Vec<Vec<CaptureEvent>> = vec![Vec::new(); topology.regions()];
        for ev in &self.events {
            streams[topology.region_of(ev.site.0 as usize) as usize].push(ev.clone());
        }
        streams
    }

    /// Number of region boundary crossings over all routes (consecutive
    /// route stops in different regions) — the ground-truth handoff
    /// count the wan sweep reports against.
    pub fn region_crossings(&self, topology: &Topology) -> usize {
        self.routes
            .iter()
            .map(|route| {
                route
                    .windows(2)
                    .filter(|w| topology.is_cross(w[0].0 as usize, w[1].0 as usize))
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::wan3(9)
    }

    #[test]
    fn same_seed_same_chain() {
        let t = topo();
        let step = SimTime::from_millis(40);
        let a = WanChain::generate(&t, 12, 2, SimTime::ZERO, step, step, 7);
        let b = WanChain::generate(&t, 12, 2, SimTime::ZERO, step, step, 7);
        assert_eq!(a.events, b.events);
        assert_eq!(a.routes, b.routes);
        let c = WanChain::generate(&t, 12, 2, SimTime::ZERO, step, step, 8);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn every_object_visits_every_region_in_order() {
        let t = topo();
        let step = SimTime::from_millis(40);
        let chain = WanChain::generate(&t, 9, 3, SimTime::ZERO, step, step, 3);
        assert_eq!(chain.routes.len(), 9);
        for (k, route) in chain.routes.iter().enumerate() {
            let regs: Vec<RegionId> =
                route.iter().map(|s| t.region_of(s.0 as usize)).collect();
            // Dedup consecutive: must be home, home+1, home+2 (mod 3).
            let mut seq = regs.clone();
            seq.dedup();
            let home = (k % 3) as RegionId;
            assert_eq!(seq, vec![home, (home + 1) % 3, (home + 2) % 3], "object {k}");
            // 3+ region handoffs requirement: at least regions-1 crossings.
            assert!(regs.windows(2).filter(|w| w[0] != w[1]).count() >= 2);
        }
        assert!(chain.region_crossings(&t) >= 9 * 2);
    }

    #[test]
    fn streams_are_region_pure_and_complete() {
        let t = topo();
        let step = SimTime::from_millis(40);
        let chain = WanChain::generate(&t, 10, 2, SimTime::ZERO, step, step, 11);
        let streams = chain.region_streams(&t);
        assert_eq!(streams.len(), 3);
        let total: usize = streams.iter().map(|s| s.len()).sum();
        assert_eq!(total, chain.events.len());
        for (r, stream) in streams.iter().enumerate() {
            assert!(!stream.is_empty(), "region {r} stream empty");
            for ev in stream {
                assert_eq!(t.region_of(ev.site.0 as usize) as usize, r);
            }
        }
    }

    #[test]
    fn capture_instants_strictly_advance_per_object() {
        let t = topo();
        let step = SimTime::from_millis(40);
        let chain = WanChain::generate(&t, 6, 3, SimTime::from_secs(1), step, step, 5);
        for (k, route) in chain.routes.iter().enumerate() {
            let times: Vec<SimTime> = chain
                .events
                .iter()
                .filter(|e| e.objects == vec![epc_object((k % 3) as u32, k as u64)])
                .map(|e| e.at)
                .collect();
            assert_eq!(times.len(), route.len());
            assert!(times.windows(2).all(|w| w[0] < w[1]), "object {k} times not increasing");
        }
    }
}
