//! Synthetic traceability workloads.
//!
//! §V of the paper evaluates on generated data: "a network of 512 nodes
//! and ... a specific number of objects at each node. ... To simulate the
//! movement of objects, 10% of the local objects at each node were moved
//! along a trace of 10 nodes." Fig. 6b additionally compares objects
//! moving *in groups* (pallets — many objects captured in one window)
//! against moving *individually* (independent capture instants).
//!
//! This crate generates those workloads deterministically:
//!
//! * [`paper::PaperWorkload`] — the §V generator, parameterized exactly
//!   by the quantities the figures sweep;
//! * [`topology::SupplyChain`] — a tiered supplier → DC → retailer
//!   topology for the domain examples;
//! * [`streams::ArrivalStream`] — steady/bursty arrival processes for
//!   windowing ablations;
//! * [`wan::WanChain`] — cross-region supply chains over a
//!   `geo::Topology` (every object handed off through every region,
//!   with region-tagged capture streams) for the WAN federation sweep;
//! * [`CaptureEvent`] / [`replay`] — the common event form and a replay
//!   helper that feeds a [`peertrack::TraceableNetwork`] and a
//!   [`moods::MovementLog`] oracle in lockstep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;
pub mod streams;
pub mod topology;
pub mod wan;

use moods::{MovementLog, ObjectId, SiteId};
use peertrack::TraceableNetwork;
use simnet::SimTime;

/// One receptor event: `objects` captured at `site` at `at`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaptureEvent {
    /// Capture instant.
    pub at: SimTime,
    /// Capturing site.
    pub site: SiteId,
    /// Captured objects.
    pub objects: Vec<ObjectId>,
}

/// Make an EPC-backed object id: company = the home site, serial = the
/// object number. Realistic raw ids that hash uniformly.
pub fn epc_object(home_site: u32, serial: u64) -> ObjectId {
    let epc = ids::EpcCode::new(1, 5, 100_000 + home_site as u64, 1, serial % (1 << 38))
        .expect("generator parameters are in range");
    ObjectId(epc.object_id())
}

/// Schedule `events` into the network and record them in the oracle.
/// Events may be in any order (scheduling sorts by the event queue);
/// the oracle requires per-object time order, so we sort first.
pub fn replay(net: &mut TraceableNetwork, log: &mut MovementLog, events: &[CaptureEvent]) {
    let mut sorted: Vec<&CaptureEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.at);
    for ev in sorted {
        net.schedule_capture(ev.at, ev.site, ev.objects.clone());
        for &o in &ev.objects {
            log.record(o, ev.site, ev.at);
        }
    }
}

/// Total number of (object, capture) observations in an event list.
pub fn observation_count(events: &[CaptureEvent]) -> usize {
    events.iter().map(|e| e.objects.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epc_object_ids_are_distinct_and_stable() {
        let a = epc_object(1, 1);
        let b = epc_object(1, 2);
        let c = epc_object(2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, epc_object(1, 1));
    }

    #[test]
    fn observation_count_sums() {
        let evs = vec![
            CaptureEvent { at: SimTime::ZERO, site: SiteId(0), objects: vec![epc_object(0, 1)] },
            CaptureEvent {
                at: SimTime::from_secs(1),
                site: SiteId(1),
                objects: vec![epc_object(0, 2), epc_object(0, 3)],
            },
        ];
        assert_eq!(observation_count(&evs), 3);
    }
}
