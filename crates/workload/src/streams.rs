//! Arrival streams for windowing experiments (§IV-A.1).
//!
//! The adaptive window exists because "a fixed value of `Tinterval` will
//! cause problems when the object stream is unstable". These generators
//! produce the two regimes the design argues about: a steady trickle
//! (where `Tmax` bounds indexing delay) and bursts (where `Nmax` bounds
//! message size).

use crate::{epc_object, CaptureEvent};
use moods::{ObjectId, SiteId};
use detrand::rngs::StdRng;
use detrand::zipf::Zipf;
use detrand::{Rng, SeedableRng};
use simnet::SimTime;

/// An arrival process at one site.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalStream {
    /// Objects arrive one at a time, exponentially-ish spaced with the
    /// given mean gap (geometric approximation, deterministic per seed).
    Steady {
        /// Mean inter-arrival gap.
        mean_gap: SimTime,
    },
    /// Quiet periods punctuated by bursts of `burst_size` simultaneous
    /// arrivals ("more products enter the warehouse in one cycle").
    Bursty {
        /// Gap between bursts.
        burst_gap: SimTime,
        /// Objects per burst.
        burst_size: usize,
    },
}

impl ArrivalStream {
    /// Generate `total` object arrivals at `site` starting at `start`.
    pub fn generate(
        &self,
        site: SiteId,
        total: usize,
        start: SimTime,
        seed: u64,
    ) -> Vec<CaptureEvent> {
        let mut rng = StdRng::seed_from_u64(seed ^ (site.0 as u64) << 32);
        let mut events = Vec::new();
        let mut t = start;
        let mut emitted = 0usize;
        let mut serial = 0u64;
        while emitted < total {
            match *self {
                ArrivalStream::Steady { mean_gap } => {
                    // Exponential via inverse CDF on a uniform draw.
                    let u: f64 = rng.gen_range(1e-9..1.0f64);
                    let gap = (-(u.ln()) * mean_gap.as_micros() as f64) as u64;
                    t += SimTime::from_micros(gap.max(1));
                    events.push(CaptureEvent {
                        at: t,
                        site,
                        objects: vec![epc_object(site.0, serial)],
                    });
                    serial += 1;
                    emitted += 1;
                }
                ArrivalStream::Bursty { burst_gap, burst_size } => {
                    t += burst_gap;
                    let n = burst_size.min(total - emitted);
                    let objects: Vec<_> =
                        (0..n).map(|_| { let o = epc_object(site.0, serial); serial += 1; o }).collect();
                    events.push(CaptureEvent { at: t, site, objects });
                    emitted += n;
                }
            }
        }
        events
    }
}

// ----------------------------------------------------------------------
// Skewed locate streams (query-path read scaling)
// ----------------------------------------------------------------------

/// One planned locate: ask for `object` at virtual instant `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocateEvent {
    /// Query instant.
    pub at: SimTime,
    /// Query target.
    pub object: ObjectId,
}

/// `count` locates over `population` with Zipf(s)-distributed
/// popularity: `population[0]` is the hottest object, and `s = 0` is
/// uniform. Queries are evenly spaced `gap` apart starting at `start`.
pub fn zipf_locates(
    population: &[ObjectId],
    s: f64,
    count: usize,
    start: SimTime,
    gap: SimTime,
    seed: u64,
) -> Vec<LocateEvent> {
    assert!(!population.is_empty(), "zipf_locates needs a population");
    let z = Zipf::new(population.len(), s);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|k| LocateEvent {
            at: start + SimTime::from_micros(k as u64 * gap.as_micros()),
            object: population[z.sample(&mut rng)],
        })
        .collect()
}

/// A flash crowd (product-recall spike): inside `[from, until)` a
/// `hot_frac` share of locates aims at the `hot` set (objects sharing a
/// prefix — one gateway shard absorbs the spike); everything else, and
/// all traffic outside the window, is uniform over `population`.
#[allow(clippy::too_many_arguments)]
pub fn flash_crowd_locates(
    population: &[ObjectId],
    hot: &[ObjectId],
    hot_frac: f64,
    from: SimTime,
    until: SimTime,
    count: usize,
    start: SimTime,
    gap: SimTime,
    seed: u64,
) -> Vec<LocateEvent> {
    assert!(!population.is_empty(), "flash_crowd_locates needs a population");
    assert!(!hot.is_empty(), "flash_crowd_locates needs a hot set");
    assert!((0.0..=1.0).contains(&hot_frac), "hot_frac must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|k| {
            let at = start + SimTime::from_micros(k as u64 * gap.as_micros());
            let in_window = at >= from && at < until;
            let object = if in_window && rng.gen_bool(hot_frac) {
                hot[rng.gen_range(0..hot.len())]
            } else {
                population[rng.gen_range(0..population.len())]
            };
            LocateEvent { at, object }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::{ms, secs};

    #[test]
    fn steady_emits_one_object_per_event() {
        let s = ArrivalStream::Steady { mean_gap: ms(50) };
        let evs = s.generate(SiteId(1), 100, secs(1), 7);
        assert_eq!(evs.len(), 100);
        assert!(evs.iter().all(|e| e.objects.len() == 1));
        // Strictly increasing times.
        assert!(evs.windows(2).all(|w| w[0].at < w[1].at));
        // Mean gap in the right ballpark (loose: randomness).
        let span = evs.last().unwrap().at.since(evs[0].at).as_millis() as f64;
        let mean = span / 99.0;
        assert!(mean > 20.0 && mean < 150.0, "observed mean gap {mean} ms");
    }

    #[test]
    fn bursty_emits_full_bursts_then_remainder() {
        let s = ArrivalStream::Bursty { burst_gap: secs(10), burst_size: 64 };
        let evs = s.generate(SiteId(2), 200, secs(1), 7);
        assert_eq!(evs.len(), 4); // 64+64+64+8
        assert_eq!(evs[0].objects.len(), 64);
        assert_eq!(evs[3].objects.len(), 8);
        assert_eq!(crate::observation_count(&evs), 200);
    }

    #[test]
    fn zipf_locates_skew_and_determinism() {
        let pop: Vec<_> = (0..50).map(|k| epc_object(0, k)).collect();
        let evs = zipf_locates(&pop, 1.2, 2_000, secs(1), ms(1), 7);
        assert_eq!(evs.len(), 2_000);
        assert!(evs.windows(2).all(|w| w[0].at < w[1].at));
        let head = evs.iter().filter(|e| pop[..5].contains(&e.object)).count();
        assert!(head > 1_000, "top-5 objects drew {head}/2000 at s=1.2");
        assert_eq!(evs, zipf_locates(&pop, 1.2, 2_000, secs(1), ms(1), 7));
        assert_ne!(evs, zipf_locates(&pop, 1.2, 2_000, secs(1), ms(1), 8));
    }

    #[test]
    fn flash_crowd_concentrates_inside_the_window() {
        let pop: Vec<_> = (0..100).map(|k| epc_object(0, k)).collect();
        let hot: Vec<_> = pop[..4].to_vec();
        // 4 000 locates 1 ms apart from t=0; window covers [1s, 3s).
        let evs =
            flash_crowd_locates(&pop, &hot, 0.8, secs(1), secs(3), 4_000, secs(0), ms(1), 13);
        let (mut in_hot, mut in_n, mut out_hot, mut out_n) = (0usize, 0usize, 0usize, 0usize);
        for e in &evs {
            let is_hot = hot.contains(&e.object);
            if e.at >= secs(1) && e.at < secs(3) {
                in_n += 1;
                in_hot += usize::from(is_hot);
            } else {
                out_n += 1;
                out_hot += usize::from(is_hot);
            }
        }
        assert!(in_n > 1_000 && out_n > 1_000, "window split {in_n}/{out_n}");
        let in_frac = in_hot as f64 / in_n as f64;
        let out_frac = out_hot as f64 / out_n as f64;
        assert!(in_frac > 0.7, "hot share inside the spike: {in_frac:.2}");
        assert!(out_frac < 0.15, "hot share outside the spike: {out_frac:.2}");
        assert_eq!(
            evs,
            flash_crowd_locates(&pop, &hot, 0.8, secs(1), secs(3), 4_000, secs(0), ms(1), 13)
        );
    }

    #[test]
    fn deterministic_per_seed_and_site() {
        let s = ArrivalStream::Steady { mean_gap: ms(10) };
        assert_eq!(
            s.generate(SiteId(1), 50, secs(0), 9),
            s.generate(SiteId(1), 50, secs(0), 9)
        );
        assert_ne!(
            s.generate(SiteId(1), 50, secs(0), 9),
            s.generate(SiteId(2), 50, secs(0), 9)
        );
    }
}
