//! Arrival streams for windowing experiments (§IV-A.1).
//!
//! The adaptive window exists because "a fixed value of `Tinterval` will
//! cause problems when the object stream is unstable". These generators
//! produce the two regimes the design argues about: a steady trickle
//! (where `Tmax` bounds indexing delay) and bursts (where `Nmax` bounds
//! message size).

use crate::{epc_object, CaptureEvent};
use moods::SiteId;
use detrand::rngs::StdRng;
use detrand::{Rng, SeedableRng};
use simnet::SimTime;

/// An arrival process at one site.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalStream {
    /// Objects arrive one at a time, exponentially-ish spaced with the
    /// given mean gap (geometric approximation, deterministic per seed).
    Steady {
        /// Mean inter-arrival gap.
        mean_gap: SimTime,
    },
    /// Quiet periods punctuated by bursts of `burst_size` simultaneous
    /// arrivals ("more products enter the warehouse in one cycle").
    Bursty {
        /// Gap between bursts.
        burst_gap: SimTime,
        /// Objects per burst.
        burst_size: usize,
    },
}

impl ArrivalStream {
    /// Generate `total` object arrivals at `site` starting at `start`.
    pub fn generate(
        &self,
        site: SiteId,
        total: usize,
        start: SimTime,
        seed: u64,
    ) -> Vec<CaptureEvent> {
        let mut rng = StdRng::seed_from_u64(seed ^ (site.0 as u64) << 32);
        let mut events = Vec::new();
        let mut t = start;
        let mut emitted = 0usize;
        let mut serial = 0u64;
        while emitted < total {
            match *self {
                ArrivalStream::Steady { mean_gap } => {
                    // Exponential via inverse CDF on a uniform draw.
                    let u: f64 = rng.gen_range(1e-9..1.0f64);
                    let gap = (-(u.ln()) * mean_gap.as_micros() as f64) as u64;
                    t += SimTime::from_micros(gap.max(1));
                    events.push(CaptureEvent {
                        at: t,
                        site,
                        objects: vec![epc_object(site.0, serial)],
                    });
                    serial += 1;
                    emitted += 1;
                }
                ArrivalStream::Bursty { burst_gap, burst_size } => {
                    t += burst_gap;
                    let n = burst_size.min(total - emitted);
                    let objects: Vec<_> =
                        (0..n).map(|_| { let o = epc_object(site.0, serial); serial += 1; o }).collect();
                    events.push(CaptureEvent { at: t, site, objects });
                    emitted += n;
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::{ms, secs};

    #[test]
    fn steady_emits_one_object_per_event() {
        let s = ArrivalStream::Steady { mean_gap: ms(50) };
        let evs = s.generate(SiteId(1), 100, secs(1), 7);
        assert_eq!(evs.len(), 100);
        assert!(evs.iter().all(|e| e.objects.len() == 1));
        // Strictly increasing times.
        assert!(evs.windows(2).all(|w| w[0].at < w[1].at));
        // Mean gap in the right ballpark (loose: randomness).
        let span = evs.last().unwrap().at.since(evs[0].at).as_millis() as f64;
        let mean = span / 99.0;
        assert!(mean > 20.0 && mean < 150.0, "observed mean gap {mean} ms");
    }

    #[test]
    fn bursty_emits_full_bursts_then_remainder() {
        let s = ArrivalStream::Bursty { burst_gap: secs(10), burst_size: 64 };
        let evs = s.generate(SiteId(2), 200, secs(1), 7);
        assert_eq!(evs.len(), 4); // 64+64+64+8
        assert_eq!(evs[0].objects.len(), 64);
        assert_eq!(evs[3].objects.len(), 8);
        assert_eq!(crate::observation_count(&evs), 200);
    }

    #[test]
    fn deterministic_per_seed_and_site() {
        let s = ArrivalStream::Steady { mean_gap: ms(10) };
        assert_eq!(
            s.generate(SiteId(1), 50, secs(0), 9),
            s.generate(SiteId(1), 50, secs(0), 9)
        );
        assert_ne!(
            s.generate(SiteId(1), 50, secs(0), 9),
            s.generate(SiteId(2), 50, secs(0), 9)
        );
    }
}
