//! Tiered supply-chain topologies for the domain examples.
//!
//! §II-A: "in a supply chain network, a node may be a distribution
//! center or a retail store". The examples ship goods through a classic
//! three-tier chain: suppliers → distribution centres → retailers, with
//! each downstream site wired to a subset of the upstream tier.

use moods::SiteId;
use detrand::rngs::StdRng;
use detrand::{seq::SliceRandom, Rng, SeedableRng};

/// Role of a site in the chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Produces goods (trace origins).
    Supplier,
    /// Cross-docks and stores goods.
    DistributionCenter,
    /// Sells goods (trace terminals).
    Retailer,
}

/// A three-tier supply chain over sites `0..total()`.
#[derive(Clone, Debug)]
pub struct SupplyChain {
    suppliers: usize,
    dcs: usize,
    retailers: usize,
    /// dc → suppliers feeding it.
    dc_sources: Vec<Vec<SiteId>>,
    /// retailer → DCs feeding it.
    retail_sources: Vec<Vec<SiteId>>,
}

impl SupplyChain {
    /// Build a chain; every DC is fed by 1–3 suppliers, every retailer
    /// by 1–2 DCs (drawn deterministically from `seed`).
    pub fn generate(suppliers: usize, dcs: usize, retailers: usize, seed: u64) -> SupplyChain {
        assert!(suppliers > 0 && dcs > 0 && retailers > 0, "all tiers must be populated");
        let mut rng = StdRng::seed_from_u64(seed);
        let supplier_ids: Vec<SiteId> = (0..suppliers).map(|i| SiteId(i as u32)).collect();
        let dc_ids: Vec<SiteId> =
            (0..dcs).map(|i| SiteId((suppliers + i) as u32)).collect();

        let dc_sources = (0..dcs)
            .map(|_| {
                let k = rng.gen_range(1..=3.min(suppliers));
                supplier_ids.choose_multiple(&mut rng, k).copied().collect()
            })
            .collect();
        let retail_sources = (0..retailers)
            .map(|_| {
                let k = rng.gen_range(1..=2.min(dcs));
                dc_ids.choose_multiple(&mut rng, k).copied().collect()
            })
            .collect();
        SupplyChain { suppliers, dcs, retailers, dc_sources, retail_sources }
    }

    /// Total number of sites.
    pub fn total(&self) -> usize {
        self.suppliers + self.dcs + self.retailers
    }

    /// The tier of a site.
    pub fn tier(&self, site: SiteId) -> Tier {
        let i = site.0 as usize;
        assert!(i < self.total(), "site {site} outside topology");
        if i < self.suppliers {
            Tier::Supplier
        } else if i < self.suppliers + self.dcs {
            Tier::DistributionCenter
        } else {
            Tier::Retailer
        }
    }

    /// All sites of one tier.
    pub fn sites_of(&self, tier: Tier) -> Vec<SiteId> {
        (0..self.total())
            .map(|i| SiteId(i as u32))
            .filter(|s| self.tier(*s) == tier)
            .collect()
    }

    /// Sample a downstream route supplier → DC → retailer that respects
    /// the wiring (the retailer's DC is one of its sources; the DC's
    /// supplier one of its own).
    pub fn sample_route(&self, rng: &mut StdRng) -> Vec<SiteId> {
        let retailer_i = rng.gen_range(0..self.retailers);
        let retailer = SiteId((self.suppliers + self.dcs + retailer_i) as u32);
        let dc = *self.retail_sources[retailer_i]
            .choose(rng)
            .expect("every retailer has a source");
        let dc_i = dc.0 as usize - self.suppliers;
        let supplier = *self.dc_sources[dc_i].choose(rng).expect("every DC has a source");
        vec![supplier, dc, retailer]
    }

    /// Is `route` a valid downstream flow in this chain?
    pub fn is_valid_route(&self, route: &[SiteId]) -> bool {
        if route.len() != 3 {
            return false;
        }
        let (s, d, r) = (route[0], route[1], route[2]);
        if self.tier(s) != Tier::Supplier
            || self.tier(d) != Tier::DistributionCenter
            || self.tier(r) != Tier::Retailer
        {
            return false;
        }
        let dc_i = d.0 as usize - self.suppliers;
        let r_i = r.0 as usize - self.suppliers - self.dcs;
        self.dc_sources[dc_i].contains(&s) && self.retail_sources[r_i].contains(&d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_partition_sites() {
        let c = SupplyChain::generate(3, 4, 5, 1);
        assert_eq!(c.total(), 12);
        assert_eq!(c.sites_of(Tier::Supplier).len(), 3);
        assert_eq!(c.sites_of(Tier::DistributionCenter).len(), 4);
        assert_eq!(c.sites_of(Tier::Retailer).len(), 5);
        assert_eq!(c.tier(SiteId(0)), Tier::Supplier);
        assert_eq!(c.tier(SiteId(3)), Tier::DistributionCenter);
        assert_eq!(c.tier(SiteId(7)), Tier::Retailer);
    }

    #[test]
    fn sampled_routes_are_valid() {
        let c = SupplyChain::generate(5, 6, 20, 42);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let route = c.sample_route(&mut rng);
            assert!(c.is_valid_route(&route), "invalid route {route:?}");
        }
    }

    #[test]
    fn invalid_routes_detected() {
        let c = SupplyChain::generate(2, 2, 2, 3);
        assert!(!c.is_valid_route(&[SiteId(0), SiteId(1), SiteId(2)])); // 1 is a supplier
        assert!(!c.is_valid_route(&[SiteId(0), SiteId(2)]));
    }

    #[test]
    fn deterministic_wiring() {
        let a = SupplyChain::generate(4, 4, 4, 9);
        let b = SupplyChain::generate(4, 4, 4, 9);
        assert_eq!(a.dc_sources, b.dc_sources);
        assert_eq!(a.retail_sources, b.retail_sources);
    }

    #[test]
    #[should_panic(expected = "tiers")]
    fn empty_tier_rejected() {
        let _ = SupplyChain::generate(0, 1, 1, 1);
    }
}
