//! **geo** — deterministic WAN region topology for the PeerTrack
//! harnesses.
//!
//! The paper's workload — EPC-tagged objects moving through
//! manufacturer → port → distributor supply chains — spans continents,
//! but the simulator's baseline latency model charges the same 5 ms per
//! overlay hop regardless of where the endpoints sit. This crate
//! supplies the missing geography as plain data, shared by **both**
//! execution paths:
//!
//! * [`Topology`] — a region label per site plus per-region-pair base
//!   latency / jitter-bound / bandwidth matrices, all in integer
//!   microseconds so every consumer derives identical delays;
//! * [`clustered_id`] — the proximity-aware placement policy: the
//!   chord identifier space is split into one contiguous arc per
//!   region and a site's id is forced into its region's arc, so
//!   successor sets (replication fan-out, group-index flushes) stay
//!   intra-region without touching the protocol;
//! * [`GeoStats`] — per-region-pair message/byte counters with
//!   intra/cross roll-ups, filled in by whichever plane consumes the
//!   topology (`simnet`'s geo plane, or a bench reading query costs).
//!
//! The crate is deliberately inert: no RNG, no clock, no I/O. Seeded
//! jitter is drawn by the *consumer* (e.g. `simnet::geo::GeoPlane`)
//! from its own `detrand` RNG so a zero-jitter topology provably takes
//! zero draws — the property behind the byte-identity gate that a
//! single-region zero-latency topology reproduces the pre-geo runs
//! exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ids::Id;

/// Region label (dense, `0..regions`).
pub type RegionId = u16;

/// A deterministic WAN topology: who sits where, and what the wire
/// between any two regions costs.
///
/// All costs are **one-way microseconds**. The matrices are indexed
/// `[from_region * regions + to_region]` and are not required to be
/// symmetric (real WAN paths aren't), though the presets are.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    site_region: Vec<RegionId>,
    regions: usize,
    names: Vec<String>,
    /// Base one-way latency per region pair, µs.
    latency_us: Vec<u64>,
    /// Upper bound on uniformly-drawn extra delay per region pair, µs.
    /// Zero disables the consumer's jitter draw for that pair.
    jitter_us: Vec<u64>,
    /// Serialization cost per KiB per region pair, µs (bandwidth term).
    per_kib_us: Vec<u64>,
}

impl Topology {
    /// Build a topology from explicit matrices. Panics if the matrix
    /// sizes don't match `names.len()²` or a site label is out of
    /// range.
    pub fn new(
        site_region: Vec<RegionId>,
        names: Vec<String>,
        latency_us: Vec<u64>,
        jitter_us: Vec<u64>,
        per_kib_us: Vec<u64>,
    ) -> Topology {
        let regions = names.len();
        assert!(regions > 0, "a topology needs at least one region");
        assert!(regions <= RegionId::MAX as usize + 1, "too many regions");
        assert!(!site_region.is_empty(), "a topology needs at least one site");
        assert_eq!(latency_us.len(), regions * regions, "latency matrix size");
        assert_eq!(jitter_us.len(), regions * regions, "jitter matrix size");
        assert_eq!(per_kib_us.len(), regions * regions, "bandwidth matrix size");
        for &r in &site_region {
            assert!((r as usize) < regions, "site region label out of range");
        }
        Topology { site_region, regions, names, latency_us, jitter_us, per_kib_us }
    }

    /// The degenerate single-region topology: every wire is free. A run
    /// with this topology installed is byte-identical to a run with no
    /// topology at all (the consumer takes no RNG draws and adds zero
    /// delay) — the property the byte-identity gate checks.
    pub fn single_region(sites: usize) -> Topology {
        Topology::new(vec![0; sites], vec!["all".into()], vec![0], vec![0], vec![0])
    }

    /// The canonical three-region WAN preset (`eu`, `us`, `ap`), sites
    /// assigned in contiguous blocks. One-way base latencies: 2 ms
    /// intra-region, 45 ms eu↔us, 75 ms us↔ap, 120 ms eu↔ap; jitter
    /// bound 10% of base; 50 µs/KiB intra, 150 µs/KiB cross.
    pub fn wan3(sites: usize) -> Topology {
        const MS: u64 = 1_000;
        let base = [
            2 * MS, 45 * MS, 120 * MS, //
            45 * MS, 2 * MS, 75 * MS, //
            120 * MS, 75 * MS, 2 * MS,
        ];
        let jitter: Vec<u64> = base.iter().map(|&b| b / 10).collect();
        let bw: Vec<u64> =
            (0..9).map(|i| if i % 4 == 0 { 50 } else { 150 }).collect();
        Topology::new(
            contiguous_regions(sites, 3),
            vec!["eu".into(), "us".into(), "ap".into()],
            base.to_vec(),
            jitter,
            bw,
        )
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// Number of sites the topology was built for. Sites beyond this
    /// count (late joiners) wrap around deterministically — see
    /// [`Topology::region_of`].
    pub fn sites(&self) -> usize {
        self.site_region.len()
    }

    /// Region name, for reports.
    pub fn region_name(&self, r: RegionId) -> &str {
        &self.names[r as usize]
    }

    /// Label for a directed region pair, e.g. `eu->us`.
    pub fn pair_name(&self, from: RegionId, to: RegionId) -> String {
        format!("{}->{}", self.region_name(from), self.region_name(to))
    }

    /// The region of `site`. Sites past the original assignment (nodes
    /// that join later) cycle through the table so membership churn
    /// never needs a topology rebuild.
    pub fn region_of(&self, site: usize) -> RegionId {
        self.site_region[site % self.site_region.len()]
    }

    /// Base one-way latency between two regions, µs.
    pub fn base_us(&self, from: RegionId, to: RegionId) -> u64 {
        self.latency_us[from as usize * self.regions + to as usize]
    }

    /// Jitter bound between two regions, µs (0 = no draw).
    pub fn jitter_bound_us(&self, from: RegionId, to: RegionId) -> u64 {
        self.jitter_us[from as usize * self.regions + to as usize]
    }

    /// Deterministic wire cost of moving `bytes` from one region to the
    /// other, µs: base latency plus the bandwidth term. No jitter —
    /// that is the consumer's (seeded) business.
    pub fn wire_us(&self, from: RegionId, to: RegionId, bytes: usize) -> u64 {
        let idx = from as usize * self.regions + to as usize;
        self.latency_us[idx] + (bytes as u64 * self.per_kib_us[idx]) / 1024
    }

    /// Deterministic wire cost between two *sites* (the site→region
    /// mapping applied for the caller).
    pub fn wire_us_sites(&self, from_site: usize, to_site: usize, bytes: usize) -> u64 {
        self.wire_us(self.region_of(from_site), self.region_of(to_site), bytes)
    }

    /// Do two sites sit in different regions?
    pub fn is_cross(&self, a: usize, b: usize) -> bool {
        self.region_of(a) != self.region_of(b)
    }

    /// Is every matrix entry zero? A zero topology is contractually a
    /// no-op for every consumer.
    pub fn is_zero(&self) -> bool {
        self.latency_us.iter().all(|&v| v == 0)
            && self.jitter_us.iter().all(|&v| v == 0)
            && self.per_kib_us.iter().all(|&v| v == 0)
    }
}

/// Contiguous-block region assignment: `sites` split into `regions`
/// near-equal blocks (`[0,n/r)` → region 0, and so on). The remainder
/// goes to the earlier regions, matching how a supply chain clusters
/// its densest tier.
pub fn contiguous_regions(sites: usize, regions: usize) -> Vec<RegionId> {
    assert!(regions > 0 && regions <= sites, "need 1..=sites regions");
    (0..sites)
        .map(|i| ((i * regions) / sites) as RegionId)
        .collect()
}

/// Proximity-aware placement: force `raw` (a uniformly-hashed chord
/// id) into region `r`'s arc of the identifier space.
///
/// The 160-bit space is cut into `regions` contiguous arcs by the top
/// 16 bits (arc `r` covers `[floor(r·2¹⁶/R), floor((r+1)·2¹⁶/R))`);
/// the id keeps its low 144 bits — so within an arc, placement stays
/// hash-uniform — and its top 16 bits are remapped into the arc. With
/// every site of a region in one arc, a site's K successors (its
/// replica set and flush fan-out) are same-region except at the arc
/// seam, which is exactly the "prefer same-region successors" policy
/// with zero protocol changes.
pub fn clustered_id(raw: Id, r: RegionId, regions: usize) -> Id {
    assert!(regions > 0 && (r as usize) < regions, "region out of range");
    let lo = ((r as u64 * 65_536) / regions as u64) as u32;
    let hi = (((r as u64 + 1) * 65_536) / regions as u64) as u32;
    let span = hi - lo; // ≥ 1 because regions ≤ 2¹⁶
    let raw_top = ((raw.0[0] as u32) << 8) | raw.0[1] as u32;
    let top = lo + raw_top % span;
    let mut out = raw;
    out.0[0] = (top >> 8) as u8;
    out.0[1] = (top & 0xFF) as u8;
    out
}

/// The region arc (as a top-16-bit range `[lo, hi)`) that
/// [`clustered_id`] maps region `r` into.
pub fn region_arc(r: RegionId, regions: usize) -> (u32, u32) {
    let lo = ((r as u64 * 65_536) / regions as u64) as u32;
    let hi = (((r as u64 + 1) * 65_536) / regions as u64) as u32;
    (lo, hi)
}

/// Per-region-pair traffic counters. Filled in by whichever plane
/// consumes the topology; merged and rolled up by the benches.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GeoStats {
    regions: usize,
    msgs: Vec<u64>,
    bytes: Vec<u64>,
}

impl GeoStats {
    /// Zeroed counters for `regions` regions.
    pub fn new(regions: usize) -> GeoStats {
        GeoStats { regions, msgs: vec![0; regions * regions], bytes: vec![0; regions * regions] }
    }

    /// Count one message of `bytes` from region `from` to region `to`.
    pub fn record(&mut self, from: RegionId, to: RegionId, bytes: usize) {
        let idx = from as usize * self.regions + to as usize;
        self.msgs[idx] += 1;
        self.bytes[idx] += bytes as u64;
    }

    /// Number of regions the counters cover.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// Messages sent from region `from` to region `to`.
    pub fn msgs(&self, from: RegionId, to: RegionId) -> u64 {
        self.msgs[from as usize * self.regions + to as usize]
    }

    /// Bytes sent from region `from` to region `to`.
    pub fn bytes(&self, from: RegionId, to: RegionId) -> u64 {
        self.bytes[from as usize * self.regions + to as usize]
    }

    /// Total bytes that crossed a region boundary.
    pub fn cross_bytes(&self) -> u64 {
        self.fold(|a, b| a != b, &self.bytes)
    }

    /// Total messages that crossed a region boundary.
    pub fn cross_msgs(&self) -> u64 {
        self.fold(|a, b| a != b, &self.msgs)
    }

    /// Total bytes that stayed inside one region.
    pub fn intra_bytes(&self) -> u64 {
        self.fold(|a, b| a == b, &self.bytes)
    }

    fn fold(&self, keep: impl Fn(usize, usize) -> bool, table: &[u64]) -> u64 {
        let mut sum = 0;
        for a in 0..self.regions {
            for b in 0..self.regions {
                if keep(a, b) {
                    sum += table[a * self.regions + b];
                }
            }
        }
        sum
    }

    /// Order-independent merge (counter addition), for sharded sweeps.
    pub fn merge(&mut self, other: &GeoStats) {
        assert_eq!(self.regions, other.regions, "region count mismatch");
        for (a, b) in self.msgs.iter_mut().zip(&other.msgs) {
            *a += b;
        }
        for (a, b) in self.bytes.iter_mut().zip(&other.bytes) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_blocks_are_balanced_and_ordered() {
        let r = contiguous_regions(10, 3);
        assert_eq!(r, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        let r = contiguous_regions(3, 3);
        assert_eq!(r, vec![0, 1, 2]);
    }

    #[test]
    fn single_region_is_zero_and_free() {
        let t = Topology::single_region(8);
        assert!(t.is_zero());
        assert_eq!(t.regions(), 1);
        assert_eq!(t.wire_us_sites(0, 7, 4096), 0);
        assert!(!t.is_cross(0, 7));
        assert_eq!(t.jitter_bound_us(0, 0), 0);
    }

    #[test]
    fn wan3_charges_the_preset_matrix() {
        let t = Topology::wan3(9);
        assert_eq!(t.regions(), 3);
        assert!(!t.is_zero());
        // Contiguous blocks of three.
        assert_eq!(t.region_of(0), 0);
        assert_eq!(t.region_of(4), 1);
        assert_eq!(t.region_of(8), 2);
        // Symmetric base latencies, bandwidth term on top.
        assert_eq!(t.base_us(0, 1), 45_000);
        assert_eq!(t.base_us(1, 0), 45_000);
        assert_eq!(t.base_us(0, 2), 120_000);
        assert_eq!(t.wire_us(0, 0, 0), 2_000);
        assert_eq!(t.wire_us(0, 1, 1024), 45_000 + 150);
        assert_eq!(t.jitter_bound_us(1, 2), 7_500);
        assert!(t.is_cross(0, 8));
        assert_eq!(t.pair_name(0, 1), "eu->us");
    }

    #[test]
    fn late_joiners_wrap_deterministically() {
        let t = Topology::wan3(6);
        assert_eq!(t.region_of(6), t.region_of(0));
        assert_eq!(t.region_of(7), t.region_of(1));
    }

    #[test]
    fn clustered_ids_land_in_their_arc_and_keep_low_bits() {
        for regions in [1usize, 2, 3, 5, 7] {
            for r in 0..regions as u16 {
                let (lo, hi) = region_arc(r, regions);
                for s in 0..50u64 {
                    let raw = Id::hash_str(&format!("site-{s}"));
                    let id = clustered_id(raw, r, regions);
                    let top = ((id.0[0] as u32) << 8) | id.0[1] as u32;
                    assert!(top >= lo && top < hi, "top {top} outside [{lo},{hi})");
                    assert_eq!(&id.0[2..], &raw.0[2..], "low bits must survive");
                }
            }
        }
    }

    #[test]
    fn arcs_partition_the_top_bits() {
        for regions in [1usize, 2, 3, 6, 16] {
            let mut edge = 0;
            for r in 0..regions as u16 {
                let (lo, hi) = region_arc(r, regions);
                assert_eq!(lo, edge, "arcs must be contiguous");
                assert!(hi > lo, "arcs must be non-empty");
                edge = hi;
            }
            assert_eq!(edge, 65_536);
        }
    }

    #[test]
    fn stats_roll_up_cross_and_intra() {
        let mut s = GeoStats::new(3);
        s.record(0, 0, 100);
        s.record(0, 1, 10);
        s.record(1, 0, 20);
        s.record(2, 2, 5);
        assert_eq!(s.msgs(0, 1), 1);
        assert_eq!(s.bytes(1, 0), 20);
        assert_eq!(s.cross_bytes(), 30);
        assert_eq!(s.cross_msgs(), 2);
        assert_eq!(s.intra_bytes(), 105);
        let mut t = GeoStats::new(3);
        t.record(0, 1, 1);
        t.merge(&s);
        assert_eq!(t.bytes(0, 1), 11);
        assert_eq!(t.cross_msgs(), 3);
    }
}
