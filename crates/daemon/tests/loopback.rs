//! Daemon mechanics over real loopback sockets: membership
//! convergence, identical ring replicas, a hand-driven movement with
//! explicit flushes, and query answers read back over the wire.
//!
//! The full simulator-oracle comparison lives in the workspace-level
//! `tests/tests/cluster_parity.rs`; this file checks the daemon layer
//! in isolation so failures point at the right layer.

use daemon::node::chord_id_for;
use daemon::proto::Frame;
use daemon::{LoopbackCluster, Node, NodeConfig};
use moods::SiteId;
use simnet::SimTime;
use transport::{Backoff, ConnCache};
use workload::{epc_object, CaptureEvent};

fn can_bind() -> bool {
    std::net::TcpListener::bind("127.0.0.1:0").is_ok()
}

macro_rules! require_sockets {
    () => {
        if !can_bind() {
            eprintln!("SKIP: sandbox forbids binding loopback sockets");
            return;
        }
    };
}

fn us(t: u64) -> SimTime {
    SimTime::from_micros(t)
}

#[test]
fn three_nodes_converge_and_agree_on_the_ring() {
    require_sockets!();
    let seed = 7;
    let n0 = Node::spawn(NodeConfig::loopback(SiteId(0), seed, None)).expect("spawn 0");
    let n1 =
        Node::spawn(NodeConfig::loopback(SiteId(1), seed, Some(n0.addr()))).expect("spawn 1");
    let n2 =
        Node::spawn(NodeConfig::loopback(SiteId(2), seed, Some(n0.addr()))).expect("spawn 2");

    // Every node must converge to 3 members, including the bootstrap
    // (which learns of 1 and 2 only through their join requests) and
    // node 1 (which learns of 2 only through the PeerJoined broadcast).
    let mut ctl = ConnCache::new(Backoff::default());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let nodes = [&n0, &n1, &n2];
    loop {
        let mut members = [0u32; 3];
        for (i, n) in nodes.iter().enumerate() {
            let raw = ctl.request(n.addr(), &Frame::Status.encode()).expect("status");
            match Frame::decode(&raw).expect("status decode") {
                Frame::StatusResp { members: m, .. } => members[i] = m,
                other => panic!("unexpected status reply {other:?}"),
            }
        }
        if members == [3, 3, 3] {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "membership stuck at {members:?}");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // Same derivation the simulator uses for ring identities.
    for (i, n) in nodes.iter().enumerate() {
        assert_eq!(chord_id_for(seed, n.site()), chord_id_for(seed, SiteId(i as u32)));
    }

    for n in [n0, n1, n2] {
        let addr = n.addr();
        let raw = ctl.request(addr, &Frame::Shutdown.encode()).expect("shutdown rpc");
        assert!(matches!(Frame::decode(&raw), Ok(Frame::Ack)));
        let report = n.join();
        assert_eq!(report.unsupported, 0, "site {} hit an unsupported path", report.site.0);
    }
}

#[test]
fn movement_is_queryable_over_the_wire() {
    require_sockets!();
    let mut cluster = LoopbackCluster::start(3, 11).expect("cluster");
    let o = epc_object(0, 1);

    // o: site 0 @1s → site 1 @2s → site 2 @3s, windows closed by Tmax
    // (500ms after each capture opens a window).
    let events = vec![
        CaptureEvent { at: us(1_000_000), site: SiteId(0), objects: vec![o] },
        CaptureEvent { at: us(2_000_000), site: SiteId(1), objects: vec![o] },
        CaptureEvent { at: us(3_000_000), site: SiteId(2), objects: vec![o] },
    ];
    cluster.run_schedule(&events).expect("schedule");

    // Locate at every instant of interest, from every origin.
    for origin in 0..3 {
        let origin = SiteId(origin);
        let probes = [
            (us(500_000), None),
            (us(1_000_000), Some(SiteId(0))),
            (us(1_999_999), Some(SiteId(0))),
            (us(2_500_000), Some(SiteId(1))),
            (us(9_000_000), Some(SiteId(2))),
        ];
        for (t, want) in probes {
            let (got, _cost, complete) = cluster.locate(origin, o, t).expect("locate");
            assert!(complete, "locate incomplete at {t:?}");
            assert_eq!(got, want, "locate({t:?}) from {origin}");
        }

        let (path, _cost, complete) =
            cluster.trace(origin, o, us(0), us(10_000_000)).expect("trace");
        assert!(complete);
        let sites: Vec<u32> = path.iter().map(|v| v.site.0).collect();
        assert_eq!(sites, vec![0, 1, 2], "full trace from {origin}");
        assert_eq!(path[0].departed, Some(us(2_000_000)));
        assert_eq!(path[2].departed, None);
    }

    let reports = cluster.shutdown().expect("shutdown");
    for r in &reports {
        assert_eq!(r.anomalies, Default::default(), "site {}", r.site.0);
        assert_eq!(r.unsupported, 0, "site {}", r.site.0);
    }
    // The movement demands real traffic: three GroupIndex messages (one
    // per window), their M3 self/remote updates, and two M2 back-links.
    let group_total: u64 = reports
        .iter()
        .map(|r| r.metrics.messages_of(simnet::metrics::MsgClass::GroupIndex))
        .sum();
    assert!(group_total >= 1, "no GroupIndex traffic crossed the wire");
}

#[test]
fn count_triggered_flush_needs_no_timer() {
    require_sockets!();
    let mut group = peertrack::config::GroupConfig::default();
    group.n_max = 2; // second capture in a window flushes by count
    let mut cluster = LoopbackCluster::start_with(3, 13, group).expect("cluster");
    let a = epc_object(0, 1);
    let b = epc_object(0, 2);

    let events = vec![
        CaptureEvent { at: us(1_000_000), site: SiteId(0), objects: vec![a, b] },
        CaptureEvent { at: us(2_000_000), site: SiteId(1), objects: vec![a, b] },
    ];
    cluster.run_schedule(&events).expect("schedule");

    let (got, _, complete) = cluster.locate(SiteId(2), a, us(1_500_000)).expect("locate");
    assert!(complete);
    assert_eq!(got, Some(SiteId(0)));
    let (got, _, complete) = cluster.locate(SiteId(2), b, us(9_000_000)).expect("locate");
    assert!(complete);
    assert_eq!(got, Some(SiteId(1)));

    for r in cluster.shutdown().expect("shutdown") {
        assert_eq!(r.anomalies, Default::default());
        assert_eq!(r.unsupported, 0);
    }
}
