//! `peertrackd`: one PeerTrack/Chord node served over real sockets.
//!
//! The simulator (`peertrack::NetWorld`) holds every site in one
//! process and charges costs to a virtual clock. This crate is the
//! real-network execution path for the *same* protocol state machines:
//! each [`node::Node`] owns one site's window buffer, IOP repository
//! and gateway store, talks to its peers through
//! [`transport`](../transport/index.html) framed TCP, and keeps the
//! simulator's accounting model (messages / model-bytes / overlay
//! hops per [`simnet::metrics::MsgClass`]) so a loopback cluster can
//! be verified **against the simulator oracle** — same workload, same
//! seeds, same counts.
//!
//! Nodes are durable when given a `--data-dir`: every state mutation
//! is written ahead to a checksummed log ([`state::WalRecord`] via
//! [`durable`]) and periodically folded into an atomic snapshot, so a
//! killed node recovers its exact state — [`node::Core`] is the
//! socket-free deterministic state machine both the live engine and
//! the replay path share.
//!
//! Layout:
//!
//! * [`proto`] — the socket wire format ([`proto::Frame`]);
//! * [`state`] — the WAL record vocabulary + canonical state encoding;
//! * [`node`] — the replayable core, the socket engine and its handle;
//! * [`cluster`] — the in-process loopback cluster harness;
//! * `peertrackd` (binary) — CLI wrapper to run one node per process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod node;
pub mod proto;
pub mod state;

pub use cluster::{LoopbackCluster, ScheduleCursor};
pub use node::{Core, Node, NodeConfig, NodeHandle, NodeReport, Outbound, INBOX_CAP, OUTBOX_LIMIT_BYTES};
pub use proto::{CostWire, Frame, ProtoError};
pub use state::WalRecord;
