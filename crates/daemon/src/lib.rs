//! `peertrackd`: one PeerTrack/Chord node served over real sockets.
//!
//! The simulator (`peertrack::NetWorld`) holds every site in one
//! process and charges costs to a virtual clock. This crate is the
//! real-network execution path for the *same* protocol state machines:
//! each [`node::Node`] owns one site's window buffer, IOP repository
//! and gateway store, talks to its peers through
//! [`transport`](../transport/index.html) framed TCP, and keeps the
//! simulator's accounting model (messages / model-bytes / overlay
//! hops per [`simnet::metrics::MsgClass`]) so a loopback cluster can
//! be verified **against the simulator oracle** — same workload, same
//! seeds, same counts.
//!
//! Layout:
//!
//! * [`proto`] — the socket wire format ([`proto::Frame`]);
//! * [`node`] — the node engine and its handle;
//! * [`cluster`] — the in-process loopback cluster harness;
//! * `peertrackd` (binary) — CLI wrapper to run one node per process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod node;
pub mod proto;

pub use cluster::LoopbackCluster;
pub use node::{Node, NodeConfig, NodeHandle, NodeReport};
pub use proto::{CostWire, Frame, ProtoError};
