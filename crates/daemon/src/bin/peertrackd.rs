//! `peertrackd` — run one PeerTrack node over real sockets, or poke a
//! running one from the command line.
//!
//! ```text
//! peertrackd --site 0 --seed 42 --listen 127.0.0.1:7400 --data-dir /var/lib/pt/0
//! peertrackd --site 1 --seed 42 --listen 127.0.0.1:7401 --bootstrap 127.0.0.1:7400
//! peertrackd ctl 127.0.0.1:7400 capture 1000000 1:7 1:8
//! peertrackd ctl 127.0.0.1:7400 flush 1500000
//! peertrackd ctl 127.0.0.1:7401 locate 1:7 2000000
//! peertrackd ctl 127.0.0.1:7401 trace 1:7 0 9000000
//! peertrackd ctl 127.0.0.1:7400 status
//! peertrackd ctl 127.0.0.1:7400 dead 2   # site 2 is gone forever
//! peertrackd ctl 127.0.0.1:7400 shutdown
//! peertrackd --probe-bind        # exit 0 iff loopback sockets work here
//! ```
//!
//! Objects are written `home:serial` (the workload generator's EPC
//! derivation), times are virtual microseconds. See `DESIGN.md` §11 for
//! the deployment model — in particular, flushes are explicit because
//! virtual time lives with the driver, not the daemon.

use daemon::proto::Frame;
use daemon::{Node, NodeConfig};
use durable::FsyncMode;
use moods::SiteId;
use simnet::metrics::ALL_CLASSES;
use simnet::SimTime;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use transport::{Backoff, ConnCache};

// The library forbids unsafe; the binary needs exactly one unsafe line
// to register POSIX signal dispositions. The handler only stores to an
// atomic (async-signal-safe); a watcher thread does the real work.
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

static STOP_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_stop_signal(_signum: i32) {
    STOP_REQUESTED.store(true, Ordering::SeqCst);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("peertrackd: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print_usage();
        return Ok(ExitCode::SUCCESS);
    }
    if args[0] == "--probe-bind" {
        return Ok(match std::net::TcpListener::bind("127.0.0.1:0") {
            Ok(_) => ExitCode::SUCCESS,
            Err(_) => ExitCode::FAILURE,
        });
    }
    if args[0] == "ctl" {
        return ctl(&args[1..]);
    }
    serve(args)
}

fn print_usage() {
    println!(
        "usage:\n  peertrackd --site N --seed S --listen ADDR [--bootstrap ADDR]\n           \
         [--data-dir DIR] [--fsync always|batch|never] [--snapshot-every N]\n           \
         [--replicas K] [--locate-cache N]\n  \
         peertrackd ctl ADDR (status | capture AT_US OBJ... | flush NOW_US | \
         locate OBJ T_US | trace OBJ T0_US T1_US | load | dead SITE | shutdown | crash)\n  \
         peertrackd --probe-bind\n\nOBJ is HOME:SERIAL; times are virtual µs.\n\
         Without --data-dir the node is in-memory only (crash loses state);\n\
         with it, every mutation is write-ahead logged and recovered on restart.\n\
         --replicas K copies every site's records onto its K-1 ring successors\n\
         (must match across the cluster; default 1 = no replication).\n\
         --locate-cache N caches up to N locate answers per node (volatile,\n\
         revalidated on every hit; default off). `ctl ... load` reads the\n\
         per-site served-locate attribution and cache counters back.\n\
         SIGINT/SIGTERM trigger the same clean shutdown as `ctl ... shutdown`."
    );
}

// ----------------------------------------------------------------------
// Server mode
// ----------------------------------------------------------------------

fn serve(args: &[String]) -> Result<ExitCode, String> {
    let mut site: Option<u32> = None;
    let mut seed: u64 = 0;
    let mut listen = "127.0.0.1:0".to_string();
    let mut bootstrap: Option<SocketAddr> = None;
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut fsync = FsyncMode::Batch;
    let mut snapshot_every = daemon::node::DEFAULT_SNAPSHOT_EVERY;
    let mut replicas: usize = 1;
    let mut locate_cache: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().map(|s| s.to_string()).ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--site" => site = Some(parse(&val("--site")?, "site")?),
            "--seed" => seed = parse(&val("--seed")?, "seed")?,
            "--listen" => listen = val("--listen")?,
            "--bootstrap" => {
                bootstrap =
                    Some(val("--bootstrap")?.parse().map_err(|e| format!("bootstrap: {e}"))?)
            }
            "--data-dir" => data_dir = Some(val("--data-dir")?.into()),
            "--fsync" => fsync = FsyncMode::parse(&val("--fsync")?)?,
            "--snapshot-every" => {
                snapshot_every = parse(&val("--snapshot-every")?, "snapshot-every")?;
                if snapshot_every == 0 {
                    return Err("--snapshot-every must be at least 1".into());
                }
            }
            "--replicas" => {
                replicas = parse(&val("--replicas")?, "replicas")?;
                if replicas == 0 {
                    return Err("--replicas must be at least 1".into());
                }
            }
            "--locate-cache" => {
                let cap: usize = parse(&val("--locate-cache")?, "locate-cache")?;
                if cap == 0 {
                    return Err("--locate-cache must be at least 1".into());
                }
                locate_cache = Some(cap);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let site = SiteId(site.ok_or("--site is required")?);

    let cfg = NodeConfig {
        site,
        seed,
        group: Default::default(),
        listen,
        bootstrap,
        data_dir,
        fsync,
        snapshot_every,
        replicas,
        locate_cache,
        // The standalone binary runs flat; WAN topologies are a harness
        // concern (`LoopbackCluster::start_geo`).
        geo: None,
    };
    let node = Node::spawn(cfg).map_err(|e| format!("spawn: {e}"))?;
    println!("peertrackd site {} listening on {}", site.0, node.addr());

    // SIGINT/SIGTERM ask the node for the same clean shutdown a ctl
    // Shutdown frame does — flush, final snapshot, connections closed —
    // by dialing our own listener from a watcher thread.
    unsafe {
        signal(SIGINT, on_stop_signal as *const () as usize);
        signal(SIGTERM, on_stop_signal as *const () as usize);
    }
    let own_addr = node.addr();
    std::thread::spawn(move || {
        while !STOP_REQUESTED.load(Ordering::SeqCst) {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        let mut conns = ConnCache::new(Backoff::fast());
        let _ = conns.request(own_addr, &Frame::Shutdown.encode());
    });

    let report = node.join(); // blocks until a Shutdown frame (or signal) arrives

    println!("site {} shut down", report.site.0);
    println!("  protocol frames: {} sent, {} received", report.sent, report.received);
    for class in ALL_CLASSES {
        let m = report.metrics.messages_of(class);
        if m > 0 {
            println!(
                "  {:?}: {} msgs, {} model bytes, {} hops",
                class,
                m,
                report.metrics.bytes_of(class),
                report.metrics.hops_of(class)
            );
        }
    }
    if report.anomalies != Default::default() || report.unsupported > 0 {
        println!("  anomalies: {:?}", report.anomalies);
        println!("  unsupported-path hits: {}", report.unsupported);
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

// ----------------------------------------------------------------------
// Control mode
// ----------------------------------------------------------------------

fn ctl(args: &[String]) -> Result<ExitCode, String> {
    let addr: SocketAddr = args
        .first()
        .ok_or("ctl needs an address")?
        .parse()
        .map_err(|e| format!("address: {e}"))?;
    let cmd = args.get(1).ok_or("ctl needs a command")?;
    let rest = &args[2..];

    let frame = match cmd.as_str() {
        "status" => Frame::Status,
        "load" => Frame::QueryLoad,
        "shutdown" => Frame::Shutdown,
        "crash" => Frame::Crash,
        "capture" => {
            let at = time_arg(rest.first(), "capture AT_US")?;
            if rest.len() < 2 {
                return Err("capture needs at least one OBJ".into());
            }
            let objects =
                rest[1..].iter().map(|s| object_arg(s)).collect::<Result<Vec<_>, _>>()?;
            Frame::Capture { at, objects }
        }
        "flush" => Frame::Flush { now: time_arg(rest.first(), "flush NOW_US")? },
        "locate" => Frame::Locate {
            object: object_arg(rest.first().ok_or("locate needs OBJ")?)?,
            t: time_arg(rest.get(1), "locate T_US")?,
        },
        "trace" => Frame::Trace {
            object: object_arg(rest.first().ok_or("trace needs OBJ")?)?,
            t0: time_arg(rest.get(1), "trace T0_US")?,
            t1: time_arg(rest.get(2), "trace T1_US")?,
        },
        // Declare a site permanently dead (kill-forever): send to every
        // *survivor* after the victim's process is gone. The receiver
        // removes the site from its ring, promotes the heir for its
        // gateway shards, and re-replicates — see DESIGN.md §13.
        "dead" => Frame::PeerDead {
            site: SiteId(
                rest.first()
                    .ok_or("dead needs SITE")?
                    .parse()
                    .map_err(|e| format!("dead SITE: {e}"))?,
            ),
        },
        other => return Err(format!("unknown ctl command {other}")),
    };

    let mut conns = ConnCache::new(Backoff::fast());
    let raw = conns.request(addr, &frame.encode()).map_err(|e| format!("request: {e}"))?;
    let reply = Frame::decode(&raw).map_err(|e| format!("reply: {e}"))?;
    match reply {
        Frame::Ack => println!("ok"),
        Frame::StatusResp { site, members, sent, received } => {
            println!("site {} members {members} sent {sent} received {received}", site.0);
        }
        Frame::QueryLoadResp { loads, hits, misses } => {
            for (site, count) in &loads {
                println!("site {} served {count}", site.0);
            }
            println!("cache: {hits} hits {misses} misses");
        }
        Frame::LocateResp { answer, cost, complete } => {
            match answer {
                Some(s) => println!("at site {}", s.0),
                None => println!("not born yet"),
            }
            println!(
                "cost: {} msgs {} hops {} bytes; complete: {complete}",
                cost.messages, cost.hops, cost.bytes
            );
        }
        Frame::TraceResp { path, cost, complete } => {
            for v in &path {
                match v.departed {
                    Some(d) => println!(
                        "site {} [{} .. {}]",
                        v.site.0,
                        v.arrived.as_micros(),
                        d.as_micros()
                    ),
                    None => println!("site {} [{} .. )", v.site.0, v.arrived.as_micros()),
                }
            }
            println!(
                "cost: {} msgs {} hops {} bytes; complete: {complete}",
                cost.messages, cost.hops, cost.bytes
            );
        }
        other => return Err(format!("unexpected reply {other:?}")),
    }
    Ok(ExitCode::SUCCESS)
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("{what}: {e}"))
}

fn time_arg(s: Option<&String>, what: &str) -> Result<SimTime, String> {
    let s = s.ok_or(format!("{what} is required"))?;
    Ok(SimTime::from_micros(parse(s, what)?))
}

/// `HOME:SERIAL` → the workload generator's EPC-derived object id.
fn object_arg(s: &str) -> Result<moods::ObjectId, String> {
    let (home, serial) = s.split_once(':').ok_or(format!("object `{s}` is not HOME:SERIAL"))?;
    Ok(workload::epc_object(parse(home, "object home")?, parse(serial, "object serial")?))
}
