//! Daemon wire protocol: everything that crosses a socket between
//! `peertrackd` nodes (and between the cluster harness and a node).
//!
//! One [`Frame`] per transport frame. Three families:
//!
//! * **Protocol** — an asynchronous PeerTrack message (`GroupIndex`,
//!   `SetTo`, `SetFrom`, …), the payload encoded by the canonical
//!   [`peertrack::codec`] and wrapped in an envelope carrying the
//!   sender, the *model* hop count the simulator would have charged,
//!   and a wall-clock send timestamp for receiver-side latency
//!   histograms. Fire-and-forget: no reply.
//! * **RPCs** — node↔node request/response pairs driven by a query or
//!   routing origin: a Chord lookup step, gateway/IOP probes, IOP
//!   record fetches. Replied on the originating connection.
//! * **Control** — harness/operator→node requests: capture injection,
//!   window flush, locate/trace, status, shutdown.
//!
//! Encoding reuses `peertrack::bytebuf` (big-endian, hand-rolled —
//! hermetic policy) and mirrors the codec's conventions: options as a
//! presence byte over a fixed-width body, `u32` length-prefixed
//! vectors bounded by arithmetic before any allocation.

use chord::StepAnswer;
use ids::{Id, ID_BYTES};
use moods::{ObjectId, Path, SiteId, Visit};
use peertrack::bytebuf::{ByteBuf, Bytes};
use peertrack::codec;
use peertrack::messages::Wire;
use peertrack::store::{IopRecord, Link};
use simnet::SimTime;

/// Decode failures (wraps the codec's for embedded protocol payloads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Frame shorter than its structure requires.
    Truncated,
    /// Unknown frame kind byte.
    BadKind(u8),
    /// A length prefix exceeds the sanity bound.
    TooLong(u32),
    /// Embedded `peertrack::codec` payload failed to decode.
    Codec(codec::DecodeError),
    /// A string field is not UTF-8.
    BadString,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame truncated"),
            ProtoError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            ProtoError::TooLong(n) => write!(f, "length {n} exceeds bound"),
            ProtoError::Codec(e) => write!(f, "embedded payload: {e}"),
            ProtoError::BadString => write!(f, "string field is not UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Bound on decoded vector lengths (peer lists, capture batches,
/// visits); mirrors [`codec::MAX_VECTOR_LEN`].
pub const MAX_LEN: usize = codec::MAX_VECTOR_LEN;

/// Query cost triple as carried in responses: the *model* accounting
/// the origin charged, echoed so harnesses can cross-check it against
/// the simulator without touching the node's metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostWire {
    /// Model messages.
    pub messages: u64,
    /// Model overlay hops.
    pub hops: u64,
    /// Model payload bytes.
    pub bytes: u64,
}

/// Everything that crosses a daemon socket.
#[derive(Clone, Debug)]
pub enum Frame {
    // -------------------------------------------------- protocol plane
    /// Asynchronous PeerTrack message. `hops` is the model hop count
    /// charged at the sender; `sent_us` the sender's wall clock (µs
    /// since `UNIX_EPOCH`) for the receiver's latency histogram.
    Protocol {
        /// Sending site.
        sender: SiteId,
        /// Model overlay hops this delivery was charged.
        hops: u32,
        /// Sender wall clock, µs since `UNIX_EPOCH`.
        sent_us: u64,
        /// The protocol payload (codec-encoded on the wire).
        wire: Wire,
    },

    // -------------------------------------------------- membership
    /// "Let me in": sent to the bootstrap node, replied with
    /// [`Frame::JoinResp`]; the bootstrap then broadcasts
    /// [`Frame::PeerJoined`] to every existing member.
    JoinReq {
        /// Joining site.
        site: SiteId,
        /// Its listener address (`host:port`).
        addr: String,
    },
    /// Bootstrap's reply: the full membership it now knows (itself and
    /// the joiner included).
    JoinResp {
        /// `(site, listener address)` pairs.
        peers: Vec<(SiteId, String)>,
    },
    /// Bootstrap→member broadcast: a new peer arrived.
    PeerJoined {
        /// The new site.
        site: SiteId,
        /// Its listener address.
        addr: String,
    },
    /// Harness→member broadcast: `site` is **permanently dead** (the
    /// kill-forever fault model). Receivers drop it from the
    /// membership, fail over its key ranges to the heir and
    /// re-establish replica placement. Replied with Ack.
    PeerDead {
        /// The dead site.
        site: SiteId,
    },

    // -------------------------------------------------- control plane
    /// Inject a capture at virtual instant `at` (the cluster drives
    /// virtual time explicitly; DESIGN.md §11). Replied with Ack after
    /// the capture is absorbed.
    Capture {
        /// Virtual capture instant.
        at: SimTime,
        /// Captured objects.
        objects: Vec<ObjectId>,
    },
    /// Flush the open capture window as if `Tmax` fired at `now`.
    /// Replied with Ack after the indexing messages are sent.
    Flush {
        /// Virtual flush instant.
        now: SimTime,
    },
    /// `L(o, t)` with the receiving node as query origin.
    Locate {
        /// The object.
        object: ObjectId,
        /// The instant asked about.
        t: SimTime,
    },
    /// `TR(o, t0, t1)` with the receiving node as query origin.
    Trace {
        /// The object.
        object: ObjectId,
        /// Window start.
        t0: SimTime,
        /// Window end.
        t1: SimTime,
    },
    /// Liveness/progress probe.
    Status,
    /// Orderly shutdown request. Replied with Ack, then the node exits.
    Shutdown,
    /// Abrupt-death request (fault injection): replied with Ack, then
    /// the node exits **without** flushing, snapshotting or closing
    /// anything — volatile state is abandoned exactly as a `kill -9`
    /// would abandon it. Recovery must come from the data dir alone.
    Crash,
    /// Dump the node's canonical state encoding (addresses excluded, so
    /// dumps compare equal across a restart onto a new port). Replied
    /// with [`Frame::StateResp`].
    StateDump,
    /// Read the node's query-load accounting: per-site served-locate
    /// attribution from queries this node originated, plus its
    /// locate-cache counters (DESIGN.md §15). Engine-side volatile
    /// state — a restarted node reports zeros. Replied with
    /// [`Frame::QueryLoadResp`].
    QueryLoad,
    /// "What listener address do you have for `site`?" — harnesses poll
    /// this to watch a restarted peer's new address propagate. Replied
    /// with [`Frame::AddrResp`].
    Resolve {
        /// The site being resolved.
        site: SiteId,
    },
    /// WAN fault injection: sever the region pair `(a, b)` of the
    /// node's configured topology. Protocol frames whose destination
    /// lies across the severed pair are **parked** at the sender (not
    /// dropped, not counted sent) until the matching
    /// [`Frame::RegionHeal`] releases them in original order — mirroring
    /// the simulator's park-and-release `GeoPlane::sever`. Replied with
    /// Ack; a no-op on nodes without a topology.
    RegionCut {
        /// One region of the severed pair.
        a: u16,
        /// The other region (order-insensitive; `a == b` is rejected by
        /// the harness, not the wire).
        b: u16,
    },
    /// Heal the region pair `(a, b)`: parked frames for the pair are
    /// re-sent in the order they were parked (per-destination sequence
    /// order preserved, so duplicate suppression and in-order gateway
    /// updates behave as if the frames had merely been delayed).
    /// Replied with Ack.
    RegionHeal {
        /// One region of the healed pair.
        a: u16,
        /// The other region.
        b: u16,
    },

    // -------------------------------------------------- rpc plane
    /// One iterative-lookup step: "where next for `key`, from your
    /// routing state?" — the remote half of [`chord::answer_step`].
    LookupStep {
        /// The key being routed.
        key: Id,
    },
    /// Gateway probe: does your current-`Lp` shard index `object`?
    GatewayProbe {
        /// The object.
        object: ObjectId,
    },
    /// Does your IOP repository know `object` at all?
    IopKnows {
        /// The object.
        object: ObjectId,
    },
    /// Fetch the IOP record whose arrival time is exactly `time`.
    RecAt {
        /// The object.
        object: ObjectId,
        /// Exact arrival time of the wanted record.
        time: SimTime,
    },
    /// Fetch the latest IOP record with arrival ≤ `t`.
    RecLatestAtOrBefore {
        /// The object.
        object: ObjectId,
        /// Upper bound on arrival.
        t: SimTime,
    },
    /// Fetch the earliest IOP record.
    RecFirst {
        /// The object.
        object: ObjectId,
    },
    /// Fetch the latest IOP record.
    RecLatest {
        /// The object.
        object: ObjectId,
    },
    /// Replica probe: fetch, from the receiver's **replica copy** of
    /// dead `primary`'s repository, the IOP record whose arrival time
    /// is exactly `time`. Queries fall back to this when a trace walks
    /// through a permanently-lost site. Replied with [`Frame::RecResp`].
    ReplRecAt {
        /// The dead primary whose replica copy is being probed.
        primary: SiteId,
        /// The object.
        object: ObjectId,
        /// Exact arrival time of the wanted record.
        time: SimTime,
    },

    // -------------------------------------------------- responses
    /// Generic acknowledgement.
    Ack,
    /// Reply to [`Frame::Locate`].
    LocateResp {
        /// The answer (`None` = unknown object / incomplete data).
        answer: Option<SiteId>,
        /// Model cost charged at the origin.
        cost: CostWire,
        /// False when traversal hit missing data.
        complete: bool,
    },
    /// Reply to [`Frame::Trace`].
    TraceResp {
        /// The visits overlapping the window.
        path: Path,
        /// Model cost charged at the origin.
        cost: CostWire,
        /// False when traversal hit missing data.
        complete: bool,
    },
    /// Reply to [`Frame::Status`].
    StatusResp {
        /// The answering site.
        site: SiteId,
        /// Members it currently knows (itself included).
        members: u32,
        /// Protocol-plane frames sent to other nodes so far.
        sent: u64,
        /// Protocol-plane frames received and processed so far.
        received: u64,
    },
    /// Reply to [`Frame::LookupStep`].
    StepResp(StepAnswer),
    /// Reply to [`Frame::GatewayProbe`]: the latest-state link on hit.
    LinkResp(Option<Link>),
    /// Reply to [`Frame::IopKnows`].
    BoolResp(bool),
    /// Reply to the `Rec*` fetches.
    RecResp(Option<IopRecord>),
    /// Reply to [`Frame::QueryLoad`]. `loads` attributes each locate
    /// this node originated to the site that answered it (gateway or
    /// record holder; cache hits go to the origin itself) — merging
    /// every node's slice reproduces the simulator's per-site
    /// `query_load` tally.
    QueryLoadResp {
        /// `(answering site, locates attributed)` pairs, site-sorted.
        loads: Vec<(SiteId, u64)>,
        /// Locate-cache hits (0 when no cache is configured).
        hits: u64,
        /// Locate-cache misses (0 when no cache is configured).
        misses: u64,
    },
    /// Reply to [`Frame::StateDump`]: the opaque canonical encoding.
    StateResp(Vec<u8>),
    /// Reply to [`Frame::Resolve`]: the listener address on file.
    AddrResp(Option<String>),
}

const K_PROTOCOL: u8 = 1;
const K_JOIN_REQ: u8 = 2;
const K_JOIN_RESP: u8 = 3;
const K_PEER_JOINED: u8 = 4;
const K_CAPTURE: u8 = 5;
const K_FLUSH: u8 = 6;
const K_LOCATE: u8 = 7;
const K_TRACE: u8 = 8;
const K_STATUS: u8 = 9;
const K_SHUTDOWN: u8 = 10;
const K_LOOKUP_STEP: u8 = 11;
const K_GATEWAY_PROBE: u8 = 12;
const K_IOP_KNOWS: u8 = 13;
const K_REC_AT: u8 = 14;
const K_REC_LAOB: u8 = 15;
const K_REC_FIRST: u8 = 16;
const K_REC_LATEST: u8 = 17;
const K_CRASH: u8 = 18;
const K_STATE_DUMP: u8 = 19;
const K_RESOLVE: u8 = 20;
const K_PEER_DEAD: u8 = 21;
const K_REPL_REC_AT: u8 = 22;
const K_QUERY_LOAD: u8 = 23;
const K_REGION_CUT: u8 = 24;
const K_REGION_HEAL: u8 = 25;
const K_ACK: u8 = 32;
const K_LOCATE_RESP: u8 = 33;
const K_TRACE_RESP: u8 = 34;
const K_STATUS_RESP: u8 = 35;
const K_STEP_RESP: u8 = 36;
const K_LINK_RESP: u8 = 37;
const K_BOOL_RESP: u8 = 38;
const K_REC_RESP: u8 = 39;
const K_STATE_RESP: u8 = 40;
const K_ADDR_RESP: u8 = 41;
const K_QUERY_LOAD_RESP: u8 = 42;

fn put_id(buf: &mut ByteBuf, id: &Id) {
    buf.put_slice(&id.0);
}

pub(crate) fn put_object(buf: &mut ByteBuf, o: &ObjectId) {
    put_id(buf, &o.0);
}

pub(crate) fn put_time(buf: &mut ByteBuf, t: SimTime) {
    buf.put_u64(t.as_micros());
}

fn put_opt_link(buf: &mut ByteBuf, l: &Option<Link>) {
    match l {
        Some(l) => {
            buf.put_u8(1);
            buf.put_u32(l.site.0);
            put_time(buf, l.time);
        }
        None => buf.put_bytes(0, 13),
    }
}

pub(crate) fn put_str(buf: &mut ByteBuf, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_cost(buf: &mut ByteBuf, c: &CostWire) {
    buf.put_u64(c.messages);
    buf.put_u64(c.hops);
    buf.put_u64(c.bytes);
}

impl Frame {
    /// Serialize to a transport payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = ByteBuf::with_capacity(64);
        match self {
            Frame::Protocol { sender, hops, sent_us, wire } => {
                buf.put_u8(K_PROTOCOL);
                buf.put_u32(sender.0);
                buf.put_u32(*hops);
                buf.put_u64(*sent_us);
                let payload = codec::encode(&wire.msg, wire.seq);
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload.as_slice());
            }
            Frame::JoinReq { site, addr } => {
                buf.put_u8(K_JOIN_REQ);
                buf.put_u32(site.0);
                put_str(&mut buf, addr);
            }
            Frame::JoinResp { peers } => {
                buf.put_u8(K_JOIN_RESP);
                buf.put_u32(peers.len() as u32);
                for (site, addr) in peers {
                    buf.put_u32(site.0);
                    put_str(&mut buf, addr);
                }
            }
            Frame::PeerJoined { site, addr } => {
                buf.put_u8(K_PEER_JOINED);
                buf.put_u32(site.0);
                put_str(&mut buf, addr);
            }
            Frame::PeerDead { site } => {
                buf.put_u8(K_PEER_DEAD);
                buf.put_u32(site.0);
            }
            Frame::Capture { at, objects } => {
                buf.put_u8(K_CAPTURE);
                put_time(&mut buf, *at);
                buf.put_u32(objects.len() as u32);
                for o in objects {
                    put_object(&mut buf, o);
                }
            }
            Frame::Flush { now } => {
                buf.put_u8(K_FLUSH);
                put_time(&mut buf, *now);
            }
            Frame::Locate { object, t } => {
                buf.put_u8(K_LOCATE);
                put_object(&mut buf, object);
                put_time(&mut buf, *t);
            }
            Frame::Trace { object, t0, t1 } => {
                buf.put_u8(K_TRACE);
                put_object(&mut buf, object);
                put_time(&mut buf, *t0);
                put_time(&mut buf, *t1);
            }
            Frame::Status => buf.put_u8(K_STATUS),
            Frame::QueryLoad => buf.put_u8(K_QUERY_LOAD),
            Frame::Shutdown => buf.put_u8(K_SHUTDOWN),
            Frame::Crash => buf.put_u8(K_CRASH),
            Frame::StateDump => buf.put_u8(K_STATE_DUMP),
            Frame::Resolve { site } => {
                buf.put_u8(K_RESOLVE);
                buf.put_u32(site.0);
            }
            Frame::RegionCut { a, b } => {
                buf.put_u8(K_REGION_CUT);
                buf.put_u32(*a as u32);
                buf.put_u32(*b as u32);
            }
            Frame::RegionHeal { a, b } => {
                buf.put_u8(K_REGION_HEAL);
                buf.put_u32(*a as u32);
                buf.put_u32(*b as u32);
            }
            Frame::LookupStep { key } => {
                buf.put_u8(K_LOOKUP_STEP);
                put_id(&mut buf, key);
            }
            Frame::GatewayProbe { object } => {
                buf.put_u8(K_GATEWAY_PROBE);
                put_object(&mut buf, object);
            }
            Frame::IopKnows { object } => {
                buf.put_u8(K_IOP_KNOWS);
                put_object(&mut buf, object);
            }
            Frame::RecAt { object, time } => {
                buf.put_u8(K_REC_AT);
                put_object(&mut buf, object);
                put_time(&mut buf, *time);
            }
            Frame::RecLatestAtOrBefore { object, t } => {
                buf.put_u8(K_REC_LAOB);
                put_object(&mut buf, object);
                put_time(&mut buf, *t);
            }
            Frame::RecFirst { object } => {
                buf.put_u8(K_REC_FIRST);
                put_object(&mut buf, object);
            }
            Frame::RecLatest { object } => {
                buf.put_u8(K_REC_LATEST);
                put_object(&mut buf, object);
            }
            Frame::ReplRecAt { primary, object, time } => {
                buf.put_u8(K_REPL_REC_AT);
                buf.put_u32(primary.0);
                put_object(&mut buf, object);
                put_time(&mut buf, *time);
            }
            Frame::Ack => buf.put_u8(K_ACK),
            Frame::LocateResp { answer, cost, complete } => {
                buf.put_u8(K_LOCATE_RESP);
                match answer {
                    Some(s) => {
                        buf.put_u8(1);
                        buf.put_u32(s.0);
                    }
                    None => buf.put_bytes(0, 5),
                }
                put_cost(&mut buf, cost);
                buf.put_u8(u8::from(*complete));
            }
            Frame::TraceResp { path, cost, complete } => {
                buf.put_u8(K_TRACE_RESP);
                buf.put_u32(path.len() as u32);
                for v in path {
                    buf.put_u32(v.site.0);
                    put_time(&mut buf, v.arrived);
                    match v.departed {
                        Some(d) => {
                            buf.put_u8(1);
                            put_time(&mut buf, d);
                        }
                        None => buf.put_bytes(0, 9),
                    }
                }
                put_cost(&mut buf, cost);
                buf.put_u8(u8::from(*complete));
            }
            Frame::StatusResp { site, members, sent, received } => {
                buf.put_u8(K_STATUS_RESP);
                buf.put_u32(site.0);
                buf.put_u32(*members);
                buf.put_u64(*sent);
                buf.put_u64(*received);
            }
            Frame::QueryLoadResp { loads, hits, misses } => {
                buf.put_u8(K_QUERY_LOAD_RESP);
                buf.put_u32(loads.len() as u32);
                for (site, count) in loads {
                    buf.put_u32(site.0);
                    buf.put_u64(*count);
                }
                buf.put_u64(*hits);
                buf.put_u64(*misses);
            }
            Frame::StepResp(answer) => {
                buf.put_u8(K_STEP_RESP);
                match answer {
                    StepAnswer::Owner(id) => {
                        buf.put_u8(1);
                        put_id(&mut buf, id);
                    }
                    StepAnswer::Forward(id) => {
                        buf.put_u8(0);
                        put_id(&mut buf, id);
                    }
                }
            }
            Frame::LinkResp(link) => {
                buf.put_u8(K_LINK_RESP);
                put_opt_link(&mut buf, link);
            }
            Frame::BoolResp(v) => {
                buf.put_u8(K_BOOL_RESP);
                buf.put_u8(u8::from(*v));
            }
            Frame::RecResp(rec) => {
                buf.put_u8(K_REC_RESP);
                match rec {
                    Some(r) => {
                        buf.put_u8(1);
                        put_time(&mut buf, r.arrived);
                        put_opt_link(&mut buf, &r.from);
                        put_opt_link(&mut buf, &r.to);
                    }
                    None => buf.put_u8(0),
                }
            }
            Frame::StateResp(state) => {
                buf.put_u8(K_STATE_RESP);
                buf.put_u32(state.len() as u32);
                buf.put_slice(state);
            }
            Frame::AddrResp(addr) => {
                buf.put_u8(K_ADDR_RESP);
                match addr {
                    Some(a) => {
                        buf.put_u8(1);
                        put_str(&mut buf, a);
                    }
                    None => buf.put_u8(0),
                }
            }
        }
        buf.freeze().as_slice().to_vec()
    }

    /// Deserialize from a transport payload.
    pub fn decode(raw: &[u8]) -> Result<Frame, ProtoError> {
        let mut buf = Bytes::from(raw.to_vec());
        let kind = get_u8(&mut buf)?;
        let frame = match kind {
            K_PROTOCOL => {
                let sender = SiteId(get_u32(&mut buf)?);
                let hops = get_u32(&mut buf)?;
                let sent_us = get_u64(&mut buf)?;
                let n = get_len(&mut buf, 1)?;
                let payload = buf.slice(..n);
                let (msg, seq) = codec::decode(payload).map_err(ProtoError::Codec)?;
                Frame::Protocol { sender, hops, sent_us, wire: Wire { seq, msg } }
            }
            K_JOIN_REQ => {
                let site = SiteId(get_u32(&mut buf)?);
                let addr = get_str(&mut buf)?;
                Frame::JoinReq { site, addr }
            }
            K_JOIN_RESP => {
                let n = get_len(&mut buf, 8)?;
                let mut peers = Vec::with_capacity(n);
                for _ in 0..n {
                    let site = SiteId(get_u32(&mut buf)?);
                    let addr = get_str(&mut buf)?;
                    peers.push((site, addr));
                }
                Frame::JoinResp { peers }
            }
            K_PEER_JOINED => {
                let site = SiteId(get_u32(&mut buf)?);
                let addr = get_str(&mut buf)?;
                Frame::PeerJoined { site, addr }
            }
            K_PEER_DEAD => Frame::PeerDead { site: SiteId(get_u32(&mut buf)?) },
            K_CAPTURE => {
                let at = get_time(&mut buf)?;
                let n = get_len(&mut buf, ID_BYTES)?;
                let mut objects = Vec::with_capacity(n);
                for _ in 0..n {
                    objects.push(get_object(&mut buf)?);
                }
                Frame::Capture { at, objects }
            }
            K_FLUSH => Frame::Flush { now: get_time(&mut buf)? },
            K_LOCATE => {
                Frame::Locate { object: get_object(&mut buf)?, t: get_time(&mut buf)? }
            }
            K_TRACE => Frame::Trace {
                object: get_object(&mut buf)?,
                t0: get_time(&mut buf)?,
                t1: get_time(&mut buf)?,
            },
            K_STATUS => Frame::Status,
            K_QUERY_LOAD => Frame::QueryLoad,
            K_SHUTDOWN => Frame::Shutdown,
            K_CRASH => Frame::Crash,
            K_STATE_DUMP => Frame::StateDump,
            K_RESOLVE => Frame::Resolve { site: SiteId(get_u32(&mut buf)?) },
            K_REGION_CUT => Frame::RegionCut {
                a: get_u32(&mut buf)? as u16,
                b: get_u32(&mut buf)? as u16,
            },
            K_REGION_HEAL => Frame::RegionHeal {
                a: get_u32(&mut buf)? as u16,
                b: get_u32(&mut buf)? as u16,
            },
            K_LOOKUP_STEP => Frame::LookupStep { key: get_id(&mut buf)? },
            K_GATEWAY_PROBE => Frame::GatewayProbe { object: get_object(&mut buf)? },
            K_IOP_KNOWS => Frame::IopKnows { object: get_object(&mut buf)? },
            K_REC_AT => {
                Frame::RecAt { object: get_object(&mut buf)?, time: get_time(&mut buf)? }
            }
            K_REC_LAOB => Frame::RecLatestAtOrBefore {
                object: get_object(&mut buf)?,
                t: get_time(&mut buf)?,
            },
            K_REC_FIRST => Frame::RecFirst { object: get_object(&mut buf)? },
            K_REC_LATEST => Frame::RecLatest { object: get_object(&mut buf)? },
            K_REPL_REC_AT => Frame::ReplRecAt {
                primary: SiteId(get_u32(&mut buf)?),
                object: get_object(&mut buf)?,
                time: get_time(&mut buf)?,
            },
            K_ACK => Frame::Ack,
            K_LOCATE_RESP => {
                let present = get_u8(&mut buf)? == 1;
                let site = SiteId(get_u32(&mut buf)?);
                let cost = get_cost(&mut buf)?;
                let complete = get_u8(&mut buf)? == 1;
                Frame::LocateResp { answer: present.then_some(site), cost, complete }
            }
            K_TRACE_RESP => {
                let n = get_len(&mut buf, 21)?;
                let mut path = Vec::with_capacity(n);
                for _ in 0..n {
                    let site = SiteId(get_u32(&mut buf)?);
                    let arrived = get_time(&mut buf)?;
                    let present = get_u8(&mut buf)? == 1;
                    let departed_raw = get_time(&mut buf)?;
                    path.push(Visit { site, arrived, departed: present.then_some(departed_raw) });
                }
                let cost = get_cost(&mut buf)?;
                let complete = get_u8(&mut buf)? == 1;
                Frame::TraceResp { path, cost, complete }
            }
            K_STATUS_RESP => Frame::StatusResp {
                site: SiteId(get_u32(&mut buf)?),
                members: get_u32(&mut buf)?,
                sent: get_u64(&mut buf)?,
                received: get_u64(&mut buf)?,
            },
            K_QUERY_LOAD_RESP => {
                let n = get_len(&mut buf, 12)?;
                let mut loads = Vec::with_capacity(n);
                for _ in 0..n {
                    let site = SiteId(get_u32(&mut buf)?);
                    let count = get_u64(&mut buf)?;
                    loads.push((site, count));
                }
                let hits = get_u64(&mut buf)?;
                let misses = get_u64(&mut buf)?;
                Frame::QueryLoadResp { loads, hits, misses }
            }
            K_STEP_RESP => {
                let owner = get_u8(&mut buf)? == 1;
                let id = get_id(&mut buf)?;
                Frame::StepResp(if owner { StepAnswer::Owner(id) } else { StepAnswer::Forward(id) })
            }
            K_LINK_RESP => Frame::LinkResp(get_opt_link(&mut buf)?),
            K_BOOL_RESP => Frame::BoolResp(get_u8(&mut buf)? == 1),
            K_REC_RESP => {
                if get_u8(&mut buf)? == 1 {
                    Frame::RecResp(Some(IopRecord {
                        arrived: get_time(&mut buf)?,
                        from: get_opt_link(&mut buf)?,
                        to: get_opt_link(&mut buf)?,
                    }))
                } else {
                    Frame::RecResp(None)
                }
            }
            K_STATE_RESP => {
                // State dumps may exceed MAX_LEN elements; bound by the
                // frame itself (1 byte per element).
                let n = get_u32(&mut buf)? as usize;
                if n > buf.remaining() {
                    return Err(ProtoError::Truncated);
                }
                let state = buf.slice(..n);
                Frame::StateResp(state.as_slice().to_vec())
            }
            K_ADDR_RESP => {
                let addr =
                    if get_u8(&mut buf)? == 1 { Some(get_str(&mut buf)?) } else { None };
                Frame::AddrResp(addr)
            }
            other => return Err(ProtoError::BadKind(other)),
        };
        Ok(frame)
    }
}

fn need(buf: &Bytes, n: usize) -> Result<(), ProtoError> {
    if buf.remaining() < n {
        Err(ProtoError::Truncated)
    } else {
        Ok(())
    }
}

pub(crate) fn get_u8(buf: &mut Bytes) -> Result<u8, ProtoError> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

pub(crate) fn get_u32(buf: &mut Bytes) -> Result<u32, ProtoError> {
    need(buf, 4)?;
    Ok(buf.get_u32())
}

pub(crate) fn get_u64(buf: &mut Bytes) -> Result<u64, ProtoError> {
    need(buf, 8)?;
    Ok(buf.get_u64())
}

pub(crate) fn get_time(buf: &mut Bytes) -> Result<SimTime, ProtoError> {
    Ok(SimTime::from_micros(get_u64(buf)?))
}

fn get_id(buf: &mut Bytes) -> Result<Id, ProtoError> {
    need(buf, ID_BYTES)?;
    let mut raw = [0u8; ID_BYTES];
    buf.copy_to_slice(&mut raw);
    Ok(Id(raw))
}

pub(crate) fn get_object(buf: &mut Bytes) -> Result<ObjectId, ProtoError> {
    Ok(ObjectId(get_id(buf)?))
}

fn get_opt_link(buf: &mut Bytes) -> Result<Option<Link>, ProtoError> {
    need(buf, 13)?;
    let present = buf.get_u8() == 1;
    let site = SiteId(buf.get_u32());
    let time = SimTime::from_micros(buf.get_u64());
    Ok(present.then_some(Link { site, time }))
}

/// Bounded length prefix: mirrors the codec hardening — a hostile
/// prefix is rejected by arithmetic (`n · elem_bytes > remaining`)
/// before it can size an allocation.
pub(crate) fn get_len(buf: &mut Bytes, elem_bytes: usize) -> Result<usize, ProtoError> {
    let n = get_u32(buf)?;
    if n as usize > MAX_LEN {
        return Err(ProtoError::TooLong(n));
    }
    if (n as usize) * elem_bytes > buf.remaining() {
        return Err(ProtoError::Truncated);
    }
    Ok(n as usize)
}

pub(crate) fn get_str(buf: &mut Bytes) -> Result<String, ProtoError> {
    let n = get_len(buf, 1)?;
    let mut raw = vec![0u8; n];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|_| ProtoError::BadString)
}

fn get_cost(buf: &mut Bytes) -> Result<CostWire, ProtoError> {
    Ok(CostWire { messages: get_u64(buf)?, hops: get_u64(buf)?, bytes: get_u64(buf)? })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids::Prefix;
    use peertrack::messages::Msg;

    fn obj(n: u64) -> ObjectId {
        ObjectId(Id::hash(&n.to_be_bytes()))
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Protocol {
                sender: SiteId(3),
                hops: 2,
                sent_us: 1_234_567,
                wire: Wire {
                    seq: 42,
                    msg: Msg::GroupIndex {
                        prefix: Prefix::from_bit_str("010"),
                        site: SiteId(3),
                        members: vec![(obj(1), t(5)), (obj(2), t(6))],
                    },
                },
            },
            Frame::JoinReq { site: SiteId(4), addr: "127.0.0.1:9999".into() },
            Frame::JoinResp {
                peers: vec![(SiteId(0), "127.0.0.1:1".into()), (SiteId(4), "127.0.0.1:2".into())],
            },
            Frame::PeerJoined { site: SiteId(2), addr: "[::1]:80".into() },
            Frame::PeerDead { site: SiteId(6) },
            Frame::Capture { at: t(99), objects: vec![obj(7), obj(8)] },
            Frame::Flush { now: t(100) },
            Frame::Locate { object: obj(9), t: t(55) },
            Frame::Trace { object: obj(9), t0: t(1), t1: t(1000) },
            Frame::Status,
            Frame::QueryLoad,
            Frame::Shutdown,
            Frame::Crash,
            Frame::StateDump,
            Frame::Resolve { site: SiteId(3) },
            Frame::RegionCut { a: 0, b: 2 },
            Frame::RegionHeal { a: 0, b: 2 },
            Frame::LookupStep { key: Id::hash_str("k") },
            Frame::GatewayProbe { object: obj(1) },
            Frame::IopKnows { object: obj(1) },
            Frame::RecAt { object: obj(1), time: t(3) },
            Frame::RecLatestAtOrBefore { object: obj(1), t: t(3) },
            Frame::RecFirst { object: obj(1) },
            Frame::RecLatest { object: obj(1) },
            Frame::ReplRecAt { primary: SiteId(6), object: obj(1), time: t(3) },
            Frame::Ack,
            Frame::LocateResp {
                answer: Some(SiteId(2)),
                cost: CostWire { messages: 3, hops: 5, bytes: 144 },
                complete: true,
            },
            Frame::LocateResp { answer: None, cost: CostWire::default(), complete: false },
            Frame::TraceResp {
                path: vec![
                    Visit { site: SiteId(1), arrived: t(10), departed: Some(t(20)) },
                    Visit { site: SiteId(2), arrived: t(20), departed: None },
                ],
                cost: CostWire { messages: 2, hops: 2, bytes: 96 },
                complete: true,
            },
            Frame::StatusResp { site: SiteId(1), members: 5, sent: 10, received: 9 },
            Frame::QueryLoadResp {
                loads: vec![(SiteId(0), 3), (SiteId(2), 17)],
                hits: 11,
                misses: 9,
            },
            Frame::QueryLoadResp { loads: Vec::new(), hits: 0, misses: 0 },
            Frame::StepResp(StepAnswer::Owner(Id::from_u64(7))),
            Frame::StepResp(StepAnswer::Forward(Id::from_u64(8))),
            Frame::LinkResp(Some(Link { site: SiteId(1), time: t(2) })),
            Frame::LinkResp(None),
            Frame::BoolResp(true),
            Frame::RecResp(Some(IopRecord {
                arrived: t(1),
                from: None,
                to: Some(Link { site: SiteId(2), time: t(9) }),
            })),
            Frame::RecResp(None),
            Frame::StateResp(vec![0xAB, 0xCD, 0xEF, 0x00, 0x01]),
            Frame::StateResp(Vec::new()),
            Frame::AddrResp(Some("127.0.0.1:7401".into())),
            Frame::AddrResp(None),
        ]
    }

    #[test]
    fn all_frames_roundtrip() {
        for (i, f) in samples().iter().enumerate() {
            let back = Frame::decode(&f.encode()).unwrap_or_else(|e| panic!("frame {i}: {e}"));
            // `Msg` doesn't derive PartialEq; compare via re-encoding,
            // which is injective for this format.
            assert_eq!(back.encode(), f.encode(), "frame {i} drifted");
        }
    }

    #[test]
    fn hostile_length_rejected_before_allocation() {
        // A Capture frame claiming ~4Gi objects must fail by arithmetic.
        let mut buf = ByteBuf::new();
        buf.put_u8(K_CAPTURE);
        buf.put_u64(0);
        buf.put_u32(u32::MAX);
        assert_eq!(
            Frame::decode(buf.freeze().as_slice()).unwrap_err(),
            ProtoError::TooLong(u32::MAX)
        );
    }

    #[test]
    fn truncations_never_panic() {
        for f in samples() {
            let full = f.encode();
            for cut in 0..full.len() {
                let _ = Frame::decode(&full[..cut]);
            }
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        assert_eq!(Frame::decode(&[200]).unwrap_err(), ProtoError::BadKind(200));
        assert_eq!(Frame::decode(&[]).unwrap_err(), ProtoError::Truncated);
    }
}
