//! Durable state vocabulary: what the WAL stores and how a whole
//! [`Core`] is serialized.
//!
//! **Log events, not state diffs.** A [`WalRecord`] is an *inbound
//! event* — a membership change, an injected capture, a window flush, a
//! received protocol message, a query's model cost. Recovery replays
//! these through the exact handler code that ran live
//! ([`Core::apply_record`]), so the WAL never has to describe the
//! node's data structures and can never disagree with the handlers
//! about what an event means.
//!
//! **Canonical state encoding.** [`Core::state_bytes`] serializes the
//! full replicated state deterministically: maps are emitted in sorted
//! key order, sets sorted, and per-object IOP/gateway structure reuses
//! the canonical encoders in [`peertrack::codec`]. Two cores that went
//! through the same transitions produce the same bytes, which is the
//! equality `tests/tests/crash_recovery.rs` asserts across a
//! kill-and-restart. The `with_addrs` flag chooses between the two
//! uses: snapshots keep listener addresses (`true` — a restart must
//! recover the membership's dial targets), while comparison digests
//! drop them (`false` — a restarted node binds a fresh ephemeral port,
//! and that difference is *expected*).
//!
//! Excluded on purpose: the Chord ring and `Lp` (derived from the
//! membership via `rebuild_ring`), the wall-clock latency recorder
//! (observability, not protocol state), and the `unsupported`
//! diagnostic counter (bumped by un-logged read-side probes from
//! remote queries, so it is not replicated state and cannot survive
//! replay).

use crate::node::Core;
use crate::proto::{self, ProtoError};
use chord::Ring;
use ids::Prefix;
use moods::SiteId;
use peertrack::bytebuf::{ByteBuf, Bytes};
use peertrack::codec;
use peertrack::config::GroupConfig;
use peertrack::messages::Wire;
use peertrack::world::Anomalies;
use simnet::metrics::{Metrics, ALL_CLASSES};
use simnet::SimTime;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::io;
use std::net::SocketAddr;

/// One durable event. Appended to the WAL *before* the in-memory state
/// is mutated and before the triggering request is acknowledged;
/// replayed in LSN order on recovery.
#[derive(Clone, Debug)]
pub enum WalRecord {
    /// A site's listener address became known (join, broadcast, or the
    /// node's own rebind after a restart).
    Member {
        /// The site.
        site: SiteId,
        /// Its listener address, as received on the wire.
        addr: String,
    },
    /// An injected capture batch ([`crate::proto::Frame::Capture`]).
    Capture {
        /// Virtual capture instant.
        at: SimTime,
        /// Captured objects.
        objects: Vec<moods::ObjectId>,
    },
    /// An explicit window flush ([`crate::proto::Frame::Flush`]).
    Flush {
        /// Virtual flush instant.
        now: SimTime,
    },
    /// A received protocol-plane message.
    Protocol {
        /// Sending site.
        sender: SiteId,
        /// The sequenced payload.
        wire: Wire,
    },
    /// Model cost of one locate/trace answered at this node (queries
    /// mutate the metrics, and metrics are recovered state).
    Query {
        /// Model messages charged.
        messages: u64,
        /// Model overlay hops charged.
        hops: u64,
        /// Model payload bytes charged.
        bytes: u64,
    },
    /// A site was declared **permanently dead** (kill-forever). The
    /// receiver drops it from the membership; with replication on, the
    /// heir merges its replica copy of the dead site's gateway shards
    /// and placement is re-established on the shrunken ring.
    Dead {
        /// The dead site.
        site: SiteId,
    },
}

const R_MEMBER: u8 = 1;
const R_CAPTURE: u8 = 2;
const R_FLUSH: u8 = 3;
const R_PROTOCOL: u8 = 4;
const R_QUERY: u8 = 5;
const R_DEAD: u8 = 6;

impl WalRecord {
    /// Serialize to a WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = ByteBuf::with_capacity(32);
        match self {
            WalRecord::Member { site, addr } => {
                buf.put_u8(R_MEMBER);
                buf.put_u32(site.0);
                proto::put_str(&mut buf, addr);
            }
            WalRecord::Capture { at, objects } => {
                buf.put_u8(R_CAPTURE);
                proto::put_time(&mut buf, *at);
                buf.put_u32(objects.len() as u32);
                for o in objects {
                    proto::put_object(&mut buf, o);
                }
            }
            WalRecord::Flush { now } => {
                buf.put_u8(R_FLUSH);
                proto::put_time(&mut buf, *now);
            }
            WalRecord::Protocol { sender, wire } => {
                buf.put_u8(R_PROTOCOL);
                buf.put_u32(sender.0);
                let payload = codec::encode(&wire.msg, wire.seq);
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload.as_slice());
            }
            WalRecord::Query { messages, hops, bytes } => {
                buf.put_u8(R_QUERY);
                buf.put_u64(*messages);
                buf.put_u64(*hops);
                buf.put_u64(*bytes);
            }
            WalRecord::Dead { site } => {
                buf.put_u8(R_DEAD);
                buf.put_u32(site.0);
            }
        }
        buf.freeze().as_slice().to_vec()
    }

    /// Deserialize a WAL payload.
    pub fn decode(raw: &[u8]) -> Result<WalRecord, ProtoError> {
        let mut buf = Bytes::from(raw.to_vec());
        let rec = match proto::get_u8(&mut buf)? {
            R_MEMBER => WalRecord::Member {
                site: SiteId(proto::get_u32(&mut buf)?),
                addr: proto::get_str(&mut buf)?,
            },
            R_CAPTURE => {
                let at = proto::get_time(&mut buf)?;
                let n = proto::get_len(&mut buf, ids::ID_BYTES)?;
                let mut objects = Vec::with_capacity(n);
                for _ in 0..n {
                    objects.push(proto::get_object(&mut buf)?);
                }
                WalRecord::Capture { at, objects }
            }
            R_FLUSH => WalRecord::Flush { now: proto::get_time(&mut buf)? },
            R_PROTOCOL => {
                let sender = SiteId(proto::get_u32(&mut buf)?);
                let n = proto::get_len(&mut buf, 1)?;
                let payload = buf.slice(..n);
                let (msg, seq) = codec::decode(payload).map_err(ProtoError::Codec)?;
                WalRecord::Protocol { sender, wire: Wire { seq, msg } }
            }
            R_QUERY => WalRecord::Query {
                messages: proto::get_u64(&mut buf)?,
                hops: proto::get_u64(&mut buf)?,
                bytes: proto::get_u64(&mut buf)?,
            },
            R_DEAD => WalRecord::Dead { site: SiteId(proto::get_u32(&mut buf)?) },
            other => return Err(ProtoError::BadKind(other)),
        };
        Ok(rec)
    }
}

const STATE_VERSION: u8 = 2;

impl Core {
    /// The canonical deterministic encoding of the full replicated
    /// state. `with_addrs` keeps the members' listener addresses
    /// (snapshots); without them the bytes are restart-stable digests.
    pub fn state_bytes(&self, with_addrs: bool) -> Vec<u8> {
        let mut buf = ByteBuf::with_capacity(512);
        buf.put_u8(STATE_VERSION);
        buf.put_u8(u8::from(with_addrs));
        buf.put_u32(self.site.0);
        buf.put_u64(self.seed);
        buf.put_u32(self.members.len() as u32);
        for (s, a) in &self.members {
            buf.put_u32(s.0);
            if with_addrs {
                proto::put_str(&mut buf, &a.to_string());
            }
        }
        codec::put_state_window(&mut buf, &self.window);
        codec::put_state_iop(&mut buf, &self.iop);
        codec::put_state_gateway(&mut buf, &self.gateway);
        let mut hosted: Vec<&Prefix> = self.hosted.iter().collect();
        hosted.sort();
        buf.put_u32(hosted.len() as u32);
        for p in hosted {
            buf.put_slice(&p.wire_bytes());
        }
        for class in ALL_CLASSES {
            buf.put_u64(self.metrics.messages_of(class));
            buf.put_u64(self.metrics.bytes_of(class));
            buf.put_u64(self.metrics.hops_of(class));
        }
        buf.put_u64(self.next_seq);
        let mut seen: Vec<(u32, u64)> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        buf.put_u32(seen.len() as u32);
        for (sender, seq) in seen {
            buf.put_u32(sender);
            buf.put_u64(seq);
        }
        buf.put_u64(self.sent);
        buf.put_u64(self.received);
        let a = &self.anomalies;
        for v in [
            a.out_of_order_arrivals,
            a.dangling_iop_updates,
            a.dropped_to_dead,
            a.retries_exhausted,
            a.duplicates_suppressed,
            a.refresh_failures,
        ] {
            buf.put_u64(v);
        }
        // v2: the permanently-dead set and this node's replica copies,
        // sorted by primary (BTree iteration order is already sorted).
        buf.put_u32(self.dead.len() as u32);
        for s in &self.dead {
            buf.put_u32(s.0);
        }
        buf.put_u32(self.replica_iop.len() as u32);
        for (primary, store) in &self.replica_iop {
            buf.put_u32(primary.0);
            codec::put_state_iop(&mut buf, store);
        }
        buf.put_u32(self.replica_gateway.len() as u32);
        for (primary, store) in &self.replica_gateway {
            buf.put_u32(primary.0);
            codec::put_state_gateway(&mut buf, store);
        }
        buf.freeze().as_slice().to_vec()
    }

    /// The snapshot body: the full state, addresses included.
    pub fn snapshot_body(&self) -> Vec<u8> {
        self.state_bytes(true)
    }

    /// Rebuild a core from a snapshot body. The caller supplies the
    /// static identity (site, seed, group config) and the snapshot must
    /// agree with it; any structural problem is a loud `InvalidData`.
    pub fn from_snapshot(
        site: SiteId,
        seed: u64,
        group: GroupConfig,
        body: &[u8],
    ) -> io::Result<Core> {
        decode_state(site, seed, group, body).map_err(|what| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("snapshot body rejected ({what}); refusing to load state"),
            )
        })
    }
}

fn decode_state(
    site: SiteId,
    seed: u64,
    group: GroupConfig,
    body: &[u8],
) -> Result<Core, String> {
    let err = |e: ProtoError| e.to_string();
    let mut buf = Bytes::from(body.to_vec());
    let version = proto::get_u8(&mut buf).map_err(err)?;
    if version != STATE_VERSION {
        return Err(format!("unknown state version {version}"));
    }
    if proto::get_u8(&mut buf).map_err(err)? != 1 {
        return Err("snapshot lacks member addresses".into());
    }
    let got_site = proto::get_u32(&mut buf).map_err(err)?;
    if got_site != site.0 {
        return Err(format!("snapshot is for site {got_site}, this node is {}", site.0));
    }
    let got_seed = proto::get_u64(&mut buf).map_err(err)?;
    if got_seed != seed {
        return Err(format!("snapshot seed {got_seed} does not match configured {seed}"));
    }
    let n = proto::get_len(&mut buf, 4).map_err(err)?;
    let mut members = BTreeMap::new();
    for _ in 0..n {
        let s = SiteId(proto::get_u32(&mut buf).map_err(err)?);
        let a: SocketAddr = proto::get_str(&mut buf)
            .map_err(err)?
            .parse()
            .map_err(|e| format!("member address: {e}"))?;
        members.insert(s, a);
    }
    if !members.contains_key(&site) {
        return Err("snapshot membership is missing this site".into());
    }
    let window =
        codec::get_state_window(&mut buf, site, group.n_max).map_err(|e| e.to_string())?;
    let iop = codec::get_state_iop(&mut buf).map_err(|e| e.to_string())?;
    let gateway = codec::get_state_gateway(&mut buf).map_err(|e| e.to_string())?;
    let hn = proto::get_len(&mut buf, 9).map_err(err)?;
    let mut hosted = HashSet::with_capacity(hn);
    for _ in 0..hn {
        let mut raw = [0u8; 9];
        buf.copy_to_slice(&mut raw);
        hosted.insert(Prefix::from_wire_bytes(&raw).map_err(|e| format!("hosted prefix: {e}"))?);
    }
    let mut metrics = Metrics::new();
    for class in ALL_CLASSES {
        let messages = proto::get_u64(&mut buf).map_err(err)?;
        let bytes = proto::get_u64(&mut buf).map_err(err)?;
        let hops = proto::get_u64(&mut buf).map_err(err)?;
        metrics.record_bulk(class, messages, bytes, hops);
    }
    let next_seq = proto::get_u64(&mut buf).map_err(err)?;
    let sn = proto::get_len(&mut buf, 12).map_err(err)?;
    let mut seen = HashSet::with_capacity(sn);
    for _ in 0..sn {
        let sender = proto::get_u32(&mut buf).map_err(err)?;
        let seq = proto::get_u64(&mut buf).map_err(err)?;
        seen.insert((sender, seq));
    }
    let sent = proto::get_u64(&mut buf).map_err(err)?;
    let received = proto::get_u64(&mut buf).map_err(err)?;
    let anomalies = Anomalies {
        out_of_order_arrivals: proto::get_u64(&mut buf).map_err(err)?,
        dangling_iop_updates: proto::get_u64(&mut buf).map_err(err)?,
        dropped_to_dead: proto::get_u64(&mut buf).map_err(err)?,
        retries_exhausted: proto::get_u64(&mut buf).map_err(err)?,
        duplicates_suppressed: proto::get_u64(&mut buf).map_err(err)?,
        refresh_failures: proto::get_u64(&mut buf).map_err(err)?,
    };
    let dn = proto::get_len(&mut buf, 4).map_err(err)?;
    let mut dead = BTreeSet::new();
    for _ in 0..dn {
        dead.insert(SiteId(proto::get_u32(&mut buf).map_err(err)?));
    }
    let rin = proto::get_len(&mut buf, 4).map_err(err)?;
    let mut replica_iop = BTreeMap::new();
    for _ in 0..rin {
        let primary = SiteId(proto::get_u32(&mut buf).map_err(err)?);
        let store = codec::get_state_iop(&mut buf).map_err(|e| e.to_string())?;
        replica_iop.insert(primary, store);
    }
    let rgn = proto::get_len(&mut buf, 4).map_err(err)?;
    let mut replica_gateway = BTreeMap::new();
    for _ in 0..rgn {
        let primary = SiteId(proto::get_u32(&mut buf).map_err(err)?);
        let store = codec::get_state_gateway(&mut buf).map_err(|e| e.to_string())?;
        replica_gateway.insert(primary, store);
    }
    if buf.remaining() != 0 {
        return Err(format!("{} trailing bytes after state", buf.remaining()));
    }
    let mut core = Core {
        site,
        seed,
        group,
        members,
        ring: Ring::new(),
        lp: group.l_min,
        window,
        iop,
        gateway,
        hosted,
        metrics,
        next_seq,
        seen,
        sent,
        received,
        anomalies,
        unsupported: 0,
        outbox: Vec::new(),
        replicas: 1,
        dead,
        replica_iop,
        replica_gateway,
    };
    core.rebuild_ring();
    Ok(core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ids::Id;
    use moods::ObjectId;

    fn obj(n: u64) -> ObjectId {
        ObjectId(Id::hash(&n.to_be_bytes()))
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::Member { site: SiteId(3), addr: "127.0.0.1:7403".into() },
            WalRecord::Capture { at: t(1_000), objects: vec![obj(1), obj(2), obj(3)] },
            WalRecord::Capture { at: t(2_000), objects: Vec::new() },
            WalRecord::Flush { now: t(3_000) },
            WalRecord::Protocol {
                sender: SiteId(1),
                wire: Wire {
                    seq: 9,
                    msg: peertrack::messages::Msg::SetTo {
                        updates: vec![(
                            obj(4),
                            t(10),
                            peertrack::store::Link { site: SiteId(2), time: t(20) },
                        )],
                    },
                },
            },
            WalRecord::Query { messages: 5, hops: 7, bytes: 160 },
            WalRecord::Dead { site: SiteId(2) },
        ]
    }

    #[test]
    fn wal_records_roundtrip() {
        for (i, rec) in samples().iter().enumerate() {
            let back = WalRecord::decode(&rec.encode())
                .unwrap_or_else(|e| panic!("record {i}: {e}"));
            // `Msg` doesn't derive PartialEq; re-encoding is injective.
            assert_eq!(back.encode(), rec.encode(), "record {i} drifted");
        }
    }

    #[test]
    fn wal_record_truncations_never_panic() {
        for rec in samples() {
            let full = rec.encode();
            for cut in 0..full.len() {
                let _ = WalRecord::decode(&full[..cut]);
            }
        }
    }

    #[test]
    fn snapshot_roundtrips_to_identical_state() {
        let addr: SocketAddr = "127.0.0.1:7400".parse().unwrap();
        let group = GroupConfig::default();
        let mut core = Core::new(SiteId(0), 42, group, addr);
        for rec in samples() {
            core.replay(&rec);
        }
        let body = core.snapshot_body();
        let restored = Core::from_snapshot(SiteId(0), 42, group, &body).unwrap();
        assert_eq!(restored.snapshot_body(), body);
        assert_eq!(restored.state_bytes(false), core.state_bytes(false));
    }

    #[test]
    fn snapshot_for_wrong_identity_is_rejected() {
        let addr: SocketAddr = "127.0.0.1:7400".parse().unwrap();
        let group = GroupConfig::default();
        let core = Core::new(SiteId(0), 42, group, addr);
        let body = core.snapshot_body();
        assert!(Core::from_snapshot(SiteId(1), 42, group, &body).is_err(), "wrong site");
        assert!(Core::from_snapshot(SiteId(0), 43, group, &body).is_err(), "wrong seed");
        // A digest (no addresses) is not a valid snapshot body.
        let digest = core.state_bytes(false);
        assert!(Core::from_snapshot(SiteId(0), 42, group, &digest).is_err());
    }

    #[test]
    fn state_truncations_and_trailing_bytes_are_loud() {
        let addr: SocketAddr = "127.0.0.1:7400".parse().unwrap();
        let group = GroupConfig::default();
        let mut core = Core::new(SiteId(0), 42, group, addr);
        for rec in samples() {
            core.replay(&rec);
        }
        let body = core.snapshot_body();
        for cut in 0..body.len() {
            assert!(
                Core::from_snapshot(SiteId(0), 42, group, &body[..cut]).is_err(),
                "truncation to {cut} went unnoticed"
            );
        }
        let mut padded = body.clone();
        padded.push(0);
        assert!(Core::from_snapshot(SiteId(0), 42, group, &padded).is_err());
    }
}
